"""Edge-case behaviour across the public API.

Degenerate topologies — single nodes, self loops, bipartite sinks,
asymmetric sizes — exercised end-to-end so the library fails loudly (or
computes correctly) instead of producing NaNs.
"""

import numpy as np
import pytest

from repro import Graph, gsim, gsim_plus
from repro.analysis import frobenius_error
from repro.baselines import structsim_query
from repro.core import top_k_pairs


class TestSingleNodeGraphs:
    def test_self_loop_vs_self_loop(self):
        loop = Graph.from_edges(1, [(0, 0)])
        result = gsim_plus(loop, loop, iterations=5)
        assert result.similarity.shape == (1, 1)
        assert result.similarity[0, 0] == pytest.approx(1.0)

    def test_single_node_no_edges_collapses(self):
        lonely = Graph.empty(1)
        with pytest.raises(ZeroDivisionError):
            gsim_plus(lonely, lonely, iterations=1)

    def test_single_vs_large(self, random_pair):
        graph_a, _ = random_pair
        loop = Graph.from_edges(1, [(0, 0)])
        result = gsim_plus(graph_a, loop, iterations=4)
        assert result.similarity.shape == (graph_a.num_nodes, 1)
        assert np.isfinite(result.similarity).all()


class TestSelfLoops:
    def test_gsim_plus_handles_self_loops(self):
        # Self loops are legal adjacency entries; exactness must hold.
        a = Graph.from_edges(4, [(0, 0), (0, 1), (1, 2), (2, 3), (3, 3)])
        b = Graph.from_edges(3, [(0, 0), (0, 1), (1, 2)])
        ours = gsim_plus(a, b, iterations=6).similarity
        reference = gsim(a, b, iterations=6).similarity
        assert frobenius_error(ours, reference) < 1e-10

    def test_self_loop_counted_once_in_degrees(self):
        g = Graph.from_edges(2, [(0, 0), (0, 1)])
        assert g.out_degrees()[0] == 2
        assert g.in_degrees()[0] == 1


class TestAsymmetricSizes:
    def test_wide_vs_narrow(self):
        wide = Graph.from_edges(50, [(i, (i + 1) % 50) for i in range(50)])
        narrow = Graph.from_edges(2, [(0, 1)])
        result = gsim_plus(wide, narrow, iterations=8)
        assert result.similarity.shape == (50, 2)
        # min(n_A, n_B) = 2: the rank cap engages almost immediately.
        assert result.used_dense_fallback

    def test_topk_on_narrow_side(self):
        wide = Graph.from_edges(20, [(i, (i + 1) % 20) for i in range(20)])
        narrow = Graph.from_edges(3, [(0, 1), (1, 2)])
        pairs = top_k_pairs(wide, narrow, k=100, iterations=4)
        assert len(pairs) == 60  # clamped to n_A * n_B


class TestSinkAndSourceStructure:
    def test_pure_sink_graph(self):
        # All edges point into node 0: A^T carries all the signal.
        sink = Graph.from_edges(4, [(1, 0), (2, 0), (3, 0)])
        result = gsim_plus(sink, sink, iterations=6)
        # The sink is most similar to itself.
        assert result.similarity[0, 0] == result.similarity.max()

    def test_bipartite_oscillation_even_iterates(self):
        # Bipartite structure makes odd iterates oscillate; even iterates
        # are the convergent subsequence (paper §2).
        bipartite = Graph.from_edges(4, [(0, 2), (0, 3), (1, 2), (1, 3)])
        s_even_1 = gsim_plus(bipartite, bipartite, iterations=8).similarity
        s_even_2 = gsim_plus(bipartite, bipartite, iterations=10).similarity
        assert frobenius_error(s_even_1, s_even_2) < 1e-6

    def test_nonempty_graphs_never_collapse(self):
        # The update mixes A and A^T, so Z_k stays non-zero whenever both
        # graphs have an edge (for symmetric M, collapse needs the all-ones
        # start in null(M), i.e. effectively edgeless input).
        path = Graph.from_edges(3, [(0, 1), (1, 2)])
        result = gsim_plus(path, path, iterations=9)
        assert np.isfinite(result.similarity).all()
        assert np.linalg.norm(result.similarity) == pytest.approx(1.0)

    def test_path_graph_odd_even_oscillation(self):
        # Blondel et al.'s classic example: the 3-path vs itself oscillates
        # between two accumulation points — only even iterates converge.
        path = Graph.from_edges(3, [(0, 1), (1, 2)])
        s_odd = gsim_plus(path, path, iterations=7).similarity
        s_even = gsim_plus(path, path, iterations=8).similarity
        s_even_next = gsim_plus(path, path, iterations=10).similarity
        assert frobenius_error(s_odd, s_even) > 0.1       # oscillation
        assert frobenius_error(s_even, s_even_next) < 0.05  # even converge


class TestStructSimDegenerate:
    def test_zero_levels(self, random_pair):
        graph_a, graph_b = random_pair
        block = structsim_query(graph_a, graph_b, [0], [0], levels=0)
        assert block.shape == (1, 1)
        assert 0.0 <= block[0, 0] <= 1.0


class TestQueryExtremes:
    def test_all_nodes_as_queries(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsim_plus(
            graph_a,
            graph_b,
            iterations=4,
            queries_a=list(range(graph_a.num_nodes)),
            queries_b=list(range(graph_b.num_nodes)),
        )
        assert result.similarity.shape == (graph_a.num_nodes, graph_b.num_nodes)

    def test_reversed_query_order_permutes_block(self, random_pair):
        graph_a, graph_b = random_pair
        forward = gsim_plus(
            graph_a, graph_b, iterations=4, queries_a=[1, 5], queries_b=[0, 2]
        ).similarity
        backward = gsim_plus(
            graph_a, graph_b, iterations=4, queries_a=[5, 1], queries_b=[2, 0]
        ).similarity
        np.testing.assert_allclose(forward, backward[::-1, ::-1], atol=1e-12)
