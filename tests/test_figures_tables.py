"""Integration tests for the figure/table drivers (tiny scale, reduced sets)."""

import pytest

from repro.experiments import Deadline, ExperimentConfig, MemoryBudget, Outcome
from repro.experiments.figures import (
    fig2_time_by_dataset,
    fig3_time_vs_k,
    fig4_time_vs_nb,
    fig5_time_vs_queries,
    fig6_memory_by_dataset,
    fig7_memory_vs_k,
    fig8_memory_vs_queries,
)
from repro.experiments.report import render_records
from repro.experiments.tables import accuracy_table, render_accuracy_table

# Tests keep to fast algorithms and short deadlines: the slow baselines'
# behaviour is covered by their own unit tests.
FAST = ("GSim+", "GSVD", "GSim", "SS-BC*")


@pytest.fixture
def config():
    return ExperimentConfig(
        scale="tiny",
        iterations=4,
        seed=7,
        memory_budget=MemoryBudget(),
        deadline=Deadline(limit_seconds=10.0),
    )


class TestFig2:
    def test_cells_complete(self, config):
        records = fig2_time_by_dataset(
            config, datasets=("HP", "EE"), algorithms=FAST
        )
        assert len(records) == 2 * len(FAST)
        assert all(r.outcome is Outcome.OK for r in records)

    def test_renderable(self, config):
        records = fig2_time_by_dataset(config, datasets=("HP",), algorithms=FAST)
        text = render_records(records, metric="time")
        assert "GSim+" in text and "HP" in text

    def test_unknown_algorithm_rejected(self, config):
        with pytest.raises(KeyError, match="unknown algorithms"):
            fig2_time_by_dataset(config, algorithms=("Mystery",))


class TestFig3:
    def test_sweeps_k(self, config):
        records = fig3_time_vs_k(
            config, dataset="HP", k_values=(2, 4), algorithms=("GSim+",)
        )
        ks = sorted(r.params["k"] for r in records)
        assert ks == [2, 4]

    def test_gsim_plus_time_grows_mildly(self, config):
        records = fig3_time_vs_k(
            config, dataset="EE", k_values=(2, 8), algorithms=("GSim+",)
        )
        fast, slow = records[0].seconds, records[1].seconds
        assert slow < max(fast, 1e-4) * 200  # mild growth, not exponential


class TestFig4:
    def test_sweeps_nb(self, config):
        records = fig4_time_vs_nb(
            config, dataset="HP", nb_fractions=(0.1, 0.4), algorithms=("GSim+",)
        )
        sizes = [r.params["n_b"] for r in records]
        assert sizes[0] < sizes[1]


class TestFig5:
    def test_sweeps_queries(self, config):
        records = fig5_time_vs_queries(
            config, dataset="HP", query_sizes=(5, 20), algorithms=("GSim+", "SS-BC*")
        )
        assert {r.params["q_a"] for r in records} == {5, 20}

    def test_ssbc_scales_with_queries(self, config):
        records = fig5_time_vs_queries(
            config, dataset="EE", query_sizes=(10, 80), algorithms=("SS-BC*",)
        )
        small, large = records[0], records[1]
        assert large.seconds > small.seconds


class TestMemoryFigures:
    def test_fig6_reuses_fig2_cells(self, config):
        records = fig6_memory_by_dataset(
            config, datasets=("HP",), algorithms=("GSim+", "GSim")
        )
        assert all(r.memory_bytes is not None for r in records if r.ok)
        text = render_records(records, metric="memory")
        assert "KiB" in text or "MiB" in text or "B" in text

    def test_fig7_memory_vs_k(self, config):
        records = fig7_memory_vs_k(
            config, dataset="HP", k_values=(2, 6), algorithms=("GSim+",)
        )
        assert len(records) == 2

    def test_gsim_plus_memory_grows_with_k(self, config):
        records = fig7_memory_vs_k(
            config, dataset="EE", k_values=(2, 6), algorithms=("GSim+",)
        )
        # Factor width doubles with k until the cap: memory must rise.
        assert records[1].memory_bytes > records[0].memory_bytes

    def test_fig8_memory_vs_queries(self, config):
        records = fig8_memory_vs_queries(
            config, dataset="HP", query_sizes=(5, 20), algorithms=("GSim+",)
        )
        assert len(records) == 2


class TestMemoryWall:
    def test_dense_baselines_oom_when_budget_small(self, config):
        # Between GSim+'s predicted footprint (~0.1 MB factored) and
        # GSim's dense one (~0.7 MB) on the tiny HP pair.
        budget = MemoryBudget(limit_bytes=300_000)
        tight = ExperimentConfig(
            scale="tiny", iterations=4, seed=7,
            memory_budget=budget, deadline=Deadline(limit_seconds=10.0),
        )
        records = fig2_time_by_dataset(
            tight, datasets=("HP",), algorithms=("GSim+", "GSim")
        )
        outcomes = {r.algorithm: r.outcome for r in records}
        assert outcomes["GSim"] is Outcome.OOM
        assert outcomes["GSim+"] is Outcome.OK


class TestAccuracyTable:
    def test_structure(self):
        table = accuracy_table(
            k_values=(4, 8), ranks=(3, 6), reference_iterations=60,
            dataset="HP", scale="tiny", seed=7,
        )
        assert table.k_values == [4, 8]
        assert set(table.gsvd_errors) == {3, 6}
        assert len(table.gsim_plus_errors) == 2

    def test_theorem_31_equivalence(self):
        table = accuracy_table(
            k_values=(4, 8), ranks=(3,), reference_iterations=60,
            dataset="HP", scale="tiny", seed=7,
        )
        assert table.max_equivalence_gap() < 1e-9

    def test_gsvd_never_beats_gsim_plus(self):
        table = accuracy_table(
            k_values=(4, 8, 12), ranks=(3, 6), reference_iterations=80,
            dataset="HP", scale="tiny", seed=7,
        )
        for rank, errors in table.gsvd_errors.items():
            for ours, theirs in zip(table.gsim_plus_errors, errors):
                assert theirs >= ours - 1e-9, f"GSVD r={rank} beat exact GSim+"

    def test_error_decreases_with_k(self):
        table = accuracy_table(
            k_values=(4, 12), ranks=(3,), reference_iterations=80,
            dataset="HP", scale="tiny", seed=7,
        )
        assert table.gsim_plus_errors[1] < table.gsim_plus_errors[0]

    def test_render(self):
        table = accuracy_table(
            k_values=(4,), ranks=(3,), reference_iterations=40,
            dataset="HP", scale="tiny", seed=7,
        )
        text = render_accuracy_table(table)
        assert "GSim+ / GSim" in text
        assert "GSVD (r=3)" in text

    def test_explicit_graphs_accepted(self, tiny_pair):
        graph_a, graph_b = tiny_pair
        table = accuracy_table(
            graph_a, graph_b, k_values=(4,), ranks=(2,), reference_iterations=40
        )
        assert len(table.gsim_plus_errors) == 1

    def test_half_pair_rejected(self, tiny_pair):
        graph_a, _ = tiny_pair
        with pytest.raises(ValueError, match="both graphs"):
            accuracy_table(graph_a, None)


class TestErrorBoundTable:
    def test_bound_dominates_everywhere(self):
        from repro.experiments.tables import error_bound_table

        table = error_bound_table(k_values=(2, 4, 6), sample_size=12, seed=7)
        assert table.holds_everywhere()

    def test_geometric_decay_rate(self):
        from repro.experiments.tables import error_bound_table

        table = error_bound_table(k_values=(2, 4, 6, 8), sample_size=12, seed=7)
        # Bounds shrink by the constant factor ratio^2 between even ks.
        expected = table.contraction_ratio**2
        for earlier, later in zip(table.bounds, table.bounds[1:]):
            assert later / earlier == pytest.approx(expected, rel=1e-6)

    def test_odd_k_rejected(self):
        from repro.experiments.tables import error_bound_table

        with pytest.raises(ValueError, match="even k"):
            error_bound_table(k_values=(2, 3), sample_size=12)

    def test_render(self):
        from repro.experiments.tables import (
            error_bound_table,
            render_error_bound_table,
        )

        table = error_bound_table(k_values=(2, 4), sample_size=12, seed=7)
        text = render_error_bound_table(table)
        assert "Theorem 4.2" in text
        assert "contraction ratio" in text
