"""Property-based tests on the baseline models' invariants.

Where :mod:`tests.test_properties` hammers the core GSim+ claims, this
module pins down the mathematical contracts of the baselines and related
models over hypothesis-generated graphs: value ranges, symmetries, and
degeneracy behaviour.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Graph
from repro.baselines import ned_query, rolesim, structsim_query
from repro.baselines.gsvd import gsvd
from repro.models import cosimrank, hits, simrank

_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_graphs(draw, min_nodes=2, max_nodes=8):
    n = draw(st.integers(min_nodes, max_nodes))
    possible = [(i, j) for i in range(n) for j in range(n) if i != j]
    edges = draw(st.lists(st.sampled_from(possible), min_size=0, max_size=2 * n))
    return Graph.from_edges(n, edges)


class TestRoleSimProperties:
    @_settings
    @given(g=small_graphs())
    def test_range_and_diagonal(self, g):
        sim = rolesim(g, iterations=2, beta=0.2).similarity
        assert (sim >= 0.2 - 1e-12).all()
        assert (sim <= 1.0 + 1e-12).all()
        np.testing.assert_array_equal(np.diag(sim), 1.0)

    @_settings
    @given(g=small_graphs())
    def test_symmetry(self, g):
        sim = rolesim(g, iterations=2).similarity
        np.testing.assert_allclose(sim, sim.T, atol=1e-12)

    @_settings
    @given(g=small_graphs())
    def test_greedy_never_exceeds_exact_after_one_step(self, g):
        greedy = rolesim(g, iterations=1, matching="greedy").similarity
        exact = rolesim(g, iterations=1, matching="exact").similarity
        assert (greedy <= exact + 1e-9).all()


class TestNEDProperties:
    @_settings
    @given(g=small_graphs(), depth=st.integers(0, 2))
    def test_self_distance_zero(self, g, depth):
        block = ned_query(g, g, [0], [0], depth=depth)
        assert block[0, 0] == 1.0  # distance 0 -> similarity 1

    @_settings
    @given(g=small_graphs(), depth=st.integers(1, 2))
    def test_similarity_range(self, g, depth):
        nodes = [0, g.num_nodes - 1]
        block = ned_query(g, g, nodes, nodes, depth=depth)
        assert ((block > 0) & (block <= 1.0)).all()

    @_settings
    @given(g=small_graphs(), depth=st.integers(1, 2))
    def test_symmetry_within_one_graph(self, g, depth):
        nodes = list(range(min(4, g.num_nodes)))
        block = ned_query(g, g, nodes, nodes, depth=depth)
        np.testing.assert_allclose(block, block.T, atol=1e-9)


class TestStructSimProperties:
    @_settings
    @given(g=small_graphs(), levels=st.integers(0, 4))
    def test_range_and_self_similarity(self, g, levels):
        nodes = list(range(g.num_nodes))
        block = structsim_query(g, g, nodes, nodes, levels=levels)
        assert ((block >= -1e-12) & (block <= 1.0 + 1e-12)).all()
        np.testing.assert_allclose(np.diag(block), 1.0)

    @_settings
    @given(g=small_graphs(), levels=st.integers(1, 3))
    def test_symmetry(self, g, levels):
        nodes = list(range(g.num_nodes))
        block = structsim_query(g, g, nodes, nodes, levels=levels)
        np.testing.assert_allclose(block, block.T, atol=1e-12)


class TestGSVDProperties:
    @_settings
    @given(g=small_graphs(min_nodes=3), k=st.integers(1, 4), rank=st.integers(1, 3))
    def test_factors_stay_orthonormal(self, g, k, rank):
        try:
            result = gsvd(g, g, iterations=k, rank=rank)
        except ZeroDivisionError:
            return  # degenerate input collapsed; acceptable
        effective = result.rank
        gram_u = result.u.T @ result.u
        # Columns past the realised core rank may be zero-padded; check the
        # diagonal is 0/1 and off-diagonals vanish.
        off_diagonal = gram_u - np.diag(np.diag(gram_u))
        assert np.abs(off_diagonal).max() < 1e-8
        diag = np.diag(gram_u)
        assert ((np.abs(diag - 1.0) < 1e-8) | (np.abs(diag) < 1e-8)).all()
        assert effective <= min(g.num_nodes, g.num_nodes)

    @_settings
    @given(g=small_graphs(min_nodes=3), k=st.integers(1, 4))
    def test_unit_frobenius(self, g, k):
        try:
            result = gsvd(g, g, iterations=k, rank=2)
        except ZeroDivisionError:
            return
        assert np.linalg.norm(result.sigma) == 1.0 or np.isclose(
            np.linalg.norm(result.sigma), 1.0
        )


class TestRelatedModelProperties:
    @_settings
    @given(g=small_graphs())
    def test_simrank_contract(self, g):
        sim = simrank(g, iterations=3)
        np.testing.assert_array_equal(np.diag(sim), 1.0)
        assert (sim >= -1e-12).all() and (sim <= 1.0 + 1e-12).all()
        np.testing.assert_allclose(sim, sim.T, atol=1e-12)

    @_settings
    @given(g=small_graphs())
    def test_cosimrank_diagonal_dominant(self, g):
        sim = cosimrank(g, iterations=3)
        # s(a, a) >= s(a, b): identical walks maximise every inner product.
        for a in range(g.num_nodes):
            assert sim[a, a] >= sim[a].max() - 1e-9

    @_settings
    @given(g=small_graphs())
    def test_hits_normalised_or_zero(self, g):
        result = hits(g, iterations=30)
        for vector in (result.hubs, result.authorities):
            norm = np.linalg.norm(vector)
            assert np.isclose(norm, 1.0) or norm == 0.0
