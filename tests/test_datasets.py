"""Unit tests for the simulated dataset registry."""

import pytest

from repro.graphs import DATASETS, load_dataset, load_dataset_pair
from repro.graphs.datasets import SCALE_PROFILES


class TestRegistry:
    def test_all_five_paper_datasets_present(self):
        assert set(DATASETS) == {"HP", "EE", "WT", "UK", "IT"}

    def test_paper_sizes_recorded(self):
        assert DATASETS["HP"].paper_nodes == 34_546
        assert DATASETS["IT"].paper_edges == 1_150_725_436

    def test_edge_ratio_matches_paper_table(self):
        assert DATASETS["HP"].edge_ratio == pytest.approx(12.2, abs=0.1)
        assert DATASETS["EE"].edge_ratio == pytest.approx(1.6, abs=0.1)
        assert DATASETS["WT"].edge_ratio == pytest.approx(2.1, abs=0.1)
        assert DATASETS["UK"].edge_ratio == pytest.approx(16.1, abs=0.1)
        assert DATASETS["IT"].edge_ratio == pytest.approx(27.9, abs=0.1)

    def test_profiles_monotone_in_scale(self):
        for spec in DATASETS.values():
            sizes = [spec.nodes_for(s) for s in ("tiny", "small", "medium", "paper")]
            assert sizes == sorted(sizes)

    def test_paper_profile_is_published_size(self):
        for spec in DATASETS.values():
            assert spec.nodes_for("paper") == spec.paper_nodes

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError, match="unknown scale"):
            DATASETS["HP"].nodes_for("gigantic")

    def test_sample_size_clamped_to_graph(self):
        for spec in DATASETS.values():
            for scale in ("tiny", "small"):
                assert spec.sample_size_for(scale) <= spec.nodes_for(scale)

    def test_sample_size_fixed_across_datasets(self):
        # Paper protocol: |V_B| = 10,000 for every dataset; scaled profiles
        # use one fixed target per profile (unless clamped).
        small_sizes = {
            spec.sample_size_for("small")
            for spec in DATASETS.values()
            if spec.nodes_for("small") >= 1_000
        }
        assert len(small_sizes) == 1

    def test_scale_profiles_constant(self):
        assert SCALE_PROFILES == ("tiny", "small", "medium", "paper")


class TestLoading:
    @pytest.mark.parametrize("key", sorted(DATASETS))
    def test_tiny_loads(self, key):
        graph = load_dataset(key, scale="tiny", seed=0)
        assert graph.num_nodes >= DATASETS[key].nodes_for("tiny") * 0.9
        assert graph.num_edges > 0

    def test_edge_ratio_roughly_preserved(self):
        graph = load_dataset("HP", scale="tiny", seed=0)
        ratio = graph.num_edges / graph.num_nodes
        assert ratio == pytest.approx(DATASETS["HP"].edge_ratio, rel=0.3)

    def test_deterministic(self):
        assert load_dataset("EE", scale="tiny", seed=1) == load_dataset(
            "EE", scale="tiny", seed=1
        )

    def test_seed_changes_graph(self):
        assert load_dataset("EE", scale="tiny", seed=1) != load_dataset(
            "EE", scale="tiny", seed=2
        )

    def test_case_insensitive(self):
        assert load_dataset("hp", scale="tiny").name.startswith("HP")

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("XX")

    def test_pair_sample_is_subgraph_sized(self):
        graph_a, graph_b = load_dataset_pair("HP", scale="tiny", seed=0)
        assert graph_b.num_nodes == DATASETS["HP"].sample_size_for("tiny")
        assert graph_b.num_nodes < graph_a.num_nodes

    def test_pair_custom_sample_size(self):
        _, graph_b = load_dataset_pair("HP", scale="tiny", seed=0, sample_size=37)
        assert graph_b.num_nodes == 37

    def test_pair_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset_pair("nope")

    def test_names_carry_scale(self):
        graph_a, graph_b = load_dataset_pair("WT", scale="tiny", seed=0)
        assert graph_a.name == "WT-tiny"
        assert "B" in graph_b.name
