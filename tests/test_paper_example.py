"""Validate against the paper's worked Example 3.2.

The paper prints, for its Figure 1 graphs with K = 2, Q_A = {1, 3, 7, 8}
(1-indexed) and Q_B = {b, c, d}:

* the extracted factor rows ``[U_2]_{Q_A}`` and ``[V_2]_{Q_B}``,
* the unnormalised block ``Z = [U_2]_{Q_A} [V_2]_{Q_B}^T``,
* ``||Z||_F = 1474`` and the normalised block ``S_2``.

The adjacency matrices themselves are only drawn, not printed, so these
tests verify Algorithm 1's lines 6-7 (block extraction + normalisation)
and the LowRankFactors algebra directly on the printed factor rows — the
part of the example that is numerically reproducible from the text.
"""

import numpy as np
import pytest

from repro.core import LowRankFactors

# [U_2]_{Q_A}: rows of U_2 for query nodes 1, 3, 7, 8 (from the paper).
U2_QA = np.array(
    [
        [7.0, 8.0, 2.0, 1.0],
        [10.0, 15.0, 11.0, 13.0],
        [10.0, 11.0, 14.0, 14.0],
        [10.0, 13.0, 10.0, 13.0],
    ]
)

# [V_2]_{Q_B}: rows of V_2 for query nodes b, c, d (from the paper).
V2_QB = np.array(
    [
        [10.0, 11.0, 9.0, 10.0],
        [10.0, 9.0, 11.0, 10.0],
        [10.0, 10.0, 10.0, 10.0],
    ]
)

# Z as printed in the example.
Z_EXPECTED = np.array(
    [
        [186.0, 174.0, 180.0],
        [494.0, 486.0, 490.0],
        [487.0, 493.0, 490.0],
        [463.0, 457.0, 460.0],
    ]
)

# S_2 as printed (3 decimal places).
S2_EXPECTED = np.array(
    [
        [0.126, 0.118, 0.122],
        [0.335, 0.330, 0.332],
        [0.330, 0.335, 0.332],
        [0.314, 0.310, 0.312],
    ]
)


class TestExample32:
    def test_unnormalised_block_z(self):
        z = U2_QA @ V2_QB.T
        np.testing.assert_array_equal(z, Z_EXPECTED)

    def test_frobenius_norm_is_1474(self):
        z = U2_QA @ V2_QB.T
        assert np.linalg.norm(z) == pytest.approx(1474.0, abs=0.5)

    def test_normalised_block_matches_paper(self):
        z = U2_QA @ V2_QB.T
        s2 = z / np.linalg.norm(z)
        # atol 6e-4: the paper prints 493/1474 = 0.33446 as "0.335", i.e.
        # its own table is rounded slightly past 3 decimal places.
        np.testing.assert_allclose(s2, S2_EXPECTED, atol=6e-4)

    def test_low_rank_factors_reproduce_line6(self):
        # Feed the full printed rows through the library's own query-block
        # machinery: LowRankFactors over the query rows with identity
        # extraction must give the same Z.
        factors = LowRankFactors(U2_QA, V2_QB)
        block = factors.query_block([0, 1, 2, 3], [0, 1, 2])
        np.testing.assert_array_equal(block, Z_EXPECTED)

    def test_factored_norm_matches_line7(self):
        factors = LowRankFactors(U2_QA, V2_QB)
        assert factors.frobenius_norm() == pytest.approx(
            np.linalg.norm(Z_EXPECTED)
        )


class TestExample32Structure:
    """The example's U/V recursion structure (Eqs. 8-9) on the printed data."""

    def test_u2_rank_at_most_four(self):
        # U_2 has width 4 = 2^2 as Theorem 4.1 predicts.
        assert U2_QA.shape[1] == 4

    def test_z_rank_bounded_by_embedding_width(self):
        z = U2_QA @ V2_QB.T
        assert np.linalg.matrix_rank(z) <= 4
