"""Unit tests for bounded-memory streaming edge-list ingestion."""

import io

import pytest

from repro.graphs import read_edge_list, read_edge_list_streaming, write_edge_list
from repro.graphs.streaming import iter_edge_chunks


class TestIterEdgeChunks:
    def test_chunks_respect_size(self):
        text = "\n".join(f"{i} {i + 1}" for i in range(10))
        chunks = list(iter_edge_chunks(io.StringIO(text), chunk_size=3))
        assert [c[0].size for c in chunks] == [3, 3, 3, 1]

    def test_weights_parsed(self):
        chunks = list(iter_edge_chunks(io.StringIO("0 1 2.5\n"), chunk_size=10))
        assert chunks[0][2][0] == 2.5

    def test_comments_skipped(self):
        text = "# header\n0 1\n# mid\n1 2\n"
        chunks = list(iter_edge_chunks(io.StringIO(text), chunk_size=10))
        assert chunks[0][0].size == 2

    def test_bad_line_reports_number(self):
        with pytest.raises(ValueError, match="line 2"):
            list(iter_edge_chunks(io.StringIO("0 1\nbad line here oops\n"), chunk_size=10))

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            list(iter_edge_chunks(io.StringIO("-1 2\n"), chunk_size=10))

    def test_empty_input(self):
        assert list(iter_edge_chunks(io.StringIO(""), chunk_size=10)) == []


class TestStreamingReader:
    def test_equivalent_to_plain_reader(self, tmp_path, random_pair):
        graph, _ = random_pair
        path = tmp_path / "g.txt"
        write_edge_list(graph, path, write_weights=True)
        plain = read_edge_list(path)
        streamed = read_edge_list_streaming(path, chunk_size=7)
        assert streamed == plain

    def test_tiny_chunks_same_result(self, tmp_path, random_pair):
        graph, _ = random_pair
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        assert read_edge_list_streaming(path, chunk_size=1) == read_edge_list(path)

    def test_duplicate_edges_summed(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1 2.0\n0 1 3.0\n")
        graph = read_edge_list_streaming(path, chunk_size=1)
        assert graph.adjacency[0, 1] == 5.0

    def test_known_num_nodes_immediate_fold(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        graph = read_edge_list_streaming(path, chunk_size=1, num_nodes=10)
        assert graph.num_nodes == 10
        assert graph.num_edges == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        graph = read_edge_list_streaming(path)
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "webcrawl.txt"
        path.write_text("0 1\n")
        assert read_edge_list_streaming(path).name == "webcrawl"

    def test_large_synthetic_round_trip(self, tmp_path):
        from repro.graphs import erdos_renyi_graph

        graph = erdos_renyi_graph(200, 2000, seed=9)
        path = tmp_path / "big.txt"
        write_edge_list(graph, path)
        streamed = read_edge_list_streaming(path, chunk_size=128)
        assert streamed == graph
