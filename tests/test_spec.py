"""Unit tests for declarative experiment specifications."""

import json

import pytest

from repro.experiments.runner import Outcome
from repro.experiments.spec import ExperimentSpec, run_spec


def _spec(**overrides):
    defaults = dict(
        name="test-spec",
        datasets=("HP",),
        algorithms=("GSim+",),
        scale="tiny",
        iterations=3,
        query_size=8,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestSpecValidation:
    def test_minimal_valid(self):
        assert _spec().name == "test-spec"

    def test_name_required(self):
        with pytest.raises(ValueError, match="name"):
            _spec(name="")

    def test_dataset_required(self):
        with pytest.raises(ValueError, match="dataset"):
            _spec(datasets=())

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown datasets"):
            _spec(datasets=("XX",))

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithms"):
            _spec(algorithms=("Oracle",))

    def test_bad_sweep_axis(self):
        with pytest.raises(ValueError, match="sweep axis"):
            _spec(sweep_axis="humidity", sweep_values=(1, 2))

    def test_sweep_needs_values(self):
        with pytest.raises(ValueError, match="needs values"):
            _spec(sweep_axis="iterations")


class TestSerialisation:
    def test_from_dict(self):
        spec = ExperimentSpec.from_dict(
            {
                "name": "x",
                "datasets": ["HP", "EE"],
                "algorithms": ["GSim+"],
                "iterations": 4,
                "sweep": {"axis": "query_size", "values": [5, 10]},
            }
        )
        assert spec.datasets == ("HP", "EE")
        assert spec.sweep_axis == "query_size"
        assert spec.variations() == [{"query_size": 5}, {"query_size": 10}]

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown spec keys"):
            ExperimentSpec.from_dict(
                {"name": "x", "datasets": ["HP"], "algorithms": ["GSim+"],
                 "gpu": True}
            )

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {"name": "file-spec", "datasets": ["HP"], "algorithms": ["GSim+"]}
            )
        )
        assert ExperimentSpec.from_json(path).name == "file-spec"

    def test_no_sweep_single_variation(self):
        assert _spec().variations() == [{}]


class TestRunSpec:
    def test_cell_count(self):
        records = run_spec(
            _spec(datasets=("HP", "EE"), algorithms=("GSim+", "GSVD"))
        )
        assert len(records) == 4
        assert all(r.ok for r in records)

    def test_sweep_expansion(self):
        records = run_spec(
            _spec(sweep_axis="iterations", sweep_values=(2, 4))
        )
        assert sorted(r.params["k"] for r in records) == [2, 4]

    def test_query_size_sweep(self):
        records = run_spec(
            _spec(sweep_axis="query_size", sweep_values=(4, 8))
        )
        assert sorted(r.params["q_a"] for r in records) == [4, 8]

    def test_budgets_respected(self):
        records = run_spec(
            _spec(algorithms=("GSim",), memory_budget_mib=0.001)
        )
        assert records[0].outcome is Outcome.OOM

    def test_sample_size_override(self):
        records = run_spec(_spec(sample_size=20))
        assert records[0].params["n_b"] == 20
