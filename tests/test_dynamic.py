"""Unit tests for the evolving-graph layer (DynamicGraph + session)."""

import numpy as np
import pytest

from repro import gsim_plus
from repro.dynamic import DynamicGraph, SimilaritySession


class TestDynamicGraph:
    def test_add_and_remove(self):
        g = DynamicGraph(3)
        g.add_edge(0, 1)
        assert g.has_edge(0, 1)
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)

    def test_constructor_edges(self):
        g = DynamicGraph(3, [(0, 1), (1, 2, 2.5)])
        assert g.num_edges == 2
        assert dict((s, d) for s, d, _ in g.edges()) == {0: 1, 1: 2}

    def test_version_bumps_on_mutation(self):
        g = DynamicGraph(3)
        v0 = g.version
        g.add_edge(0, 1)
        assert g.version > v0
        g.remove_edge(0, 1)
        assert g.version > v0 + 1

    def test_batch_add_single_bump(self):
        g = DynamicGraph(5)
        v0 = g.version
        g.add_edges([(0, 1), (1, 2), (2, 3)])
        assert g.version == v0 + 1
        assert g.num_edges == 3

    def test_overwrite_updates_weight(self):
        g = DynamicGraph(2)
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(0, 1, weight=4.0)
        assert g.num_edges == 1
        assert g.snapshot().adjacency[0, 1] == 4.0

    def test_zero_weight_rejected(self):
        g = DynamicGraph(2)
        with pytest.raises(ValueError, match="non-zero"):
            g.add_edge(0, 1, weight=0.0)

    def test_remove_missing_edge(self):
        with pytest.raises(KeyError):
            DynamicGraph(2).remove_edge(0, 1)

    def test_node_range_checked(self):
        with pytest.raises(IndexError):
            DynamicGraph(2).add_edge(0, 5)

    def test_add_node_grows(self):
        g = DynamicGraph(2)
        new = g.add_node()
        assert new == 2
        g.add_edge(0, new)
        assert g.snapshot().num_nodes == 3

    def test_snapshot_cached_until_mutation(self):
        g = DynamicGraph(3, [(0, 1)])
        first = g.snapshot()
        assert g.snapshot() is first
        g.add_edge(1, 2)
        assert g.snapshot() is not first

    def test_snapshot_matches_edges(self):
        g = DynamicGraph(4, [(0, 1), (2, 3)])
        snap = g.snapshot()
        assert snap.has_edge(0, 1) and snap.has_edge(2, 3)
        assert snap.num_edges == 2


class TestSimilaritySession:
    @pytest.fixture
    def graphs(self):
        a = DynamicGraph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        b = DynamicGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        return a, b

    def test_query_matches_static_solver(self, graphs):
        a, b = graphs
        session = SimilaritySession(a, b, iterations=6)
        block = session.query([0, 1], [0, 1])
        static = gsim_plus(
            a.snapshot(), b.snapshot(), iterations=6,
            queries_a=[0, 1], queries_b=[0, 1], normalization="global",
        ).similarity
        np.testing.assert_allclose(block, static, atol=1e-9)

    def test_cache_reused_without_changes(self, graphs):
        session = SimilaritySession(*graphs, iterations=4)
        session.query([0], [0])
        session.query([1], [1])
        assert session.stats.recomputes == 1
        assert session.stats.cache_hits == 1

    def test_update_invalidates(self, graphs):
        a, b = graphs
        session = SimilaritySession(a, b, iterations=4)
        before = session.query([0], [0])
        a.add_edge(0, 3)
        assert session.stale
        after = session.query([0], [0])
        assert session.stats.recomputes == 2
        assert not np.allclose(before, after)  # the edge changed the score

    def test_either_side_invalidates(self, graphs):
        a, b = graphs
        session = SimilaritySession(a, b, iterations=4)
        session.query([0], [0])
        b.add_edge(0, 2)
        assert session.stale

    def test_top_matches_ranked(self, graphs):
        session = SimilaritySession(*graphs, iterations=6)
        matches = session.top_matches(0, k=3)
        scores = [score for _, score in matches]
        assert scores == sorted(scores, reverse=True)
        assert len(matches) == 3

    def test_top_matches_consistent_with_query(self, graphs):
        a, b = graphs
        session = SimilaritySession(a, b, iterations=6)
        matches = dict(session.top_matches(0, k=4))
        row = session.query([0], list(range(4)))[0]
        for col, score in matches.items():
            assert score == pytest.approx(row[col], rel=1e-9)

    def test_refresh_forces_recompute(self, graphs):
        session = SimilaritySession(*graphs, iterations=4)
        session.refresh()
        session.refresh()
        assert session.stats.recomputes == 2

    def test_bad_normalization(self, graphs):
        session = SimilaritySession(*graphs, iterations=4)
        with pytest.raises(ValueError, match="normalization"):
            session.query([0], [0], normalization="nope")

    def test_growth_then_query(self, graphs):
        a, b = graphs
        session = SimilaritySession(a, b, iterations=4)
        session.query([0], [0])
        node = a.add_node()
        a.add_edge(node, 0)
        block = session.query([node], [0])
        assert block.shape == (1, 1)
