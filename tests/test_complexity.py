"""Unit tests for the Table 1 cost models."""

import pytest

from repro.core import COST_MODELS, predict_cost
from repro.core.complexity import InstanceParams


def params(**overrides) -> InstanceParams:
    defaults = dict(
        n_a=10_000, n_b=1_000, m_a=100_000, m_b=5_000, q_a=200, q_b=200,
        iterations=10,
    )
    defaults.update(overrides)
    return InstanceParams(**defaults)


class TestRegistry:
    def test_all_table1_rows_present(self):
        assert set(COST_MODELS) == {"gsim+", "gsvd", "gsim", "rsim", "ned", "ss-bc"}

    def test_formulas_documented(self):
        for model in COST_MODELS.values():
            assert model.time_formula
            assert model.space_formula

    def test_predict_cost_case_insensitive(self):
        assert predict_cost("GSim+", params()) == predict_cost("gsim+", params())

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            predict_cost("magic", params())


class TestGSimPlusModel:
    def test_memory_linear_in_nodes(self):
        _, small = predict_cost("gsim+", params())
        _, big = predict_cost("gsim+", params(n_a=20_000))
        # l is capped at n_b here, so memory scales ~linearly with n_a.
        assert big > small
        assert big < small * 2.5

    def test_time_linear_in_edges(self):
        t1, _ = predict_cost("gsim+", params(m_a=100_000))
        t2, _ = predict_cost("gsim+", params(m_a=200_000))
        assert t2 < t1 * 2.1
        assert t2 > t1 * 1.4

    def test_width_capped_by_smaller_graph(self):
        # With k=10, 2^10 = 1024 > n_b = 1000: l = 1000.
        t_capped, _ = predict_cost("gsim+", params(iterations=10))
        t_deeper, _ = predict_cost("gsim+", params(iterations=20))
        assert t_capped == t_deeper  # extra k adds no width once capped

    def test_huge_iteration_count_no_overflow(self):
        t, s = predict_cost("gsim+", params(iterations=10_000))
        assert t > 0 and s > 0


class TestCrossAlgorithmShape:
    """Table 1's qualitative rankings on a large-instance profile."""

    def test_gsim_plus_time_below_gsim(self):
        p = params()
        assert predict_cost("gsim+", p)[0] < predict_cost("gsim", p)[0]

    def test_gsim_plus_memory_below_dense(self):
        # In the low-rank regime (2^k << n_B) the factored storage wins big.
        p = params(iterations=6)
        assert predict_cost("gsim+", p)[1] < predict_cost("gsim", p)[1] / 10
        assert predict_cost("gsim+", p)[1] < predict_cost("gsvd", p)[1] / 10

    def test_gsim_plus_memory_never_exceeds_gsim(self):
        # Once capped, GSim+ reverts to dense: equal, never worse (paper
        # §5.2.1 point 6).
        p = params(iterations=40)
        assert predict_cost("gsim+", p)[1] <= predict_cost("gsim", p)[1]

    def test_gsim_and_gsvd_memory_equal(self):
        # Both materialise the dense n_A x n_B similarity.
        p = params()
        assert predict_cost("gsim", p)[1] == predict_cost("gsvd", p)[1]

    def test_rsim_memory_quadratic_in_union(self):
        _, small = predict_cost("rsim", params())
        _, big = predict_cost("rsim", params(n_a=20_000))
        assert big > small * 3  # (n_a + n_b)^2 scaling

    def test_ssbc_time_scales_with_query_product(self):
        t1, _ = predict_cost("ss-bc", params(q_a=100, q_b=100))
        t2, _ = predict_cost("ss-bc", params(q_a=200, q_b=200))
        assert t2 == pytest.approx(4 * t1)

    def test_gsim_time_independent_of_queries(self):
        t1, _ = predict_cost("gsim", params(q_a=10, q_b=10))
        t2, _ = predict_cost("gsim", params(q_a=1000, q_b=1000))
        assert t1 == t2

    def test_ned_time_uses_capped_depth(self):
        # The harness caps NED's depth at 3; deeper k adds nothing.
        t1, _ = predict_cost("ned", params(iterations=3))
        t2, _ = predict_cost("ned", params(iterations=10))
        assert t1 == t2
