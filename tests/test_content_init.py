"""Tests for content-based initialisation (Z_0 = F_A F_B^T).

The paper's introduction notes GSim "can be easily adapted to
content-based similarity measures"; the factored solver accepts per-node
feature matrices whose outer product replaces the all-ones start, and
Theorem 3.1's exactness must carry over unchanged.
"""

import numpy as np
import pytest

from repro import Graph, GSimPlus, gsim, gsim_plus
from repro.analysis import frobenius_error


@pytest.fixture
def features(random_pair, rng):
    graph_a, graph_b = random_pair
    return (
        rng.uniform(0.1, 1.0, (graph_a.num_nodes, 3)),
        rng.uniform(0.1, 1.0, (graph_b.num_nodes, 3)),
    )


class TestContentInitialisation:
    @pytest.mark.parametrize("k", [1, 2, 4, 7])
    def test_exact_vs_dense_gsim(self, random_pair, features, k):
        graph_a, graph_b = random_pair
        features_a, features_b = features
        ours = gsim_plus(
            graph_a, graph_b, iterations=k, initial_factors=(features_a, features_b)
        ).similarity
        reference = gsim(
            graph_a, graph_b, iterations=k, initial=features_a @ features_b.T
        ).similarity
        assert frobenius_error(ours, reference) < 1e-9

    def test_default_is_all_ones(self, random_pair):
        graph_a, graph_b = random_pair
        ones = (
            np.ones((graph_a.num_nodes, 1)),
            np.ones((graph_b.num_nodes, 1)),
        )
        with_explicit = gsim_plus(
            graph_a, graph_b, iterations=4, initial_factors=ones
        ).similarity
        default = gsim_plus(graph_a, graph_b, iterations=4).similarity
        np.testing.assert_allclose(with_explicit, default, atol=1e-12)

    def test_width_grows_r_times_2k(self, random_pair, features):
        graph_a, graph_b = random_pair
        solver = GSimPlus(
            graph_a, graph_b, rank_cap="none", initial_factors=features
        )
        widths = [s.factors.width for s in solver.iterate(2)]
        assert widths == [3, 6, 12]  # r=3, doubling per iteration

    def test_prior_changes_scores(self, random_pair, features):
        graph_a, graph_b = random_pair
        neutral = gsim_plus(graph_a, graph_b, iterations=4).similarity
        seeded = gsim_plus(
            graph_a, graph_b, iterations=4, initial_factors=features
        ).similarity
        assert frobenius_error(neutral, seeded) > 1e-6

    def test_prior_influence_fades_with_k(self, random_pair, features):
        # The power iteration forgets the start vector: deep iterates with
        # and without the prior converge to the same fixed point.
        graph_a, graph_b = random_pair
        neutral = gsim_plus(graph_a, graph_b, iterations=40).similarity
        seeded = gsim_plus(
            graph_a, graph_b, iterations=40, initial_factors=features
        ).similarity
        assert frobenius_error(neutral, seeded) < 1e-3

    def test_content_prior_steers_matches(self):
        # Two structurally identical candidates in G_A; content features
        # break the tie toward the intended one.
        graph_a = Graph.from_edges(4, [(0, 2), (1, 3)])
        graph_b = Graph.from_edges(2, [(0, 1)])
        # Nodes 0 and 1 are twins structurally; give node 1 the matching
        # content for G_B's node 0.
        features_a = np.array([[0.1], [1.0], [0.5], [0.5]])
        features_b = np.array([[1.0], [0.5]])
        seeded = gsim_plus(
            graph_a, graph_b, iterations=2,
            initial_factors=(features_a, features_b),
        ).similarity
        assert seeded[1, 0] > seeded[0, 0]


class TestContentValidation:
    def test_row_mismatch_a(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(ValueError, match="F_A has"):
            GSimPlus(
                graph_a, graph_b,
                initial_factors=(np.ones((3, 2)), np.ones((graph_b.num_nodes, 2))),
            )

    def test_row_mismatch_b(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(ValueError, match="F_B has"):
            GSimPlus(
                graph_a, graph_b,
                initial_factors=(np.ones((graph_a.num_nodes, 2)), np.ones((3, 2))),
            )

    def test_width_mismatch(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(ValueError, match="feature widths"):
            GSimPlus(
                graph_a, graph_b,
                initial_factors=(
                    np.ones((graph_a.num_nodes, 2)),
                    np.ones((graph_b.num_nodes, 3)),
                ),
            )

    def test_non_finite_rejected(self, random_pair):
        graph_a, graph_b = random_pair
        bad = np.ones((graph_a.num_nodes, 1))
        bad[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            GSimPlus(
                graph_a, graph_b,
                initial_factors=(bad, np.ones((graph_b.num_nodes, 1))),
            )

    def test_dense_gsim_initial_shape_checked(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(ValueError, match="initial S_0"):
            gsim(graph_a, graph_b, iterations=2, initial=np.ones((2, 2)))
