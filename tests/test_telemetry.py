"""Operational-telemetry tests: exporters, resource monitor, slow-query
log, SLO tracking, the periodic flusher, CLI wiring, and the perf gate.

Run as a suite with ``pytest -m telemetry``.
"""

from __future__ import annotations

import importlib.util
import json
import math
import re
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import top_k_pairs
from repro.graphs import erdos_renyi_graph, random_node_sample
from repro.retrieval import GSimIndex
from repro.runtime import (
    ExecutionContext,
    MemoryLedger,
    Metrics,
    MetricsExporter,
    PeriodicFlusher,
    ResourceMonitor,
    SLObjective,
    SLOTracker,
    SlowQueryLog,
    TelemetrySession,
    render_slo_report,
)
from repro.runtime.metrics import HISTOGRAM_BUCKETS, histogram_bucket_bounds

pytestmark = pytest.mark.telemetry

REPO_ROOT = Path(__file__).resolve().parent.parent

# Prometheus text-exposition grammar (the subset we emit): HELP/TYPE
# comments and `name{labels} value` samples.
_PROM_METRIC = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,"
    r"[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"(-?[0-9.]+([eE][-+]?[0-9]+)?|\+Inf|-Inf|NaN)$"
)
_PROM_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def assert_valid_prometheus(text: str) -> None:
    for line in text.splitlines():
        if not line:
            continue
        assert _PROM_COMMENT.match(line) or _PROM_METRIC.match(line), (
            f"invalid Prometheus exposition line: {line!r}"
        )


@pytest.fixture
def pair():
    graph_a = erdos_renyi_graph(30, 120, seed=1)
    graph_b = random_node_sample(graph_a, 12, seed=2)
    return graph_a, graph_b


# ----------------------------------------------------------------------
# MetricsExporter
# ----------------------------------------------------------------------
class TestPrometheusExport:
    def test_counters_and_gauges(self):
        metrics = Metrics()
        metrics.increment("index.queries", 3)
        metrics.set_gauge("memory.held_bytes", 1024)
        text = MetricsExporter().prometheus_text(metrics.snapshot())
        assert_valid_prometheus(text)
        assert "repro_index_queries_total 3" in text
        assert "repro_memory_held_bytes 1024" in text
        assert "# TYPE repro_index_queries_total counter" in text
        assert "# TYPE repro_memory_held_bytes gauge" in text

    def test_timer_suffix_not_duplicated(self):
        metrics = Metrics()
        metrics.merge_snapshot(
            {"timers": {"parallel.shard_seconds": {"seconds": 1.5, "calls": 3}}}
        )
        text = MetricsExporter().prometheus_text(metrics.snapshot())
        assert "repro_parallel_shard_seconds_total 1.5" in text
        assert "repro_parallel_shard_calls_total 3" in text
        assert "seconds_seconds" not in text

    def test_histogram_cumulative_buckets(self):
        metrics = Metrics()
        for value in (0.001, 0.002, 0.05, 1.2):
            metrics.observe_histogram("index.query_seconds", value)
        text = MetricsExporter().prometheus_text(metrics.snapshot())
        assert_valid_prometheus(text)
        bucket_lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_index_query_seconds_bucket")
        ]
        counts = [float(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts), "bucket series must be cumulative"
        assert bucket_lines[-1].startswith(
            'repro_index_query_seconds_bucket{le="+Inf"}'
        )
        assert counts[-1] == 4
        assert "repro_index_query_seconds_count 4" in text
        sum_line = next(
            line
            for line in text.splitlines()
            if line.startswith("repro_index_query_seconds_sum ")
        )
        assert math.isclose(
            float(sum_line.split(" ")[1]), 0.001 + 0.002 + 0.05 + 1.2
        )

    def test_name_sanitisation(self):
        metrics = Metrics()
        metrics.increment("weird name-with.chars!")
        text = MetricsExporter(namespace="ns").prometheus_text(metrics.snapshot())
        assert_valid_prometheus(text)
        assert "ns_weird_name_with_chars__total 1" in text

    def test_write_prometheus_atomic(self, tmp_path):
        metrics = Metrics()
        metrics.increment("a")
        target = tmp_path / "metrics.prom"
        MetricsExporter().write_prometheus(metrics.snapshot(), target)
        assert target.exists()
        assert not list(tmp_path.glob("*.tmp")), "no temp files left behind"
        assert_valid_prometheus(target.read_text())

    def test_append_jsonl_time_series(self, tmp_path):
        metrics = Metrics()
        exporter = MetricsExporter()
        target = tmp_path / "metrics.jsonl"
        metrics.increment("a")
        exporter.append_jsonl(metrics.snapshot(), target)
        metrics.increment("a")
        exporter.append_jsonl(metrics.snapshot(), target)
        lines = target.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["counters"]["a"] == 1
        assert second["counters"]["a"] == 2
        assert first["ts"] <= second["ts"]


# ----------------------------------------------------------------------
# ResourceMonitor
# ----------------------------------------------------------------------
class TestResourceMonitor:
    def test_sample_gauges(self):
        metrics = Metrics()
        monitor = ResourceMonitor(metrics)
        values = monitor.sample()
        gauges = metrics.snapshot()["gauges"]
        assert values["process.cpu_seconds"] > 0
        assert values["process.threads"] >= 1
        assert gauges["process.cpu_seconds"] == values["process.cpu_seconds"]
        assert gauges["telemetry.resource_samples"] == 1
        if sys.platform == "linux":
            assert gauges["process.rss_bytes"] > 0
            assert gauges["process.peak_rss_bytes"] >= gauges["process.rss_bytes"]

    def test_ledger_high_water(self):
        metrics = Metrics()
        ledger = MemoryLedger(1 << 24)
        ledger.charge(1 << 20, "block")
        ResourceMonitor(metrics, ledger=ledger).sample()
        gauges = metrics.snapshot()["gauges"]
        assert gauges["memory.ledger_held_bytes"] == float(1 << 20)
        assert gauges["memory.ledger_peak_bytes"] == float(1 << 20)

    def test_peaks_are_monotone(self):
        metrics = Metrics()
        monitor = ResourceMonitor(metrics)
        monitor.sample()
        peak = metrics.snapshot()["gauges"].get("process.peak_rss_bytes", 0)
        monitor.sample()
        after = metrics.snapshot()["gauges"].get("process.peak_rss_bytes", 0)
        assert after >= peak
        assert monitor.samples == 2


# ----------------------------------------------------------------------
# SlowQueryLog
# ----------------------------------------------------------------------
class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_seconds=0.1)
        assert not log.maybe_record("index.query", 0.05)
        assert log.maybe_record("index.query", 0.15, k=10)
        assert len(log) == 1
        record = log.records()[0]
        assert record.operation == "index.query"
        assert record.attributes["k"] == 10
        assert record.query_id == 1

    def test_ring_is_bounded(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=3)
        for i in range(10):
            log.maybe_record("op", float(i))
        assert len(log) == 3
        assert log.total_recorded == 10
        assert [r.duration_seconds for r in log.records()] == [7.0, 8.0, 9.0]
        # Query ids keep counting even as old records fall out.
        assert log.records()[-1].query_id == 10

    def test_write_jsonl(self, tmp_path):
        log = SlowQueryLog(threshold_seconds=0.0)
        log.maybe_record("a", 1.0, width=32)
        log.maybe_record("b", 2.0)
        target = tmp_path / "slow.jsonl"
        log.write_jsonl(target)
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert [row["operation"] for row in rows] == ["a", "b"]
        assert rows[0]["width"] == 32
        assert rows[0]["duration_seconds"] == 1.0

    def test_snapshot_shape(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=8)
        log.maybe_record("a", 1.0)
        snap = log.snapshot()
        assert snap["threshold_seconds"] == 0.0
        assert snap["capacity"] == 8
        assert snap["total_recorded"] == 1
        assert snap["records"][0]["operation"] == "a"

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_seconds=-1)
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_thread_safety(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=10_000)

        def work():
            for _ in range(500):
                log.maybe_record("op", 1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert log.total_recorded == 2000
        assert len({r.query_id for r in log.records()}) == len(log)


# ----------------------------------------------------------------------
# SLO tracking
# ----------------------------------------------------------------------
class TestSLO:
    def test_parse_units(self):
        assert SLObjective.parse("p99(x) < 50ms").threshold == pytest.approx(0.05)
        assert SLObjective.parse("p50(x) <= 20us").threshold == pytest.approx(2e-5)
        assert SLObjective.parse("max(x) < 2s").threshold == 2.0
        assert SLObjective.parse("error_rate(x) < 0.1%").threshold == (
            pytest.approx(0.001)
        )
        assert SLObjective.parse("count(x) <= 100").threshold == 100.0
        assert SLObjective.parse("p99(x) <= 1ms").inclusive
        assert not SLObjective.parse("p99(x) < 1ms").inclusive

    def test_parse_rejects_garbage(self):
        for bad in ("p98(x) < 1ms", "p99(x) > 1ms", "nonsense", "p99() < 1ms"):
            with pytest.raises(ValueError):
                SLObjective.parse(bad)

    def test_violated_p99_is_flagged(self):
        metrics = Metrics()
        # Deliberately violate: all observations sit far above 1ms.
        for _ in range(100):
            metrics.observe_histogram("index.query_seconds", 0.5)
        tracker = SLOTracker(["p99(index.query_seconds) < 1ms"])
        reports = tracker.evaluate(metrics.snapshot())
        assert len(reports) == 1
        assert not reports[0].ok
        assert reports[0].observed >= 0.1
        assert reports[0].budget_burn > 1.0
        assert tracker.violated(metrics.snapshot())

    def test_satisfied_p99(self):
        metrics = Metrics()
        for _ in range(100):
            metrics.observe_histogram("index.query_seconds", 1e-4)
        reports = SLOTracker(["p99(index.query_seconds) < 50ms"]).evaluate(
            metrics.snapshot()
        )
        assert reports[0].ok
        assert 0.0 < reports[0].budget_burn < 1.0

    def test_error_rate(self):
        metrics = Metrics()
        metrics.increment("index.query.requests", 1000)
        metrics.increment("index.query.errors", 5)
        reports = SLOTracker(
            ["error_rate(index.query) < 0.1%", "error_rate(index.query) <= 0.5%"]
        ).evaluate(metrics.snapshot())
        assert not reports[0].ok  # 0.5% > 0.1%
        assert reports[1].ok  # 0.5% <= 0.5% (inclusive)
        assert reports[0].observed == pytest.approx(0.005)

    def test_rate_of_counters(self):
        metrics = Metrics()
        metrics.increment("sweep.quarantined", 1)
        metrics.increment("sweep.cells", 100)
        reports = SLOTracker(
            ["rate(sweep.quarantined/sweep.cells) < 0.05"]
        ).evaluate(metrics.snapshot())
        assert reports[0].ok
        assert reports[0].observed == pytest.approx(0.01)

    def test_empty_snapshot_is_vacuously_ok(self):
        reports = SLOTracker(["p99(missing) < 1ms"]).evaluate(Metrics().snapshot())
        assert reports[0].ok
        assert reports[0].observed == 0.0

    def test_render_report(self):
        metrics = Metrics()
        metrics.observe_histogram("x", 10.0)
        text = render_slo_report(
            SLOTracker(["p99(x) < 1ms"]).evaluate(metrics.snapshot())
        )
        assert "VIOLATED" in text
        assert "p99(x) < 1ms" in text


# ----------------------------------------------------------------------
# PeriodicFlusher
# ----------------------------------------------------------------------
class TestPeriodicFlusher:
    def test_background_flushing(self, tmp_path):
        metrics = Metrics()
        metrics.increment("a")
        flusher = PeriodicFlusher(metrics, tmp_path, interval_seconds=0.02)
        with flusher:
            assert flusher.running
            deadline = time.monotonic() + 5.0
            while flusher.flushes < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert flusher.flushes >= 2
        assert not flusher.running
        assert flusher.prometheus_path.exists()
        assert_valid_prometheus(flusher.prometheus_path.read_text())
        lines = flusher.jsonl_path.read_text().splitlines()
        assert len(lines) == flusher.flushes
        assert flusher.flush_errors == 0

    def test_stop_takes_final_flush(self, tmp_path):
        metrics = Metrics()
        flusher = PeriodicFlusher(metrics, tmp_path, interval_seconds=60.0)
        flusher.start()
        metrics.increment("late.update")
        flusher.stop()
        assert flusher.flushes >= 1
        assert "late_update" in flusher.prometheus_path.read_text()

    def test_flush_errors_do_not_kill_thread(self, tmp_path, monkeypatch):
        flusher = PeriodicFlusher(Metrics(), tmp_path, interval_seconds=0.02)
        monkeypatch.setattr(
            flusher.exporter,
            "write_prometheus",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        flusher.start()
        deadline = time.monotonic() + 5.0
        while flusher.flush_errors < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert flusher.flush_errors >= 2
        assert flusher.running, "flusher must survive export failures"
        flusher.stop(flush=False)

    def test_thread_is_daemon(self, tmp_path):
        flusher = PeriodicFlusher(Metrics(), tmp_path, interval_seconds=60.0)
        flusher.start()
        assert flusher._thread.daemon
        flusher.stop(flush=False)

    def test_callable_source_and_companions(self, tmp_path):
        context = ExecutionContext.start(deadline_seconds=100.0)
        context.metrics.increment("a")
        slow = SlowQueryLog(threshold_seconds=0.0)
        slow.maybe_record("op", 1.0)
        flusher = PeriodicFlusher(
            context.snapshot,
            tmp_path,
            interval_seconds=60.0,
            resource_monitor=ResourceMonitor(context.metrics),
            slow_query_log=slow,
        )
        flusher.flush_now()
        text = flusher.prometheus_path.read_text()
        assert "repro_deadline_limit_seconds" in text  # live budget gauges
        assert "repro_process_cpu_seconds" in text
        assert flusher.slow_query_path.exists()
        assert json.loads(flusher.slow_query_path.read_text())["operation"] == "op"

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            PeriodicFlusher(Metrics(), tmp_path, interval_seconds=0)
        with pytest.raises(ValueError):
            PeriodicFlusher(Metrics(), tmp_path, max_flushes=0)


# ----------------------------------------------------------------------
# TelemetrySession
# ----------------------------------------------------------------------
class TestTelemetrySession:
    def test_end_to_end(self, tmp_path):
        metrics = Metrics()
        session = TelemetrySession(
            tmp_path,
            metrics,
            interval_seconds=60.0,
            slow_query_threshold=0.0,
            objectives=["p99(index.query_seconds) < 50ms"],
        ).start()
        metrics.observe_histogram("index.query_seconds", 1e-4)
        session.slow_queries.maybe_record("index.query", 1e-4)
        reports = session.close()
        assert reports and reports[0].ok
        assert (tmp_path / "metrics.prom").exists()
        assert (tmp_path / "metrics.jsonl").exists()
        assert (tmp_path / "slow_queries.jsonl").exists()
        report = json.loads((tmp_path / "slo_report.json").read_text())
        assert report[0]["ok"] is True

    def test_no_slo_report_without_objectives(self, tmp_path):
        with TelemetrySession(tmp_path, Metrics(), interval_seconds=60.0):
            pass
        assert not (tmp_path / "slo_report.json").exists()
        assert (tmp_path / "metrics.prom").exists()

    def test_close_is_idempotent(self, tmp_path):
        session = TelemetrySession(tmp_path, Metrics(), interval_seconds=60.0)
        session.start()
        session.close()
        session.close()
        assert not session.flusher.running


# ----------------------------------------------------------------------
# Histogram hardening + accuracy (satellite 2 / 4)
# ----------------------------------------------------------------------
class TestHistogramHardening:
    def test_invalid_observations_counted_not_recorded(self):
        metrics = Metrics()
        for bad in (float("nan"), float("inf"), float("-inf"), 0.0, -1.0):
            metrics.observe_histogram("lat", bad)
        snap = metrics.snapshot()
        assert snap["counters"]["lat.invalid_observations"] == 5
        assert "lat" not in snap["histograms"]

    def test_valid_observations_unaffected(self):
        metrics = Metrics()
        metrics.observe_histogram("lat", 0.5)
        metrics.observe_histogram("lat", float("nan"))
        hist = metrics.snapshot()["histograms"]["lat"]
        assert hist["count"] == 1
        assert hist["sum"] == 0.5

    def test_single_observation_percentiles(self):
        metrics = Metrics()
        metrics.observe_histogram("lat", 0.037)
        hist = metrics.snapshot()["histograms"]["lat"]
        assert hist["count"] == 1
        assert hist["min"] == hist["max"] == 0.037
        # Quantiles clamp to [min, max]: exact for a single observation.
        assert hist["p50"] == hist["p90"] == hist["p99"] == 0.037

    def test_bucket_boundary_accuracy(self):
        # Values on exact bucket bounds: every quantile estimate must stay
        # within one log-spaced bucket width (factor 10^(1/8)) of truth.
        width = 10 ** (1 / 8)
        for index in (9, 17, 25):
            lower, _upper = histogram_bucket_bounds(index)
            metrics = Metrics()
            for _ in range(50):
                metrics.observe_histogram("lat", lower)
            hist = metrics.snapshot()["histograms"]["lat"]
            for q in ("p50", "p90", "p99"):
                assert lower / width <= hist[q] <= lower * width

    def test_disjoint_bucket_merge(self):
        fast, slow = Metrics(), Metrics()
        for _ in range(10):
            fast.observe_histogram("lat", 1e-5)
        for _ in range(10):
            slow.observe_histogram("lat", 1e2)
        merged = Metrics()
        merged.merge_snapshot(fast.snapshot())
        merged.merge_snapshot(slow.snapshot())
        hist = merged.snapshot()["histograms"]["lat"]
        assert hist["count"] == 20
        assert hist["min"] == 1e-5
        assert hist["max"] == 1e2
        assert hist["sum"] == pytest.approx(10 * 1e-5 + 10 * 1e2)
        # The median straddles the gap; p99 must land in the slow mode.
        assert hist["p99"] >= 1.0

    def test_underflow_and_overflow_buckets(self):
        metrics = Metrics()
        metrics.observe_histogram("lat", 1e-9)   # below the 1e-6 span
        metrics.observe_histogram("lat", 1e6)    # above the 1e4 span
        hist = metrics.snapshot()["histograms"]["lat"]
        assert hist["count"] == 2
        assert set(map(int, hist["buckets"])) == {0, HISTOGRAM_BUCKETS - 1}


class TestGoldenSnapshot:
    def test_snapshot_schema_is_stable(self):
        """The exported snapshot JSON must stay load-compatible: a golden
        file pins the schema consumed by dashboards and the flusher."""
        metrics = Metrics()
        metrics.increment("index.queries", 3)
        metrics.set_gauge("memory.held_bytes", 2048.0)
        metrics.merge_snapshot(
            {"timers": {"build": {"seconds": 1.25, "calls": 2}}}
        )
        metrics.observe("convergence.delta", 0.5)
        metrics.observe_histogram("index.query_seconds", 0.004)
        metrics.observe_histogram("index.query_seconds", 0.008)
        snapshot = json.loads(json.dumps(metrics.snapshot(), sort_keys=True))
        golden_path = REPO_ROOT / "tests" / "data" / "metrics_snapshot_golden.json"
        golden = json.loads(golden_path.read_text(encoding="utf-8"))
        assert snapshot == golden


# ----------------------------------------------------------------------
# Wiring: retrieval + core record telemetry without changing results
# ----------------------------------------------------------------------
class TestRetrievalWiring:
    def test_index_query_records_latency_and_slow_query(self, pair):
        index = GSimIndex.build(*pair, iterations=4)
        slow = SlowQueryLog(threshold_seconds=0.0)
        context = ExecutionContext(slow_queries=slow)
        index.query([0, 1], [2, 3], context=context)
        snap = context.snapshot()
        assert snap["histograms"]["index.query_seconds"]["count"] == 1
        assert snap["counters"]["index.query.requests"] == 1
        assert "index.query.errors" not in snap["counters"]
        # The nested batch engine records first; the index-level record
        # wraps it.
        by_operation = {r.operation: r for r in slow.records()}
        assert "batch.query_block" in by_operation
        record = by_operation["index.query"]
        assert record.attributes["width"] >= 1
        assert record.attributes["error"] is False

    def test_index_query_error_counted(self, pair):
        index = GSimIndex.build(*pair, iterations=4)
        slow = SlowQueryLog(threshold_seconds=0.0)
        context = ExecutionContext(slow_queries=slow)
        with pytest.raises(IndexError):
            index.query([10**9], [0], context=context)
        snap = context.snapshot()
        assert snap["counters"]["index.query.errors"] == 1
        assert slow.records()[-1].attributes["error"] is True

    def test_top_pairs_and_query_many_record(self, pair):
        index = GSimIndex.build(*pair, iterations=4)
        slow = SlowQueryLog(threshold_seconds=0.0)
        context = ExecutionContext(slow_queries=slow)
        index.top_pairs(5, context=context)
        index.query_many([([0], [1]), ([2], [3])], context=context)
        operations = [r.operation for r in slow.records()]
        assert "index.top_pairs" in operations
        assert "index.query_many" in operations
        assert "topk.scan_pairs" in operations  # nested core scan
        snap = context.snapshot()
        assert snap["histograms"]["index.top_pairs_seconds"]["count"] == 1
        assert snap["histograms"]["index.query_many_seconds"]["count"] == 1

    def test_top_k_pairs_bit_identical_with_telemetry(self, pair):
        graph_a, graph_b = pair
        bare = top_k_pairs(graph_a, graph_b, 10, iterations=5)
        context = ExecutionContext(slow_queries=SlowQueryLog(threshold_seconds=0.0))
        observed = top_k_pairs(
            graph_a, graph_b, 10, iterations=5, context=context
        )
        assert [(p.node_a, p.node_b) for p in bare] == [
            (p.node_a, p.node_b) for p in observed
        ]
        np.testing.assert_array_equal(
            np.array([p.score for p in bare]),
            np.array([p.score for p in observed]),
        )
        assert context.slow_queries.total_recorded >= 1

    def test_batch_engine_records(self):
        from repro.core.batch import BatchQueryEngine
        from repro.core.embeddings import LowRankFactors

        engine = BatchQueryEngine(
            LowRankFactors(np.ones((4, 1)), np.ones((3, 1)))
        )
        slow = SlowQueryLog(threshold_seconds=0.0)
        context = ExecutionContext(slow_queries=slow)
        engine.query([0, 1], [2], context=context)
        record = slow.records()[0]
        assert record.operation == "batch.query_block"
        assert record.attributes["cells"] == 2

    def test_cell_merges_into_metrics_sink(self, pair):
        from repro.experiments.runner import ALGORITHMS, run_algorithm
        from repro.workloads.queries import make_workload

        graph_a, graph_b = pair
        workload = make_workload(graph_a, graph_b, 4, 4, seed=3)
        sink = Metrics()
        slow = SlowQueryLog(threshold_seconds=0.0)
        record = run_algorithm(
            ALGORITHMS["GSim+"],
            graph_a,
            graph_b,
            workload.queries_a,
            workload.queries_b,
            3,
            metrics_sink=sink,
            slow_queries=slow,
        )
        assert record.outcome.value == "ok"
        snap = sink.snapshot()
        assert snap["counters"].get("gsim_plus.iterations", 0) > 0


# ----------------------------------------------------------------------
# CLI wiring (tentpole flags + failure-path flush)
# ----------------------------------------------------------------------
class TestCliTelemetry:
    def test_topk_writes_telemetry(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "telemetry"
        code = main([
            "topk", "--scale", "tiny", "--top", "3",
            "--telemetry-dir", str(out),
            "--slow-query-ms", "0",
            "--slo", "p99(topk.scan_seconds) < 60s",
        ])
        assert code == 0
        assert_valid_prometheus((out / "metrics.prom").read_text())
        slow_rows = [
            json.loads(line)
            for line in (out / "slow_queries.jsonl").read_text().splitlines()
        ]
        assert any(row["operation"] == "topk.scan_pairs" for row in slow_rows)
        report = json.loads((out / "slo_report.json").read_text())
        assert report[0]["ok"] is True
        assert "telemetry written to" in capsys.readouterr().out

    def test_slo_violation_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "topk", "--scale", "tiny", "--top", "3",
            "--telemetry-dir", str(tmp_path / "t"),
            "--slo", "max(topk.scan_seconds) < 1us",
        ])
        assert code == 3
        captured = capsys.readouterr()
        assert "VIOLATED" in captured.out
        assert "SLO violated" in captured.err

    def test_slo_without_telemetry_dir(self, capsys):
        from repro.cli import main

        code = main([
            "topk", "--scale", "tiny", "--top", "3",
            "--slo", "max(topk.scan_seconds) < 1us",
        ])
        assert code == 3

    def test_bad_slo_is_a_clean_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "topk", "--scale", "tiny", "--top", "3",
                "--slo", "p42(x) > fast",
            ])
        assert excinfo.value.code == 2
        assert "cannot parse SLO" in capsys.readouterr().err

    def test_failure_path_still_flushes(self, tmp_path, capsys, monkeypatch):
        import repro.core
        from repro.cli import main

        def boom(*args, **kwargs):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(repro.core, "top_k_pairs", boom)
        out = tmp_path / "telemetry"
        with pytest.raises(RuntimeError, match="injected failure"):
            main([
                "topk", "--scale", "tiny", "--top", "3",
                "--telemetry-dir", str(out),
            ])
        # The partial snapshot still landed on disk for the post-mortem.
        assert (out / "metrics.prom").exists()
        assert (out / "metrics.jsonl").exists()

    def test_spec_accepts_telemetry(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "telemetry-smoke",
            "datasets": ["EE"],
            "algorithms": ["GSim+"],
            "scale": "tiny",
            "iterations": 2,
        }))
        out = tmp_path / "telemetry"
        code = main([
            "spec", str(spec),
            "--telemetry-dir", str(out),
            "--slo", "rate(sweep.quarantined/sweep.cells) <= 1",
        ])
        assert code == 0
        assert (out / "metrics.prom").exists()
        jsonl = (out / "metrics.jsonl").read_text().splitlines()
        final = json.loads(jsonl[-1])
        assert final["counters"].get("gsim_plus.iterations", 0) > 0


# ----------------------------------------------------------------------
# Perf-regression gate (scripts/bench_gate.py)
# ----------------------------------------------------------------------
def _load_bench_gate():
    path = REPO_ROOT / "scripts" / "bench_gate.py"
    module_spec = importlib.util.spec_from_file_location("bench_gate", path)
    module = importlib.util.module_from_spec(module_spec)
    module_spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench_gate():
    return _load_bench_gate()


def _bench_json(medians: dict[str, float]) -> dict:
    return {
        "machine_info": {}, "commit_info": {}, "datetime": "", "version": "4",
        "benchmarks": [
            {
                "fullname": fullname,
                "name": fullname.rpartition("::")[2],
                "stats": {
                    "median": median, "mean": median,
                    "min": median * 0.9, "max": median * 1.1,
                    "ops": 1.0 / median,
                },
            }
            for fullname, median in medians.items()
        ],
    }


class TestBenchGate:
    def test_self_compare_passes(self, bench_gate, tmp_path, capsys):
        baseline = REPO_ROOT / "results" / "BENCH_core.json"
        code = bench_gate.main([
            "--baseline", str(baseline), "--candidate", str(baseline),
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_two_x_regression_fails(self, bench_gate, tmp_path, capsys):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(_bench_json({"bench::a": 0.01, "bench::b": 0.02})))
        cand.write_text(json.dumps(_bench_json({"bench::a": 0.02, "bench::b": 0.02})))
        code = bench_gate.main([
            "--baseline", str(base), "--candidate", str(cand),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL bench::a" in out
        assert "ok   bench::b" in out

    def test_improvement_never_fails(self, bench_gate, tmp_path):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(_bench_json({"bench::a": 0.01})))
        cand.write_text(json.dumps(_bench_json({"bench::a": 0.0001})))
        assert bench_gate.main([
            "--baseline", str(base), "--candidate", str(cand),
        ]) == 0

    def test_band_override_last_match_wins(self, bench_gate, tmp_path):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(_bench_json({"bench::workers_4": 0.01})))
        cand.write_text(json.dumps(_bench_json({"bench::workers_4": 0.025})))
        common = ["--baseline", str(base), "--candidate", str(cand)]
        assert bench_gate.main(common) == 1  # default +50% band
        assert bench_gate.main(common + ["--band", "*workers*=2.0"]) == 0
        assert bench_gate.main(
            common + ["--band", "*workers*=2.0", "--band", "bench::*=0.1"]
        ) == 1  # later, more specific band tightened it again

    def test_new_and_retired_benchmarks_reported_not_gated(
        self, bench_gate, tmp_path, capsys
    ):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(_bench_json({"bench::old": 0.01, "bench::x": 0.01})))
        cand.write_text(json.dumps(_bench_json({"bench::new": 0.01, "bench::x": 0.01})))
        assert bench_gate.main([
            "--baseline", str(base), "--candidate", str(cand),
        ]) == 0
        out = capsys.readouterr().out
        assert "gone bench::old" in out
        assert "new  bench::new" in out

    def test_ops_stat_direction(self, bench_gate, tmp_path):
        # ops is a rate: LOWER candidate ops = regression.
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(_bench_json({"bench::a": 0.01})))
        cand.write_text(json.dumps(_bench_json({"bench::a": 0.03})))
        assert bench_gate.main([
            "--baseline", str(base), "--candidate", str(cand), "--stat", "ops",
        ]) == 1

    def test_unusable_input_exits_2(self, bench_gate, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        with pytest.raises(SystemExit) as excinfo:
            bench_gate.main([
                "--baseline", str(missing), "--candidate", str(missing),
            ])
        assert excinfo.value.code == 2
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            bench_gate.main([
                "--baseline", str(garbage), "--candidate", str(garbage),
            ])
        assert excinfo.value.code == 2

    def test_no_overlap_exits_2(self, bench_gate, tmp_path):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(_bench_json({"bench::a": 0.01})))
        cand.write_text(json.dumps(_bench_json({"bench::b": 0.01})))
        assert bench_gate.main([
            "--baseline", str(base), "--candidate", str(cand),
        ]) == 2

    def test_json_report(self, bench_gate, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_bench_json({"bench::a": 0.01})))
        report_path = tmp_path / "report.json"
        bench_gate.main([
            "--baseline", str(base), "--candidate", str(base),
            "--json", str(report_path),
        ])
        report = json.loads(report_path.read_text())
        assert report["compared"] == 1
        assert report["rows"][0]["regressed"] is False
