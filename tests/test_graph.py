"""Unit tests for repro.graphs.graph.Graph."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import Graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_from_edges_weighted(self):
        g = Graph.from_edges(2, [(0, 1, 2.5)])
        assert g.adjacency[0, 1] == 2.5

    def test_from_edges_duplicates_sum(self):
        g = Graph.from_edges(2, [(0, 1), (0, 1)])
        assert g.num_edges == 1
        assert g.adjacency[0, 1] == 2.0

    def test_from_edges_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_edges(2, [(0, 5)])

    def test_from_edges_bad_tuple(self):
        with pytest.raises(ValueError, match="2 or 3 items"):
            Graph.from_edges(2, [(0,)])

    def test_from_dense_array(self):
        g = Graph(np.array([[0, 1], [0, 0]]))
        assert g.num_edges == 1
        assert g.has_edge(0, 1)

    def test_from_sparse_matrix(self):
        m = sp.coo_matrix(([1.0], ([0], [1])), shape=(3, 3))
        g = Graph(m)
        assert g.has_edge(0, 1)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            Graph(np.zeros((2, 3)))

    def test_explicit_zeros_eliminated(self):
        m = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        m[0, 1] = 0.0
        g = Graph(m)
        assert g.num_edges == 0

    def test_empty_constructor(self):
        g = Graph.empty(7)
        assert g.num_nodes == 7
        assert g.num_edges == 0

    def test_zero_node_graph(self):
        g = Graph.empty(0)
        assert g.num_nodes == 0
        assert g.density == 0.0
        assert g.average_degree == 0.0


class TestProperties:
    def test_density(self):
        g = Graph.from_edges(2, [(0, 1)])
        assert g.density == pytest.approx(0.25)

    def test_average_degree(self, cycle_graph):
        assert cycle_graph.average_degree == pytest.approx(1.0)

    def test_name(self):
        assert Graph.empty(1, name="x").name == "x"

    def test_repr(self, path_graph):
        assert "path4" in repr(path_graph)
        assert "nodes=4" in repr(path_graph)

    def test_adjacency_t_is_transpose(self, random_pair):
        graph, _ = random_pair
        diff = graph.adjacency.T - graph.adjacency_t
        assert abs(diff).sum() == 0

    def test_memory_bytes_positive(self, path_graph):
        assert path_graph.memory_bytes() > 0


class TestDegrees:
    def test_out_degrees(self, star_graph):
        assert star_graph.out_degrees().tolist() == [4, 0, 0, 0, 0]

    def test_in_degrees(self, star_graph):
        assert star_graph.in_degrees().tolist() == [0, 1, 1, 1, 1]

    def test_max_degree(self, star_graph):
        assert star_graph.max_degree() == 4

    def test_max_degree_empty(self):
        assert Graph.empty(3).max_degree() == 0
        assert Graph.empty(0).max_degree() == 0

    def test_degrees_count_edges_not_weights(self):
        g = Graph.from_edges(2, [(0, 1, 5.0)])
        assert g.out_degrees().tolist() == [1, 0]


class TestNeighbourhoods:
    def test_successors(self, path_graph):
        assert path_graph.successors(0).tolist() == [1]
        assert path_graph.successors(3).tolist() == []

    def test_predecessors(self, path_graph):
        assert path_graph.predecessors(0).tolist() == []
        assert path_graph.predecessors(1).tolist() == [0]

    def test_neighbors_union(self, path_graph):
        assert path_graph.neighbors(1).tolist() == [0, 2]

    def test_has_edge(self, path_graph):
        assert path_graph.has_edge(0, 1)
        assert not path_graph.has_edge(1, 0)

    def test_node_range_checked(self, path_graph):
        with pytest.raises(IndexError):
            path_graph.successors(10)
        with pytest.raises(IndexError):
            path_graph.predecessors(-1)

    def test_edges_iteration(self, path_graph):
        edges = sorted((s, d) for s, d, _ in path_graph.edges())
        assert edges == [(0, 1), (1, 2), (2, 3)]


class TestDerivedGraphs:
    def test_reversed(self, path_graph):
        rev = path_graph.reversed()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert rev.num_edges == path_graph.num_edges

    def test_double_reverse_identity(self, random_pair):
        graph, _ = random_pair
        assert graph.reversed().reversed() == graph

    def test_to_undirected_symmetric(self, path_graph):
        und = path_graph.to_undirected()
        assert und.has_edge(0, 1) and und.has_edge(1, 0)

    def test_to_undirected_weight_max(self):
        g = Graph.from_edges(2, [(0, 1, 3.0), (1, 0, 5.0)])
        und = g.to_undirected()
        assert und.adjacency[0, 1] == 5.0
        assert und.adjacency[1, 0] == 5.0

    def test_subgraph_relabels(self, path_graph):
        sub = path_graph.subgraph([1, 2])
        assert sub.num_nodes == 2
        assert sub.has_edge(0, 1)  # old edge 1 -> 2

    def test_subgraph_rejects_duplicates(self, path_graph):
        with pytest.raises(ValueError, match="duplicates"):
            path_graph.subgraph([1, 1])

    def test_subgraph_rejects_out_of_range(self, path_graph):
        with pytest.raises(ValueError, match="out of range"):
            path_graph.subgraph([0, 99])

    def test_subgraph_empty_selection(self, path_graph):
        sub = path_graph.subgraph([])
        assert sub.num_nodes == 0

    def test_union_disjoint_shapes(self, path_graph, cycle_graph):
        union = path_graph.union_disjoint(cycle_graph)
        assert union.num_nodes == 9
        assert union.num_edges == path_graph.num_edges + cycle_graph.num_edges

    def test_union_disjoint_offsets(self, path_graph, cycle_graph):
        union = path_graph.union_disjoint(cycle_graph)
        assert union.has_edge(0, 1)            # from the path
        assert union.has_edge(4, 5)            # cycle edge 0 -> 1, shifted by 4
        assert not union.has_edge(3, 4)        # no cross edges


class TestEquality:
    def test_equal_same_edges(self):
        a = Graph.from_edges(3, [(0, 1)])
        b = Graph.from_edges(3, [(0, 1)])
        assert a == b

    def test_unequal_different_edges(self):
        a = Graph.from_edges(3, [(0, 1)])
        b = Graph.from_edges(3, [(1, 0)])
        assert a != b

    def test_unequal_different_sizes(self):
        assert Graph.empty(2) != Graph.empty(3)

    def test_not_equal_to_other_types(self):
        assert Graph.empty(1) != "graph"


class TestNonFiniteRejection:
    def test_nan_weight_rejected(self):
        import numpy as np

        dense = np.zeros((2, 2))
        dense[0, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            Graph(dense)

    def test_inf_weight_rejected(self):
        import numpy as np

        with pytest.raises(ValueError, match="non-finite"):
            Graph.from_edges(2, [(0, 1, np.inf)])

    def test_finite_weights_fine(self):
        g = Graph.from_edges(2, [(0, 1, 1e300)])
        assert g.num_edges == 1
