"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, erdos_renyi_graph, random_node_sample


@pytest.fixture
def path_graph() -> Graph:
    """Directed path 0 -> 1 -> 2 -> 3."""
    return Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)], name="path4")


@pytest.fixture
def cycle_graph() -> Graph:
    """Directed 5-cycle."""
    return Graph.from_edges(
        5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], name="cycle5"
    )


@pytest.fixture
def star_graph() -> Graph:
    """Star: centre 0 points at 1..4."""
    return Graph.from_edges(5, [(0, i) for i in range(1, 5)], name="star5")


@pytest.fixture
def random_pair() -> tuple[Graph, Graph]:
    """A seeded (G_A, G_B) pair with G_B sampled from G_A."""
    graph_a = erdos_renyi_graph(40, 160, seed=1)
    graph_b = random_node_sample(graph_a, 15, seed=2)
    return graph_a, graph_b


@pytest.fixture
def tiny_pair() -> tuple[Graph, Graph]:
    """A very small pair for the spectral (Kronecker) tests."""
    graph_a = erdos_renyi_graph(12, 40, seed=3)
    graph_b = random_node_sample(graph_a, 8, seed=4)
    return graph_a, graph_b


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed NumPy generator."""
    return np.random.default_rng(12345)
