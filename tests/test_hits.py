"""Unit tests for HITS, including the GSim -> HITS reduction from
Blondel et al. (the construction the paper's Related Work references)."""

import numpy as np
import pytest

from repro import Graph, gsim_plus
from repro.graphs import erdos_renyi_graph
from repro.models import hits


class TestHITS:
    def test_authority_is_pointed_at(self):
        g = Graph.from_edges(3, [(0, 2), (1, 2)])
        result = hits(g)
        assert int(np.argmax(result.authorities)) == 2

    def test_hub_points_at_authorities(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        result = hits(g)
        assert int(np.argmax(result.hubs)) == 0

    def test_scores_normalised(self, random_pair):
        graph, _ = random_pair
        result = hits(graph)
        assert np.linalg.norm(result.hubs) == pytest.approx(1.0)
        assert np.linalg.norm(result.authorities) == pytest.approx(1.0)

    def test_scores_nonnegative(self, random_pair):
        graph, _ = random_pair
        result = hits(graph)
        assert (result.hubs >= -1e-12).all()
        assert (result.authorities >= -1e-12).all()

    def test_edgeless_graph_zero_scores(self):
        result = hits(Graph.empty(3))
        np.testing.assert_array_equal(result.authorities, 0.0)

    def test_empty_graph(self):
        result = hits(Graph.empty(0))
        assert result.hubs.shape == (0,)

    def test_fixed_point_property(self, random_pair):
        # At convergence: a ∝ A^T h and h ∝ A a.
        graph, _ = random_pair
        result = hits(graph, iterations=200)
        a_next = graph.adjacency_t @ result.hubs
        a_next /= np.linalg.norm(a_next)
        np.testing.assert_allclose(a_next, result.authorities, atol=1e-8)


class TestGSimReducesToHITS:
    """Blondel et al.: GSim between G and the path 1 -> 2, at convergence,
    recovers hub scores (column of node 1) and authority scores (column of
    node 2) of G."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reduction_on_random_graphs(self, seed):
        graph = erdos_renyi_graph(15, 60, seed=seed)
        path2 = Graph.from_edges(2, [(0, 1)])
        # Even iterates converge; use a deep even count.
        similarity = gsim_plus(graph, path2, iterations=60).similarity
        reference = hits(graph, iterations=200)

        hub_column = similarity[:, 0] / np.linalg.norm(similarity[:, 0])
        authority_column = similarity[:, 1] / np.linalg.norm(similarity[:, 1])
        np.testing.assert_allclose(hub_column, reference.hubs, atol=1e-4)
        np.testing.assert_allclose(
            authority_column, reference.authorities, atol=1e-4
        )

    def test_reduction_on_star(self):
        star = Graph.from_edges(5, [(0, i) for i in range(1, 5)])
        path2 = Graph.from_edges(2, [(0, 1)])
        similarity = gsim_plus(star, path2, iterations=40).similarity
        # The centre is the only hub: column 0 peaks at node 0.
        assert int(np.argmax(similarity[:, 0])) == 0
        # Every leaf is an equal authority: column 1 equal off-centre.
        leaf_scores = similarity[1:, 1]
        np.testing.assert_allclose(leaf_scores, leaf_scores[0], atol=1e-10)
