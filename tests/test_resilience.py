"""Resilience layer: retries, checkpoints, fault injection, corruption.

The crash/resume tests are the heart of this file: a fault-injected kill
at iteration *k* followed by a resume must produce **bit-identical**
factors and scores — one GSim+ iteration is a deterministic function of
its exactly round-tripped state, so any drift is a bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.embeddings import LowRankFactors
from repro.core.gsim_plus import GSimPlus, gsim_plus
from repro.core.serialization import load_factors, save_factors
from repro.experiments.journal import RunJournal
from repro.experiments.runner import (
    ALGORITHMS,
    AlgorithmSpec,
    Outcome,
    cell_key,
    run_algorithm,
)
from repro.graphs import Graph
from repro.retrieval.index import GSimIndex
from repro.runtime import ExecutionContext, Metrics
from repro.runtime.errors import (
    Cancelled,
    CorruptArtifactError,
    DeadlineExceeded,
    InjectedFault,
    TransientError,
)
from repro.runtime.resilience import (
    CheckpointManager,
    FaultInjector,
    RetryPolicy,
    atomic_write,
    content_checksum,
)


def _flip_byte(path, offset=-20):
    """Corrupt one byte of ``path`` in place."""
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


def _flip_payload_byte(path):
    """Corrupt one byte inside the largest npz member's compressed data.

    A fixed file offset can land in redundant zip plumbing (duplicate
    local-header fields) that a reader legitimately never consults; by
    aiming at the middle of the biggest member's payload the flip always
    hits bytes that carry array content.
    """
    import zipfile

    with zipfile.ZipFile(path) as archive:
        info = max(archive.infolist(), key=lambda entry: entry.compress_size)
        header = bytearray(path.read_bytes())[info.header_offset:]
        # local header: 26..30 hold the name/extra lengths; data follows.
        name_len = int.from_bytes(header[26:28], "little")
        extra_len = int.from_bytes(header[28:30], "little")
        data_start = info.header_offset + 30 + name_len + extra_len
    _flip_byte(path, offset=data_start + info.compress_size // 2)


# ----------------------------------------------------------------------
# atomic_write / content_checksum
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_publishes_on_success(self, tmp_path):
        target = tmp_path / "artifact.txt"
        with atomic_write(target) as tmp:
            tmp.write_text("complete")
        assert target.read_text() == "complete"
        assert list(tmp_path.iterdir()) == [target]

    def test_failure_preserves_existing_file(self, tmp_path):
        target = tmp_path / "artifact.txt"
        target.write_text("old good copy")
        with pytest.raises(RuntimeError, match="mid-write crash"):
            with atomic_write(target) as tmp:
                tmp.write_text("partial gar")
                raise RuntimeError("mid-write crash")
        assert target.read_text() == "old good copy"
        assert list(tmp_path.iterdir()) == [target]


class TestContentChecksum:
    def test_independent_of_insertion_order(self):
        a = {"u": np.arange(4.0), "v": np.ones(3), "tag": "x"}
        b = {"tag": "x", "v": np.ones(3), "u": np.arange(4.0)}
        assert content_checksum(a) == content_checksum(b)

    def test_sensitive_to_values_and_names(self):
        base = content_checksum({"u": np.arange(4.0)})
        assert content_checksum({"u": np.arange(1, 5.0)}) != base
        assert content_checksum({"w": np.arange(4.0)}) != base


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.5, multiplier=2.0, max_delay=4.0, seed=9)
        delays = [policy.delay(i) for i in (1, 2, 3, 4, 5, 6)]
        assert delays == [policy.delay(i) for i in (1, 2, 3, 4, 5, 6)]
        assert all(0.0 < d <= 4.0 for d in delays)

    def test_different_seeds_jitter_differently(self):
        a = RetryPolicy(seed=1).delay(1)
        b = RetryPolicy(seed=2).delay(1)
        assert a != b

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(TransientError("hiccup"))
        assert policy.is_transient(InjectedFault("chaos", checkpoint_number=1))
        assert policy.is_transient(OSError("disk"))
        assert not policy.is_transient(ValueError("bad input"))
        assert not policy.is_transient(Cancelled("stop"))
        assert not policy.is_transient(DeadlineExceeded("too slow"))
        assert not policy.is_transient(CorruptArtifactError("bad", path="x"))

    def test_budget_failures_opt_in(self):
        policy = RetryPolicy(retry_budget_failures=True)
        assert policy.is_transient(DeadlineExceeded("load spike"))
        assert not policy.is_transient(Cancelled("stop"))

    def test_call_retries_then_succeeds(self):
        attempts = []
        sleeps = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("not yet")
            return "done"

        policy = RetryPolicy(max_attempts=3, base_delay=0.25, seed=0)
        result = policy.call(flaky, what="flaky", sleep=sleeps.append)
        assert result == "done"
        assert len(attempts) == 3
        assert sleeps == [policy.delay(1), policy.delay(2)]

    def test_call_reraises_fatal_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise ValueError("programming error")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(broken, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_call_exhaustion_reraises(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(TransientError):
            policy.call(
                lambda: (_ for _ in ()).throw(TransientError("always")),
                sleep=lambda _: None,
            )

    def test_on_retry_callback(self):
        seen = []
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(TransientError):
            policy.call(
                lambda: (_ for _ in ()).throw(TransientError("x")),
                sleep=lambda _: None,
                on_retry=lambda attempt, exc: seen.append(attempt),
            )
        assert seen == [1]


# ----------------------------------------------------------------------
# CheckpointManager
# ----------------------------------------------------------------------
class TestCheckpointManager:
    def test_roundtrip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        arrays = {"u": np.random.default_rng(0).normal(size=(5, 3))}
        manager.save(4, arrays, meta={"kind": "factors", "log_scale": 1.5})
        snapshot = manager.load(4)
        assert snapshot.step == 4
        assert np.array_equal(snapshot.arrays["u"], arrays["u"])
        assert snapshot.meta == {"kind": "factors", "log_scale": 1.5}

    def test_reserved_names_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            CheckpointManager(tmp_path).save(1, {"__meta_json__": np.ones(1)})

    def test_missing_step_is_corrupt(self, tmp_path):
        with pytest.raises(CorruptArtifactError):
            CheckpointManager(tmp_path).load(7)

    def test_truncated_file_is_corrupt(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(1, {"u": np.ones(8)})
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(CorruptArtifactError):
            manager.load(1)

    def test_flipped_byte_is_corrupt(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(1, {"u": np.arange(64.0)})
        _flip_byte(path, offset=len(path.read_bytes()) // 2)
        with pytest.raises(CorruptArtifactError):
            manager.load(1)

    def test_latest_valid_skips_corrupt_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, {"u": np.ones(4)}, meta={"kind": "factors"})
        newest = manager.save(2, {"u": np.full(4, 2.0)}, meta={"kind": "factors"})
        newest.write_bytes(newest.read_bytes()[:30])
        with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
            snapshot = manager.load_latest_valid()
        assert snapshot is not None and snapshot.step == 1
        assert np.array_equal(snapshot.arrays["u"], np.ones(4))

    def test_latest_valid_empty_directory(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest_valid() is None

    def test_prune_keeps_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for step in (1, 2, 3, 4):
            manager.save(step, {"u": np.ones(2)})
        assert manager.steps() == [3, 4]

    def test_clear(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, {"u": np.ones(2)})
        manager.clear()
        assert manager.steps() == []


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_fires_at_exact_ordinal(self):
        injector = FaultInjector(fail_at=3)
        injector.on_checkpoint("a")
        injector.on_checkpoint("b")
        with pytest.raises(InjectedFault) as info:
            injector.on_checkpoint("c")
        assert info.value.checkpoint_number == 3
        assert injector.faults_fired == [(3, "c")]

    def test_match_filters_labels(self):
        injector = FaultInjector(fail_at=1, match="iteration")
        injector.on_checkpoint("unrelated poll")
        with pytest.raises(InjectedFault):
            injector.on_checkpoint("GSim+ iteration 1")

    def test_seeded_probability_replays(self):
        def pattern(seed):
            injector = FaultInjector(probability=0.3, seed=seed)
            fired = []
            for i in range(50):
                try:
                    injector.on_checkpoint(f"step {i}")
                except InjectedFault:
                    fired.append(i)
            return fired

        assert pattern(5) == pattern(5)
        assert pattern(5) != pattern(6)

    def test_rides_execution_context(self):
        injector = FaultInjector(fail_at=2)
        context = ExecutionContext(fault_injector=injector)
        context.checkpoint("one")
        with pytest.raises(InjectedFault):
            context.checkpoint("two")
        assert injector.checkpoints_seen == 2


# ----------------------------------------------------------------------
# Crash / resume equivalence (the acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestCrashResume:
    def test_factored_resume_is_bit_identical(self, tmp_path, random_pair):
        graph_a, graph_b = random_pair
        iterations = 6
        baseline = gsim_plus(graph_a, graph_b, iterations=iterations)

        manager = CheckpointManager(tmp_path)
        injector = FaultInjector(fail_at=4, match="GSim+ iteration")
        context = ExecutionContext(fault_injector=injector)
        with pytest.raises(InjectedFault):
            gsim_plus(
                graph_a, graph_b, iterations=iterations,
                context=context, checkpoints=manager,
            )
        assert manager.steps(), "the killed run left no snapshots"
        assert max(manager.steps()) < iterations

        resumed = gsim_plus(
            graph_a, graph_b, iterations=iterations,
            checkpoints=manager, resume_from=manager,
        )
        assert np.array_equal(resumed.similarity, baseline.similarity)
        assert resumed.z_frobenius_log == baseline.z_frobenius_log

    def test_dense_fallback_resume_is_bit_identical(self, tmp_path, tiny_pair):
        graph_a, graph_b = tiny_pair
        iterations = 7  # widths double past min(n_A, n_B): dense regime
        baseline = gsim_plus(graph_a, graph_b, iterations=iterations)
        assert baseline.used_dense_fallback

        manager = CheckpointManager(tmp_path)
        injector = FaultInjector(fail_at=6, match="GSim+ iteration")
        context = ExecutionContext(fault_injector=injector)
        with pytest.raises(InjectedFault):
            gsim_plus(
                graph_a, graph_b, iterations=iterations,
                context=context, checkpoints=manager,
            )

        resumed = gsim_plus(
            graph_a, graph_b, iterations=iterations,
            checkpoints=manager, resume_from=manager,
        )
        assert np.array_equal(resumed.similarity, baseline.similarity)
        assert resumed.z_frobenius_log == baseline.z_frobenius_log

    @pytest.mark.recompress
    def test_recompressed_resume_is_bit_identical(self, tmp_path, random_pair):
        graph_a, graph_b = random_pair
        iterations = 6
        baseline = gsim_plus(
            graph_a, graph_b, iterations=iterations, recompress_tol=1e-8
        )

        manager = CheckpointManager(tmp_path)
        injector = FaultInjector(fail_at=4, match="GSim+ iteration")
        context = ExecutionContext(fault_injector=injector)
        with pytest.raises(InjectedFault):
            gsim_plus(
                graph_a, graph_b, iterations=iterations,
                recompress_tol=1e-8,
                context=context, checkpoints=manager,
            )
        assert manager.steps(), "the killed run left no snapshots"

        resumed = gsim_plus(
            graph_a, graph_b, iterations=iterations,
            recompress_tol=1e-8,
            checkpoints=manager, resume_from=manager,
        )
        assert np.array_equal(resumed.similarity, baseline.similarity)
        assert resumed.z_frobenius_log == baseline.z_frobenius_log
        assert resumed.truncation == baseline.truncation

    @pytest.mark.recompress
    def test_recompress_tol_mismatch_refuses_resume(self, tmp_path, random_pair):
        graph_a, graph_b = random_pair
        manager = CheckpointManager(tmp_path)
        gsim_plus(
            graph_a, graph_b, iterations=3,
            recompress_tol=1e-8, checkpoints=manager,
        )
        with pytest.raises(ValueError, match="does not match this solver"):
            gsim_plus(graph_a, graph_b, iterations=3, resume_from=manager)

    @pytest.mark.recompress
    def test_precision_mismatch_refuses_resume(self, tmp_path, random_pair):
        graph_a, graph_b = random_pair
        manager = CheckpointManager(tmp_path)
        gsim_plus(graph_a, graph_b, iterations=3, checkpoints=manager)
        with pytest.raises(ValueError, match="does not match this solver"):
            gsim_plus(
                graph_a, graph_b, iterations=3,
                precision="float32", resume_from=manager,
            )

    def test_resume_falls_back_past_corrupt_snapshot(self, tmp_path, random_pair):
        graph_a, graph_b = random_pair
        iterations = 5
        baseline = gsim_plus(graph_a, graph_b, iterations=iterations)
        manager = CheckpointManager(tmp_path, keep=10)
        injector = FaultInjector(fail_at=4, match="GSim+ iteration")
        with pytest.raises(InjectedFault):
            gsim_plus(
                graph_a, graph_b, iterations=iterations,
                context=ExecutionContext(fault_injector=injector),
                checkpoints=manager,
            )
        newest = manager.path_for(max(manager.steps()))
        _flip_payload_byte(newest)
        with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
            resumed = gsim_plus(
                graph_a, graph_b, iterations=iterations, resume_from=manager
            )
        assert np.array_equal(resumed.similarity, baseline.similarity)

    def test_resume_records_metrics(self, tmp_path, random_pair):
        graph_a, graph_b = random_pair
        manager = CheckpointManager(tmp_path)
        gsim_plus(graph_a, graph_b, iterations=3, checkpoints=manager)
        metrics = Metrics()
        gsim_plus(
            graph_a, graph_b, iterations=5,
            context=ExecutionContext(metrics=metrics),
            resume_from=manager,
        )
        tree = metrics.snapshot()
        assert tree["counters"]["gsim_plus.resumed"] == 1

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path, random_pair):
        graph_a, graph_b = random_pair
        manager = CheckpointManager(tmp_path)
        gsim_plus(graph_a, graph_b, iterations=3, checkpoints=manager)
        other = Graph.from_edges(3, [(0, 1), (1, 2)], name="other")
        with pytest.raises(ValueError, match="does not match this solver"):
            gsim_plus(graph_a, other, iterations=3, resume_from=manager)

    def test_index_build_resumes(self, tmp_path, random_pair):
        graph_a, graph_b = random_pair
        baseline = GSimIndex.build(graph_a, graph_b, iterations=5)
        manager = CheckpointManager(tmp_path)
        injector = FaultInjector(fail_at=3, match="GSim+ iteration")
        with pytest.raises(InjectedFault):
            GSimIndex.build(
                graph_a, graph_b, iterations=5,
                context=ExecutionContext(fault_injector=injector),
                checkpoints=manager,
            )
        resumed = GSimIndex.build(
            graph_a, graph_b, iterations=5, resume_from=manager
        )
        queries = ([0, 1, 2], [0, 1])
        assert np.array_equal(resumed.query(*queries), baseline.query(*queries))


# ----------------------------------------------------------------------
# Numeric-health guard
# ----------------------------------------------------------------------
class TestNumericGuard:
    @staticmethod
    def _explosive_pair():
        # 1e308-weighted edges overflow float64 within one product.
        edges_a = [(0, 1, 1e308), (1, 2, 1e308), (2, 0, 1e308)]
        edges_b = [(0, 1, 1e308), (1, 0, 1e308)]
        return (
            Graph.from_edges(3, edges_a, name="hot_a"),
            Graph.from_edges(2, edges_b, name="hot_b"),
        )

    def test_guard_keeps_iterates_finite(self):
        graph_a, graph_b = self._explosive_pair()
        metrics = Metrics()
        result = gsim_plus(
            graph_a, graph_b, iterations=4,
            context=ExecutionContext(metrics=metrics),
        )
        assert np.isfinite(result.similarity).all()
        counters = metrics.snapshot()["counters"]
        repaired = counters.get("gsim_plus.nonfinite_repairs", 0)
        rescued = counters.get("gsim_plus.norm_rescales", 0)
        assert repaired + rescued > 0

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_guard_can_be_disabled(self):
        graph_a, graph_b = self._explosive_pair()
        solver = GSimPlus(graph_a, graph_b, numeric_guard=False)
        try:
            result = solver.run(4)
            assert not np.isfinite(result.similarity).all()
        except (ZeroDivisionError, FloatingPointError):
            pass  # unguarded overflow may also collapse the iterate


# ----------------------------------------------------------------------
# Corrupt artifacts: factors + index files
# ----------------------------------------------------------------------
class TestArtifactCorruption:
    @staticmethod
    def _factors():
        rng = np.random.default_rng(3)
        return LowRankFactors(
            rng.normal(size=(6, 4)), rng.normal(size=(5, 4)), log_scale=2.5
        )

    def test_factor_roundtrip(self, tmp_path):
        path = tmp_path / "factors.npz"
        factors = self._factors()
        save_factors(factors, path)
        loaded = load_factors(path)
        assert np.array_equal(loaded.u, factors.u)
        assert np.array_equal(loaded.v, factors.v)
        assert loaded.log_scale == factors.log_scale

    def test_truncated_factor_file(self, tmp_path):
        path = tmp_path / "factors.npz"
        save_factors(self._factors(), path)
        path.write_bytes(path.read_bytes()[:25])
        with pytest.raises(CorruptArtifactError, match="rebuild"):
            load_factors(path)

    def test_flipped_byte_in_factor_file(self, tmp_path):
        path = tmp_path / "factors.npz"
        save_factors(self._factors(), path)
        _flip_payload_byte(path)
        with pytest.raises(CorruptArtifactError):
            load_factors(path)

    def test_missing_factor_file_is_not_corrupt(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_factors(tmp_path / "absent.npz")

    def test_index_roundtrip_and_corruption(self, tmp_path, random_pair):
        graph_a, graph_b = random_pair
        index = GSimIndex.build(graph_a, graph_b, iterations=4)
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = GSimIndex.load(path)
        queries = ([0, 1], [0, 1, 2])
        assert np.array_equal(loaded.query(*queries), index.query(*queries))

        _flip_payload_byte(path)
        with pytest.raises(CorruptArtifactError, match="rebuild"):
            GSimIndex.load(path)

    def test_truncated_index_file(self, tmp_path, random_pair):
        graph_a, graph_b = random_pair
        index = GSimIndex.build(graph_a, graph_b, iterations=3)
        path = tmp_path / "index.npz"
        index.save(path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(CorruptArtifactError):
            GSimIndex.load(path)


# ----------------------------------------------------------------------
# Run journal + resumable sweeps
# ----------------------------------------------------------------------
def _counting_spec(counter):
    """A fast fake algorithm that counts real executions."""

    def run(graph_a, graph_b, queries_a, queries_b, iterations, context=None):
        counter.append(1)
        return np.zeros((len(queries_a), len(queries_b)))

    return AlgorithmSpec(
        name="GSim+", run=run, cost_model="gsim+", units_per_second=1e8
    )


class TestRunJournal:
    @staticmethod
    def _pair():
        a = Graph.from_edges(6, [(i, (i + 1) % 6) for i in range(6)], name="a")
        b = Graph.from_edges(4, [(i, (i + 1) % 4) for i in range(4)], name="b")
        return a, b, np.arange(3), np.arange(2)

    def test_roundtrip_and_replay(self, tmp_path):
        a, b, qa, qb = self._pair()
        path = tmp_path / "journal.jsonl"
        executions: list[int] = []
        spec = _counting_spec(executions)

        journal = RunJournal(path)
        first = run_algorithm(spec, a, b, qa, qb, 3, journal=journal)
        assert first.ok and len(executions) == 1

        resumed = RunJournal(path, resume=True)
        assert len(resumed) == 1
        replayed = run_algorithm(spec, a, b, qa, qb, 3, journal=resumed)
        assert len(executions) == 1, "journalled cell must not re-execute"
        assert resumed.hits == 1
        assert replayed.to_dict() == first.to_dict()

    def test_only_missing_cells_execute(self, tmp_path):
        a, b, qa, qb = self._pair()
        path = tmp_path / "journal.jsonl"
        executions: list[int] = []
        spec = _counting_spec(executions)

        journal = RunJournal(path)
        run_algorithm(spec, a, b, qa, qb, 3, journal=journal)  # cell k=3
        # Interrupted here: cell k=4 never ran.  Resume the sweep.
        resumed = RunJournal(path, resume=True)
        for iterations in (3, 4):
            run_algorithm(spec, a, b, qa, qb, iterations, journal=resumed)
        assert len(executions) == 2, "resume must execute only the missing cell"
        assert resumed.hits == 1
        assert len(resumed) == 2

    def test_fresh_run_truncates(self, tmp_path):
        a, b, qa, qb = self._pair()
        path = tmp_path / "journal.jsonl"
        executions: list[int] = []
        spec = _counting_spec(executions)
        run_algorithm(spec, a, b, qa, qb, 3, journal=RunJournal(path))
        fresh = RunJournal(path, resume=False)
        assert len(fresh) == 0
        run_algorithm(spec, a, b, qa, qb, 3, journal=fresh)
        assert len(executions) == 2

    def test_torn_line_skipped_with_warning(self, tmp_path):
        a, b, qa, qb = self._pair()
        path = tmp_path / "journal.jsonl"
        executions: list[int] = []
        spec = _counting_spec(executions)
        journal = RunJournal(path)
        run_algorithm(spec, a, b, qa, qb, 3, journal=journal)
        run_algorithm(spec, a, b, qa, qb, 4, journal=journal)
        # Tear the final line, as a kill mid-append would.
        torn = path.read_text(encoding="utf-8").rstrip("\n")[:-30]
        path.write_text(torn + "\n", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="corrupt journal line"):
            resumed = RunJournal(path, resume=True)
        assert len(resumed) == 1
        assert resumed.skipped_lines == 1

    def test_cell_key_distinguishes_axes(self):
        a, b, qa, qb = self._pair()
        params = {"n_a": 6, "n_b": 4, "k": 3}
        assert cell_key("GSim+", "EE", params) != cell_key(
            "GSim+", "EE", {**params, "k": 4}
        )
        assert cell_key("GSim+", "EE", params) != cell_key("GSim", "EE", params)


@pytest.mark.faults
class TestRetryAndQuarantine:
    @staticmethod
    def _pair():
        a = Graph.from_edges(6, [(i, (i + 1) % 6) for i in range(6)], name="a")
        b = Graph.from_edges(4, [(i, (i + 1) % 4) for i in range(4)], name="b")
        return a, b, np.arange(3), np.arange(2)

    def test_transient_failure_retried_to_success(self):
        a, b, qa, qb = self._pair()
        calls: list[int] = []

        def flaky(graph_a, graph_b, queries_a, queries_b, iterations, context=None):
            calls.append(1)
            if len(calls) < 2:
                raise TransientError("transient hiccup")
            return np.zeros((len(queries_a), len(queries_b)))

        spec = AlgorithmSpec(
            name="GSim+", run=flaky, cost_model="gsim+", units_per_second=1e8
        )
        record = run_algorithm(
            spec, a, b, qa, qb, 3,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
        )
        assert record.ok
        assert record.attempts == 2
        assert len(calls) == 2

    def test_persistent_failure_quarantined(self):
        a, b, qa, qb = self._pair()
        calls: list[int] = []

        def broken(graph_a, graph_b, queries_a, queries_b, iterations, context=None):
            calls.append(1)
            raise TransientError("always down")

        spec = AlgorithmSpec(
            name="GSim+", run=broken, cost_model="gsim+", units_per_second=1e8
        )
        record = run_algorithm(
            spec, a, b, qa, qb, 3,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        assert record.outcome is Outcome.ERROR
        assert record.attempts == 2
        assert "quarantined after 2 attempts" in record.note
        assert len(calls) == 2

    def test_fatal_failure_raises_through(self):
        a, b, qa, qb = self._pair()

        def broken(graph_a, graph_b, queries_a, queries_b, iterations, context=None):
            raise KeyError("programming error")

        spec = AlgorithmSpec(
            name="GSim+", run=broken, cost_model="gsim+", units_per_second=1e8
        )
        with pytest.raises(KeyError):
            run_algorithm(
                spec, a, b, qa, qb, 3,
                retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
            )

    def test_quarantine_is_journalled(self, tmp_path):
        a, b, qa, qb = self._pair()

        def broken(graph_a, graph_b, queries_a, queries_b, iterations, context=None):
            raise TransientError("always down")

        spec = AlgorithmSpec(
            name="GSim+", run=broken, cost_model="gsim+", units_per_second=1e8
        )
        path = tmp_path / "journal.jsonl"
        run_algorithm(
            spec, a, b, qa, qb, 3,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
            journal=RunJournal(path),
        )
        resumed = RunJournal(path, resume=True)
        assert len(resumed) == 1
        record = resumed.get(resumed.keys[0])
        assert record is not None and record.outcome is Outcome.ERROR


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestResilienceCLI:
    def test_resume_requires_checkpoint_dir(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as info:
            main(["fig3", "--scale", "tiny", "--resume"])
        assert info.value.code == 2
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    @pytest.mark.faults
    def test_interrupted_sweep_resumes_without_rerunning(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "fig3", "--scale", "tiny", "--algorithms", "GSim+",
            "--checkpoint-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0/5 cells replayed" in first
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "5/5 cells replayed" in second
