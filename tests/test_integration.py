"""End-to-end integration tests across subsystems.

These exercise the whole pipeline the way a user or the experiment harness
does: dataset registry -> sampling -> workload -> algorithms -> metrics,
plus cross-algorithm agreement checks that no unit test covers.
"""

import numpy as np
import pytest

from repro import (
    gsim,
    gsim_partial,
    gsim_plus,
    gsvd,
    load_dataset_pair,
    make_workload,
)
from repro.analysis import frobenius_error, kendall_tau, top_k_overlap
from repro.baselines import rolesim_query, structsim_query
from repro.experiments import Deadline, ExperimentConfig, MemoryBudget, Outcome
from repro.experiments.figures import fig2_time_by_dataset
from repro.experiments.runner import Outcome as RunnerOutcome


class TestDatasetToSimilarityPipeline:
    def test_hp_pipeline(self):
        graph_a, graph_b = load_dataset_pair("HP", scale="tiny", seed=3)
        workload = make_workload(graph_a, graph_b, 15, 10, seed=4)
        result = gsim_plus(
            graph_a,
            graph_b,
            iterations=5,
            queries_a=workload.queries_a,
            queries_b=workload.queries_b,
        )
        assert result.similarity.shape == (15, 10)
        assert np.isfinite(result.similarity).all()

    @pytest.mark.parametrize("dataset", ["HP", "EE", "WT", "UK"])
    def test_gsim_plus_equals_gsim_on_every_dataset(self, dataset):
        graph_a, graph_b = load_dataset_pair(dataset, scale="tiny", seed=3)
        ours = gsim_plus(graph_a, graph_b, iterations=5).similarity
        reference = gsim(graph_a, graph_b, iterations=5).similarity
        assert frobenius_error(ours, reference) < 1e-9

    def test_partial_query_consistency_across_engines(self):
        # GSim+ (global norm) and Eq.(5) gsim_partial agree up to the
        # block's own normalisation.
        graph_a, graph_b = load_dataset_pair("EE", scale="tiny", seed=3)
        rows = np.arange(10)
        cols = np.arange(8)
        plus_block = gsim_plus(
            graph_a, graph_b, iterations=5, queries_a=rows, queries_b=cols
        ).similarity  # block-normalised (Algorithm 1)
        partial = gsim_partial(graph_a, graph_b, rows, cols, iterations=5).similarity
        assert frobenius_error(plus_block, partial) < 1e-9


class TestCrossModelAgreement:
    """Different similarity models should broadly agree on *rankings* for
    structurally obvious cases, even though their scales differ."""

    def test_gsvd_preserves_gsim_plus_ranking(self):
        graph_a, graph_b = load_dataset_pair("HP", scale="tiny", seed=3)
        exact = gsim_plus(graph_a, graph_b, iterations=6).similarity
        approx = gsvd(graph_a, graph_b, iterations=6, rank=10).similarity_matrix()
        assert top_k_overlap(exact, approx, k=50) > 0.7
        assert kendall_tau(exact[0], approx[0]) > 0.5

    def test_structsim_identity_pairs_score_one(self):
        # Comparing a graph against itself: node i vs node i keeps its
        # exact role, which SS-BC* scores 1.0; cross pairs score lower.
        graph_a, _ = load_dataset_pair("HP", scale="tiny", seed=3)
        block = structsim_query(
            graph_a, graph_a, np.arange(10), np.arange(10), levels=3
        )
        np.testing.assert_allclose(np.diag(block), 1.0)
        assert block.mean() < 1.0

    def test_rolesim_ranks_hub_pairs(self):
        graph_a, graph_b = load_dataset_pair("HP", scale="tiny", seed=3)
        small_a = graph_a.subgraph(range(25))
        small_b = graph_b.subgraph(range(15))
        block = rolesim_query(
            small_a, small_b, np.arange(10), np.arange(10), iterations=2
        )
        assert np.isfinite(block).all()
        assert (block >= 0.0).all() and (block <= 1.0 + 1e-12).all()


class TestHarnessEndToEnd:
    def test_paper_survival_pattern_at_small_scale(self):
        """The headline shape: dense baselines crash on WT+, GSim+ survives."""
        config = ExperimentConfig.for_scale(
            "small", seed=7,
            memory_budget=MemoryBudget(),
            deadline=Deadline(limit_seconds=15.0),
        )
        records = fig2_time_by_dataset(
            config, datasets=("EE", "WT"), algorithms=("GSim+", "GSim")
        )
        outcomes = {(r.algorithm, r.dataset): r.outcome for r in records}
        assert outcomes[("GSim+", "EE")] is RunnerOutcome.OK
        assert outcomes[("GSim+", "WT")] is RunnerOutcome.OK
        assert outcomes[("GSim", "EE")] is RunnerOutcome.OK
        assert outcomes[("GSim", "WT")] is RunnerOutcome.OOM

    def test_gsim_plus_beats_gsim_wall_clock_at_small_scale(self):
        config = ExperimentConfig.for_scale(
            "small", seed=7,
            memory_budget=MemoryBudget(),
            deadline=Deadline(limit_seconds=30.0),
        )
        records = fig2_time_by_dataset(
            config, datasets=("EE",), algorithms=("GSim+", "GSim")
        )
        seconds = {r.algorithm: r.seconds for r in records}
        assert seconds["GSim+"] < seconds["GSim"]

    def test_degenerate_instance_recorded_not_raised(self):
        from repro.experiments import ALGORITHMS, run_algorithm
        from repro.graphs import Graph

        empty_a = Graph.empty(5)
        empty_b = Graph.empty(4)
        record = run_algorithm(
            ALGORITHMS["GSim+"], empty_a, empty_b,
            np.arange(2), np.arange(2), 3,
        )
        assert record.outcome is Outcome.ERROR
        assert "collapsed" in record.note
