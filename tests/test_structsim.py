"""Unit tests for the StructSim (SS-BC*) baseline."""

import numpy as np
import pytest

from repro import Graph
from repro.baselines import StructSimIndex, structsim_query
from repro.baselines.structsim import _degree_bin
from repro.utils.deadline import DeadlineExceeded, WallClockDeadline


class TestDegreeBins:
    def test_isolated_in_bin_zero(self):
        assert _degree_bin(0) == 0

    def test_logarithmic_bins(self):
        assert _degree_bin(1) == 1
        assert _degree_bin(2) == 2
        assert _degree_bin(3) == 2
        assert _degree_bin(4) == 3
        assert _degree_bin(1024) == 11


class TestIndexConstruction:
    def test_signature_shape(self, random_pair):
        graph, _ = random_pair
        index = StructSimIndex(graph, levels=4, max_bins=8)
        assert index.signature(0, 0).shape == (8,)

    def test_level_zero_is_one_hot(self, star_graph):
        index = StructSimIndex(star_graph, levels=1)
        sig = index.signature(0, 0)
        assert sig.sum() == 1.0

    def test_level_counts_grow_with_neighbourhood(self, random_pair):
        graph, _ = random_pair
        index = StructSimIndex(graph, levels=3)
        totals = [index.signature(0, level).sum() for level in range(4)]
        assert totals[0] == 1.0
        # Level-l mass counts l-step walks: non-decreasing for this graph.
        assert totals[-1] >= totals[0]

    def test_node_range_checked(self, star_graph):
        index = StructSimIndex(star_graph, levels=1)
        with pytest.raises(IndexError):
            index.signature(99, 0)

    def test_level_range_checked(self, star_graph):
        index = StructSimIndex(star_graph, levels=1)
        with pytest.raises(IndexError):
            index.signature(0, 5)

    def test_memory_scales_with_levels(self, random_pair):
        graph, _ = random_pair
        small = StructSimIndex(graph, levels=2).memory_bytes()
        large = StructSimIndex(graph, levels=8).memory_bytes()
        assert large > small

    def test_max_bins_validated(self, star_graph):
        with pytest.raises(ValueError, match="max_bins"):
            StructSimIndex(star_graph, levels=1, max_bins=0)


class TestPairSimilarity:
    def test_self_similarity_is_one(self, random_pair):
        graph, _ = random_pair
        index = StructSimIndex(graph, levels=4)
        assert index.pair_similarity(index, 3, 3) == pytest.approx(1.0)

    def test_range(self, random_pair):
        graph_a, graph_b = random_pair
        index_a = StructSimIndex(graph_a, levels=4)
        index_b = StructSimIndex(graph_b, levels=4)
        value = index_a.pair_similarity(index_b, 0, 0)
        assert 0.0 <= value <= 1.0

    def test_automorphic_nodes_score_one(self):
        cycle = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        index = StructSimIndex(cycle, levels=3)
        assert index.pair_similarity(index, 0, 2) == pytest.approx(1.0)

    def test_hub_vs_leaf_below_one(self, star_graph):
        index = StructSimIndex(star_graph, levels=2)
        assert index.pair_similarity(index, 0, 1) < 1.0

    def test_parameter_mismatch_rejected(self, star_graph):
        a = StructSimIndex(star_graph, levels=2)
        b = StructSimIndex(star_graph, levels=3)
        with pytest.raises(ValueError, match="different parameters"):
            a.pair_similarity(b, 0, 0)

    def test_isolated_nodes_match_perfectly(self):
        g = Graph.empty(3)
        index = StructSimIndex(g, levels=3)
        assert index.pair_similarity(index, 0, 1) == pytest.approx(1.0)


class TestQuery:
    def test_block_shape(self, random_pair):
        graph_a, graph_b = random_pair
        block = structsim_query(graph_a, graph_b, [0, 1, 2], [3, 4], levels=3)
        assert block.shape == (3, 2)

    def test_prebuilt_indexes_reused(self, random_pair):
        graph_a, graph_b = random_pair
        index_a = StructSimIndex(graph_a, levels=3)
        index_b = StructSimIndex(graph_b, levels=3)
        via_prebuilt = structsim_query(
            graph_a, graph_b, [0], [0], levels=3,
            index_a=index_a, index_b=index_b,
        )
        fresh = structsim_query(graph_a, graph_b, [0], [0], levels=3)
        np.testing.assert_allclose(via_prebuilt, fresh)

    def test_deadline_enforced(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(DeadlineExceeded):
            structsim_query(
                graph_a, graph_b, [0, 1], [0, 1], levels=3,
                deadline=WallClockDeadline(1e-9),
            )
