"""Unit tests for the batch query engine and the scaling study."""

import numpy as np
import pytest

from repro import gsim_plus
from repro.core import GSimPlus, LowRankFactors
from repro.core.batch import BatchQueryEngine
from repro.experiments.scaling import (
    ScalingPoint,
    fit_scaling_exponent,
    scaling_study,
)
from repro.graphs import erdos_renyi_graph, random_node_sample


@pytest.fixture
def engine_and_reference():
    graph_a = erdos_renyi_graph(30, 120, seed=1)
    graph_b = random_node_sample(graph_a, 12, seed=2)
    solver = GSimPlus(graph_a, graph_b, rank_cap="qr-compress")
    state = None
    for state in solver.iterate(5):
        pass
    reference = gsim_plus(graph_a, graph_b, iterations=5).similarity
    return BatchQueryEngine(state.factors), reference


class TestBatchQueryEngine:
    def test_query_matches_full_matrix(self, engine_and_reference):
        engine, reference = engine_and_reference
        block = engine.query([0, 3], [1, 4])
        np.testing.assert_allclose(
            block, reference[np.ix_([0, 3], [1, 4])], atol=1e-10
        )

    def test_query_many_order_preserved(self, engine_and_reference):
        engine, _ = engine_and_reference
        requests = [([0], [0]), ([1, 2], [3]), ([4], [5, 6, 7])]
        blocks = engine.query_many(requests)
        assert [b.shape for b in blocks] == [(1, 1), (2, 1), (1, 3)]

    def test_threaded_matches_serial(self, engine_and_reference):
        engine, _ = engine_and_reference
        requests = [([i], [i % 12]) for i in range(20)]
        serial = engine.query_many(requests)
        threaded = engine.query_many(requests, max_workers=4)
        for a, b in zip(serial, threaded):
            np.testing.assert_array_equal(a, b)

    def test_stream_rows_reconstructs_matrix(self, engine_and_reference):
        engine, reference = engine_and_reference
        chunks = []
        for start, block in engine.stream_rows(block_rows=7):
            chunks.append(block)
        full = np.vstack(chunks)
        np.testing.assert_allclose(full, reference, atol=1e-10)

    def test_stream_rows_block_bound(self, engine_and_reference):
        engine, _ = engine_and_reference
        for _, block in engine.stream_rows(block_rows=4):
            assert block.shape[0] <= 4

    def test_block_normalization_mode(self):
        factors = LowRankFactors(np.ones((4, 1)), np.ones((3, 1)))
        engine = BatchQueryEngine(factors, normalization="block")
        block = engine.query([0, 1], [0, 1])
        assert np.linalg.norm(block) == pytest.approx(1.0)

    def test_zero_factors_rejected(self):
        with pytest.raises(ZeroDivisionError):
            BatchQueryEngine(LowRankFactors(np.zeros((2, 1)), np.zeros((2, 1))))

    def test_bad_normalization(self):
        factors = LowRankFactors(np.ones((2, 1)), np.ones((2, 1)))
        with pytest.raises(ValueError, match="normalization"):
            BatchQueryEngine(factors, normalization="nope")


class TestScalingFit:
    def test_linear_data_slope_one(self):
        sizes = np.array([1e3, 1e4, 1e5, 1e6])
        seconds = sizes * 3e-7
        assert fit_scaling_exponent(sizes, seconds) == pytest.approx(1.0)

    def test_quadratic_data_slope_two(self):
        sizes = np.array([1e2, 1e3, 1e4])
        seconds = (sizes**2) * 1e-9
        assert fit_scaling_exponent(sizes, seconds) == pytest.approx(2.0)

    def test_noise_tolerated(self, rng):
        sizes = np.array([1e3, 1e4, 1e5, 1e6])
        seconds = sizes * 3e-7 * rng.uniform(0.8, 1.2, size=4)
        assert fit_scaling_exponent(sizes, seconds) == pytest.approx(1.0, abs=0.2)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_scaling_exponent(np.array([10.0]), np.array([1.0]))

    def test_positive_required(self):
        with pytest.raises(ValueError):
            fit_scaling_exponent(np.array([1.0, 2.0]), np.array([0.0, 1.0]))


class TestScalingStudy:
    def test_small_study_near_linear(self):
        # Tiny sweep (fast); GSim+ should scale near-linearly in edges.
        study = scaling_study(
            scales=(8, 9, 10, 11), edges_per_node=8.0, iterations=6,
            query_size=32, sample_size=64, seed=3, repeats=2,
        )
        assert len(study.points) == 4
        edges = [p.edges for p in study.points]
        assert edges == sorted(edges)
        # Wide tolerance: constant overheads flatten the smallest sizes.
        assert study.is_near_linear(tolerance=0.6), study.exponent

    def test_requires_two_scales(self):
        with pytest.raises(ValueError):
            scaling_study(scales=(8,))

    def test_point_fields(self):
        point = ScalingPoint(nodes=10, edges=20, seconds=0.5)
        assert point.edges == 20
