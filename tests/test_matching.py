"""Unit tests for similarity-driven graph matching (analysis.matching)."""

import numpy as np
import pytest

from repro import gsim_plus
from repro.analysis.matching import Alignment, alignment_accuracy, best_alignment
from repro.graphs import erdos_renyi_graph, random_node_sample


class TestBestAlignment:
    def test_obvious_diagonal(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8]])
        alignment = best_alignment(scores)
        assert alignment.pairs == ((0, 0), (1, 1))
        assert alignment.total_score == pytest.approx(1.7)

    def test_hungarian_beats_greedy_trap(self):
        # Greedy takes (0,0)=10 then is stuck with (1,1)=0; optimal picks
        # the anti-diagonal worth 9+9.
        scores = np.array([[10.0, 9.0], [9.0, 0.0]])
        hungarian = best_alignment(scores, method="hungarian")
        greedy = best_alignment(scores, method="greedy")
        assert hungarian.total_score == pytest.approx(18.0)
        assert greedy.total_score == pytest.approx(10.0)
        assert hungarian.total_score >= greedy.total_score

    def test_rectangular_matrices(self):
        scores = np.array([[1.0, 0.0, 0.5], [0.0, 1.0, 0.5]])
        alignment = best_alignment(scores)
        assert alignment.size == 2
        assert alignment.as_dict() == {0: 0, 1: 1}

    def test_greedy_deterministic_ties(self):
        scores = np.ones((3, 3))
        alignment = best_alignment(scores, method="greedy")
        assert alignment.pairs == ((0, 0), (1, 1), (2, 2))

    def test_empty_matrix(self):
        alignment = best_alignment(np.empty((0, 5)))
        assert alignment.size == 0
        assert alignment.mean_score == 0.0

    def test_bad_method(self):
        with pytest.raises(ValueError, match="method"):
            best_alignment(np.ones((2, 2)), method="psychic")

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            best_alignment(np.ones(4))

    def test_mean_score(self):
        alignment = Alignment(pairs=((0, 0), (1, 1)), total_score=1.0)
        assert alignment.mean_score == 0.5


class TestAlignmentAccuracy:
    def test_perfect(self):
        alignment = Alignment(pairs=((0, 0), (1, 1)), total_score=2.0)
        assert alignment_accuracy(alignment, {0: 0, 1: 1}) == 1.0

    def test_partial(self):
        alignment = Alignment(pairs=((0, 0), (1, 2)), total_score=2.0)
        assert alignment_accuracy(alignment, {0: 0, 1: 1}) == 0.5

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            alignment_accuracy(Alignment(pairs=(), total_score=0.0), {})


class TestEndToEndMatching:
    def test_subgraph_self_alignment(self):
        """GSim+ similarity aligns a sampled subgraph's hubs to the hubs
        of its parent graph far better than chance."""
        graph_a = erdos_renyi_graph(40, 240, seed=2)
        graph_b = random_node_sample(graph_a, 15, seed=3)
        similarity = gsim_plus(
            graph_a, graph_b, iterations=8, normalization="global"
        ).similarity
        alignment = best_alignment(similarity)
        assert alignment.size == 15
        # The matched pairs should carry a large share of the similarity
        # mass relative to a random assignment.
        rng = np.random.default_rng(0)
        random_cols = rng.permutation(graph_b.num_nodes)
        random_rows = rng.choice(graph_a.num_nodes, size=15, replace=False)
        random_total = float(similarity[random_rows, random_cols].sum())
        assert alignment.total_score > 1.5 * max(random_total, 1e-12)
