"""Serial-vs-parallel equivalence suite and worker-pool unit tests.

Everything here carries the ``parallel`` marker; CI runs it as its own
step with pinned BLAS thread counts.  The load-bearing claims:

* every parallel path (factor steps, dense fallback, top-k scans, sweep
  cells, batched queries) returns **bit-identical** results for
  ``max_workers`` in {1, 2, 4};
* cancellation and deadline expiry propagate out of worker threads as
  the same structured exceptions the serial path raises;
* the bounded-memory scans stay within their ledger budget.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.batch import BatchQueryEngine
from repro.core.embeddings import LowRankFactors
from repro.core.gsim_plus import GSimPlus
from repro.core.topk import scan_top_pairs, top_k_for_queries, top_k_pairs
from repro.experiments.journal import RunJournal
from repro.experiments.runner import (
    ALGORITHMS,
    AlgorithmSpec,
    CellTask,
    ExperimentConfig,
    run_cells,
)
from repro.graphs.generators import rmat_graph
from repro.retrieval.index import GSimIndex
from repro.runtime import (
    CancellationToken,
    Cancelled,
    DeadlineExceeded,
    ExecutionContext,
    MemoryLedger,
    WallClockDeadline,
    WorkerPool,
)
from repro.runtime.errors import TransientError
from repro.runtime.parallel import shard_ranges, shard_rows_by_nnz
from repro.runtime.resilience import RetryPolicy

pytestmark = pytest.mark.parallel

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def graph_pair():
    return (
        rmat_graph(8, 1200, seed=3, name="A"),
        rmat_graph(7, 600, seed=4, name="B"),
    )


# ----------------------------------------------------------------------
# Shard helpers
# ----------------------------------------------------------------------
class TestShardHelpers:
    def test_ranges_cover_and_are_contiguous(self):
        for total in (0, 1, 2, 7, 10, 1000):
            for shards in (1, 2, 3, 7, 64):
                ranges = shard_ranges(total, shards)
                assert len(ranges) <= shards
                flat = [i for start, stop in ranges for i in range(start, stop)]
                assert flat == list(range(total))

    def test_ranges_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            shard_ranges(-1, 2)
        with pytest.raises(ValueError):
            shard_ranges(10, 0)

    def test_nnz_shards_cover_and_balance(self, graph_pair):
        graph_a, _ = graph_pair
        indptr = graph_a.adjacency.indptr
        total = int(indptr[-1])
        for shards in (1, 2, 4, 8):
            ranges = shard_rows_by_nnz(indptr, shards)
            flat = [i for start, stop in ranges for i in range(start, stop)]
            assert flat == list(range(graph_a.num_nodes))
            if shards > 1 and len(ranges) > 1:
                loads = [int(indptr[stop] - indptr[start]) for start, stop in ranges]
                # Balanced up to one row's worth of skew around the target.
                assert max(loads) <= total / len(ranges) + int(np.diff(indptr).max())

    def test_nnz_shards_edgeless_falls_back_to_rows(self):
        indptr = np.zeros(11, dtype=np.int64)
        assert shard_rows_by_nnz(indptr, 3) == shard_ranges(10, 3)

    def test_nnz_shards_empty_matrix(self):
        assert shard_rows_by_nnz(np.zeros(1, dtype=np.int64), 4) == []


# ----------------------------------------------------------------------
# WorkerPool
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_map_preserves_order(self):
        for workers in WORKER_COUNTS:
            pool = WorkerPool(max_workers=workers)
            assert pool.map(lambda x: x * x, range(50)) == [x * x for x in range(50)]

    def test_serial_flag_and_resolve(self):
        assert WorkerPool(max_workers=1).serial
        assert not WorkerPool(max_workers=2).serial
        assert WorkerPool.resolve(None).max_workers == 1
        assert WorkerPool.resolve(3).max_workers == 3
        pool = WorkerPool(max_workers=2)
        assert WorkerPool.resolve(pool) is pool

    def test_rejects_bad_worker_counts(self):
        with pytest.raises(ValueError):
            WorkerPool(max_workers=0)
        with pytest.raises(TypeError):
            WorkerPool(max_workers=True)
        with pytest.raises(TypeError):
            WorkerPool(max_workers=2.5)

    def test_first_submitted_error_wins(self):
        def boom(x):
            raise ValueError(f"boom{x}")

        for workers in WORKER_COUNTS:
            with pytest.raises(ValueError, match="boom0"):
                WorkerPool(max_workers=workers).map(boom, range(8))

    def test_single_failure_propagates(self):
        def maybe_boom(x):
            if x == 5:
                raise KeyError("five")
            return x

        with pytest.raises(KeyError):
            WorkerPool(max_workers=4).map(maybe_boom, range(8))

    def test_serial_runs_inline(self):
        thread_ids = []
        WorkerPool(max_workers=1).map(
            lambda _: thread_ids.append(threading.get_ident()), range(4)
        )
        assert set(thread_ids) == {threading.get_ident()}

    def test_map_records_shard_metrics(self):
        context = ExecutionContext()
        WorkerPool(max_workers=2).map(lambda x: x, range(6), context=context)
        snap = context.metrics.snapshot()
        assert snap["counters"]["parallel.shards"] == 6
        assert snap["gauges"]["parallel.workers"] == 2

    def test_map_checkpoints_cancellation(self):
        token = CancellationToken()
        token.cancel()
        context = ExecutionContext(cancellation=token)
        with pytest.raises(Cancelled):
            WorkerPool(max_workers=2).map(lambda x: x, range(4), context=context)


# ----------------------------------------------------------------------
# Factor-step bit-identity
# ----------------------------------------------------------------------
class TestFactorStepEquivalence:
    @pytest.mark.parametrize("rank_cap", ["dense", "qr-compress", "none"])
    def test_bit_identical_across_workers(self, graph_pair, rank_cap):
        graph_a, graph_b = graph_pair
        iterations = 5 if rank_cap == "none" else 10
        reference = GSimPlus(graph_a, graph_b, rank_cap=rank_cap).run(iterations)
        for workers in WORKER_COUNTS[1:]:
            result = GSimPlus(
                graph_a, graph_b, rank_cap=rank_cap, max_workers=workers
            ).run(iterations)
            assert np.array_equal(reference.similarity, result.similarity)
            assert reference.z_frobenius_log == result.z_frobenius_log
            assert reference.used_dense_fallback == result.used_dense_fallback

    def test_dense_fallback_engages(self, graph_pair):
        graph_a, graph_b = graph_pair
        result = GSimPlus(graph_a, graph_b, max_workers=4).run(10)
        assert result.used_dense_fallback  # the regime the sharded dense step serves

    def test_shard_cache_hits_counted(self, graph_pair):
        graph_a, graph_b = graph_pair
        context = ExecutionContext()
        GSimPlus(graph_a, graph_b, max_workers=2).run(6, context=context)
        counters = context.metrics.snapshot()["counters"]
        assert counters["gsim_plus.shard_cache_hits"] > 0
        assert counters["gsim_plus.transpose_cache_hits"] > 0


# ----------------------------------------------------------------------
# Top-k scans
# ----------------------------------------------------------------------
class TestTopKEquivalence:
    def test_pairs_identical_across_workers_and_blocks(self, graph_pair):
        graph_a, graph_b = graph_pair
        reference = top_k_pairs(graph_a, graph_b, k=25, iterations=6)
        for workers in WORKER_COUNTS:
            for block_rows in (16, 1024):
                result = top_k_pairs(
                    graph_a, graph_b, k=25, iterations=6,
                    block_rows=block_rows, max_workers=workers,
                )
                assert result == reference

    def test_scan_matches_bruteforce_on_tie_heavy_factors(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            n_a = int(rng.integers(2, 40))
            n_b = int(rng.integers(2, 30))
            # Integer entries produce many exact score ties.
            factors = LowRankFactors(
                rng.integers(0, 3, size=(n_a, 2)).astype(float),
                rng.integers(0, 3, size=(n_b, 2)).astype(float),
            )
            scores = factors.u @ factors.v.T
            rows, cols = np.divmod(np.arange(scores.size), n_b)
            for k in (1, 5, n_a * n_b):
                order = np.lexsort((cols, rows, -scores.ravel()))[:k]
                expected = [
                    (int(rows[i]), int(cols[i]), float(scores.ravel()[i]))
                    for i in order
                ]
                for workers in WORKER_COUNTS:
                    got = scan_top_pairs(
                        factors, k, block_rows=3, max_workers=workers
                    )
                    assert [(p.node_a, p.node_b, p.score) for p in got] == expected

    def test_queries_identical_across_workers(self, graph_pair):
        graph_a, graph_b = graph_pair
        queries = list(range(0, graph_a.num_nodes, 3))
        reference = top_k_for_queries(graph_a, graph_b, queries, k=7, iterations=6)
        for workers in WORKER_COUNTS:
            for block_rows in (8, 1024):
                result = top_k_for_queries(
                    graph_a, graph_b, queries, k=7, iterations=6,
                    block_rows=block_rows, max_workers=workers,
                )
                assert result == reference

    def test_queries_memory_stays_bounded(self, graph_pair):
        """The blocked query scan must never charge the full |Q| x n_B."""
        graph_a, graph_b = graph_pair
        queries = list(range(graph_a.num_nodes)) * 4  # |Q| = 4 n_A
        block_rows = 16
        full_bytes = len(queries) * graph_b.num_nodes * 8
        context = ExecutionContext(memory=MemoryLedger(1 << 30))
        top_k_for_queries(
            graph_a, graph_b, queries, k=5, iterations=6,
            block_rows=block_rows, context=context,
        )
        assert context.memory.peak_bytes < full_bytes
        assert context.memory.held_bytes == 0

    def test_cancellation_fires_mid_scan(self, graph_pair):
        graph_a, graph_b = graph_pair
        factors = GSimIndex.build(graph_a, graph_b, iterations=6)._factors

        class _CancelAfter:
            def __init__(self, token, after):
                self.token = token
                self.remaining = after

            def on_checkpoint(self, what):
                self.remaining -= 1
                if self.remaining <= 0:
                    self.token.cancel()

        for workers in (2, 4):
            token = CancellationToken()
            context = ExecutionContext(
                cancellation=token, fault_injector=_CancelAfter(token, after=3)
            )
            with pytest.raises(Cancelled):
                scan_top_pairs(
                    factors, 10, block_rows=8,
                    context=context, max_workers=workers,
                )

    def test_deadline_fires_mid_scan(self, graph_pair):
        graph_a, graph_b = graph_pair
        factors = GSimIndex.build(graph_a, graph_b, iterations=6)._factors
        for workers in (2, 4):
            context = ExecutionContext(deadline=WallClockDeadline(1e-9))
            with pytest.raises(DeadlineExceeded):
                scan_top_pairs(
                    factors, 10, block_rows=8,
                    context=context, max_workers=workers,
                )


# ----------------------------------------------------------------------
# Batched queries and the index
# ----------------------------------------------------------------------
class TestServingEquivalence:
    def test_query_many_identical_across_workers(self, graph_pair):
        graph_a, graph_b = graph_pair
        index = GSimIndex.build(graph_a, graph_b, iterations=6)
        rng = np.random.default_rng(5)
        requests = [
            (
                rng.integers(0, graph_a.num_nodes, size=4).tolist(),
                rng.integers(0, graph_b.num_nodes, size=3).tolist(),
            )
            for _ in range(12)
        ]
        reference = index.query_many(requests)
        for workers in WORKER_COUNTS:
            blocks = index.query_many(requests, max_workers=workers)
            assert len(blocks) == len(reference)
            for got, expected in zip(blocks, reference):
                assert np.array_equal(got, expected)

    def test_engine_query_many_accepts_legacy_zero(self):
        engine = BatchQueryEngine(
            LowRankFactors(np.ones((4, 1)), np.ones((3, 1)))
        )
        blocks = engine.query_many([([0], [0, 1])], max_workers=0)
        assert blocks[0].shape == (1, 2)

    def test_index_top_pairs_identical_across_workers(self, graph_pair):
        graph_a, graph_b = graph_pair
        index = GSimIndex.build(graph_a, graph_b, iterations=6)
        reference = index.top_pairs(k=20)
        for workers in WORKER_COUNTS:
            for block_rows in (16, 1024):
                assert (
                    index.top_pairs(
                        k=20, block_rows=block_rows, max_workers=workers
                    )
                    == reference
                )


# ----------------------------------------------------------------------
# Sweep cells
# ----------------------------------------------------------------------
def _tiny_tasks(graph_pair, algorithms=("GSim+", "GSim")):
    graph_a, graph_b = graph_pair
    queries_a = np.arange(8)
    queries_b = np.arange(8)
    return [
        CellTask(
            ALGORITHMS[name], graph_a, graph_b, queries_a, queries_b,
            iterations=4, dataset=f"cell-{name}",
        )
        for name in algorithms
    ]


def _comparable(record):
    return (record.algorithm, record.dataset, record.outcome, record.params)


class TestSweepEquivalence:
    def test_run_cells_identical_outcomes(self, graph_pair):
        tasks = _tiny_tasks(graph_pair)
        serial = run_cells(tasks, ExperimentConfig(max_workers=1))
        for workers in WORKER_COUNTS[1:]:
            parallel = run_cells(tasks, ExperimentConfig(max_workers=workers))
            assert [_comparable(r) for r in parallel] == [
                _comparable(r) for r in serial
            ]

    def test_run_cells_journal_replay_composes(self, graph_pair, tmp_path):
        tasks = _tiny_tasks(graph_pair)
        journal = RunJournal(tmp_path / "journal.jsonl")
        config = ExperimentConfig(max_workers=2, journal=journal)
        first = run_cells(tasks, config)
        assert journal.hits == 0
        resumed = RunJournal(tmp_path / "journal.jsonl", resume=True)
        config2 = ExperimentConfig(max_workers=2, journal=resumed)
        second = run_cells(tasks, config2)
        assert resumed.hits == len(tasks)
        assert [_comparable(r) for r in second] == [_comparable(r) for r in first]

    def test_run_cells_retry_quarantine_composes(self, graph_pair):
        def _always_transient(*args, **kwargs):
            raise TransientError("flaky cell")

        flaky = AlgorithmSpec(
            name="Flaky",
            run=_always_transient,
            cost_model="gsim+",
            units_per_second=1e8,
        )
        graph_a, graph_b = graph_pair
        tasks = [
            CellTask(
                flaky, graph_a, graph_b, np.arange(4), np.arange(4),
                iterations=2, dataset=f"flaky-{i}",
            )
            for i in range(3)
        ]
        config = ExperimentConfig(
            max_workers=2,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        records = run_cells(tasks, config)
        assert [record.outcome.value for record in records] == ["error"] * 3
        assert all(record.attempts == 2 for record in records)
        assert all("quarantined" in record.note for record in records)

    def test_parallel_cells_report_ledger_memory(self, graph_pair):
        tasks = _tiny_tasks(graph_pair)
        records = run_cells(tasks, ExperimentConfig(max_workers=2))
        for record in records:
            assert record.ok
            assert record.memory_bytes is not None and record.memory_bytes > 0
