"""Unit tests for the high-level GSimIndex retrieval layer."""

import numpy as np
import pytest

from repro import gsim_plus
from repro.core import top_k_pairs
from repro.retrieval import GSimIndex
from repro.graphs import erdos_renyi_graph, random_node_sample


@pytest.fixture
def pair():
    graph_a = erdos_renyi_graph(30, 120, seed=1)
    graph_b = random_node_sample(graph_a, 12, seed=2)
    return graph_a, graph_b


@pytest.fixture
def index(pair):
    return GSimIndex.build(*pair, iterations=6)


class TestBuild:
    def test_metadata_captured(self, pair, index):
        graph_a, graph_b = pair
        assert index.metadata.n_a == graph_a.num_nodes
        assert index.metadata.m_b == graph_b.num_edges
        assert index.metadata.iterations == 6
        assert not index.metadata.content_prior

    def test_query_matches_solver(self, pair, index):
        graph_a, graph_b = pair
        expected = gsim_plus(
            graph_a, graph_b, iterations=6, normalization="global"
        ).similarity
        block = index.query([0, 5], [1, 3])
        np.testing.assert_allclose(block, expected[np.ix_([0, 5], [1, 3])], atol=1e-10)

    def test_content_prior_flag(self, pair, rng):
        graph_a, graph_b = pair
        prior = (
            rng.uniform(0.1, 1, (graph_a.num_nodes, 2)),
            rng.uniform(0.1, 1, (graph_b.num_nodes, 2)),
        )
        index = GSimIndex.build(graph_a, graph_b, iterations=4, initial_factors=prior)
        assert index.metadata.content_prior

    def test_repr(self, index):
        assert "GSimIndex" in repr(index)
        assert "iterations=6" in repr(index)

    def test_memory_reported(self, index):
        assert index.memory_bytes() > 0


class TestPersistence:
    def test_round_trip(self, index, tmp_path):
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = GSimIndex.load(path)
        assert loaded.metadata == index.metadata
        np.testing.assert_array_equal(
            loaded.query([0, 1], [2]), index.query([0, 1], [2])
        )

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, whatever=np.ones(2))
        with pytest.raises(ValueError, match="not a GSimIndex"):
            GSimIndex.load(path)

    def test_newer_version_rejected(self, index, tmp_path):
        import json

        path = tmp_path / "future.npz"
        np.savez(
            path,
            u=np.ones((2, 1)),
            v=np.ones((2, 1)),
            log_scale=np.float64(0),
            metadata_json=np.str_(
                json.dumps(
                    dict(
                        n_a=2, n_b=2, m_a=0, m_b=0, iterations=1,
                        graph_a_name="a", graph_b_name="b",
                        content_prior=False, metadata_version=99,
                    )
                )
            ),
        )
        with pytest.raises(ValueError, match="newer library"):
            GSimIndex.load(path)


class TestServing:
    def test_top_matches_ordered(self, index):
        matches = index.top_matches(0, k=5)
        scores = [m.score for m in matches]
        assert scores == sorted(scores, reverse=True)
        assert all(m.node_a == 0 for m in matches)

    def test_top_matches_range_checked(self, index):
        with pytest.raises(IndexError):
            index.top_matches(999)

    def test_top_pairs_matches_low_level(self, pair, index):
        graph_a, graph_b = pair
        ours = index.top_pairs(k=5)
        reference = top_k_pairs(graph_a, graph_b, k=5, iterations=6)
        assert [(p.node_a, p.node_b) for p in ours] == [
            (p.node_a, p.node_b) for p in reference
        ]

    def test_top_pairs_small_blocks(self, index):
        a = index.top_pairs(k=4, block_rows=3)
        b = index.top_pairs(k=4, block_rows=1024)
        assert [(p.node_a, p.node_b) for p in a] == [(p.node_a, p.node_b) for p in b]

    def test_top_pairs_scores_descending(self, index):
        scores = [p.score for p in index.top_pairs(k=6)]
        assert scores == sorted(scores, reverse=True)
