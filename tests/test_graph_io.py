"""Unit tests for repro.graphs.io."""

import io

import pytest

from repro.graphs import Graph, read_edge_list, read_edge_list_text, write_edge_list


class TestReadText:
    def test_basic_pairs(self):
        g = read_edge_list_text("0 1\n1 2\n")
        assert g.num_nodes == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_weighted_lines(self):
        g = read_edge_list_text("0 1 2.5\n")
        assert g.adjacency[0, 1] == 2.5

    def test_comments_and_blanks_skipped(self):
        g = read_edge_list_text("# header\n\n0 1\n# trailing\n")
        assert g.num_edges == 1

    def test_custom_comment_prefix(self):
        g = read_edge_list_text("% note\n0 1\n", comment="%")
        assert g.num_edges == 1

    def test_tab_separated(self):
        g = read_edge_list_text("0\t1\n")
        assert g.has_edge(0, 1)

    def test_node_count_from_max_id(self):
        g = read_edge_list_text("0 5\n")
        assert g.num_nodes == 6

    def test_relabel_tokens(self):
        g = read_edge_list_text("alice bob\nbob carol\n", relabel=True)
        assert g.num_nodes == 3
        assert g.has_edge(0, 1)  # alice -> bob in appearance order
        assert g.has_edge(1, 2)

    def test_relabel_preserves_first_appearance_order(self):
        g = read_edge_list_text("9 3\n3 9\n", relabel=True)
        # 9 seen first -> id 0; 3 -> id 1.
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_non_integer_without_relabel_raises(self):
        with pytest.raises(ValueError, match="relabel=True"):
            read_edge_list_text("alice bob\n")

    def test_negative_id_without_relabel_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            read_edge_list_text("-1 2\n")

    def test_bad_weight_raises(self):
        with pytest.raises(ValueError, match="invalid weight"):
            read_edge_list_text("0 1 heavy\n")

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError, match="expected"):
            read_edge_list_text("0 1 2 3\n")

    def test_error_mentions_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            read_edge_list_text("0 1\n0 1 zzz\n")


class TestParseModes:
    def test_default_is_strict(self):
        with pytest.raises(ValueError, match="line 2"):
            read_edge_list_text("0 1\n0 1 2 3\n")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            read_edge_list_text("0 1\n", mode="forgiving")

    def test_lenient_skips_wrong_arity(self):
        with pytest.warns(RuntimeWarning, match="skipped 1 malformed"):
            g = read_edge_list_text("0 1\n0 1 2 3\n1 2\n", mode="lenient")
        assert g.num_edges == 2

    def test_lenient_skips_bad_weight(self):
        with pytest.warns(RuntimeWarning, match="invalid weight"):
            g = read_edge_list_text("0 1 heavy\n0 1 2.0\n", mode="lenient")
        assert g.num_edges == 1
        assert g.adjacency[0, 1] == 2.0

    def test_lenient_skips_non_integer_ids(self):
        with pytest.warns(RuntimeWarning, match="non-integer node id"):
            g = read_edge_list_text("alice bob\n0 1\n", mode="lenient")
        assert g.num_edges == 1

    def test_lenient_skips_negative_ids(self):
        with pytest.warns(RuntimeWarning, match="skipped 1 malformed"):
            g = read_edge_list_text("-1 2\n0 1\n", mode="lenient")
        assert g.num_edges == 1
        assert g.num_nodes == 2

    def test_lenient_counts_every_skip(self):
        text = "0 1\nx y\n0 1 bad\n0\n1 2\n"
        with pytest.warns(RuntimeWarning, match="skipped 3 malformed"):
            g = read_edge_list_text(text, mode="lenient")
        assert g.num_edges == 2

    def test_lenient_clean_input_is_silent(self, recwarn):
        g = read_edge_list_text("0 1\n1 2\n", mode="lenient")
        assert g.num_edges == 2
        assert not [w for w in recwarn if w.category is RuntimeWarning]

    def test_strict_reports_first_bad_line_number(self):
        with pytest.raises(ValueError, match="line 3"):
            read_edge_list_text("0 1\n1 2\nbroken line here extra\n")

    def test_lenient_file_read(self, tmp_path):
        path = tmp_path / "dirty.txt"
        path.write_text("# crawl dump\n0 1\ngarbage\n1 2\n", encoding="utf-8")
        with pytest.raises(ValueError):
            read_edge_list(path)
        with pytest.warns(RuntimeWarning, match="dirty.txt"):
            g = read_edge_list(path, mode="lenient")
        assert g.num_edges == 2


class TestFileRoundTrip:
    def test_round_trip(self, tmp_path, random_pair):
        graph, _ = random_pair
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded == graph

    def test_round_trip_weights(self, tmp_path):
        graph = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 0.5)])
        path = tmp_path / "weighted.txt"
        write_edge_list(graph, path, write_weights=True)
        loaded = read_edge_list(path)
        assert loaded == graph

    def test_header_written(self, tmp_path, path_graph):
        path = tmp_path / "g.txt"
        write_edge_list(path_graph, path)
        first = path.read_text().splitlines()[0]
        assert first.startswith("#")
        assert "nodes=4" in first

    def test_header_suppressed(self, path_graph):
        buffer = io.StringIO()
        write_edge_list(path_graph, buffer, header=False)
        assert not buffer.getvalue().startswith("#")

    def test_write_to_stream(self, path_graph):
        buffer = io.StringIO()
        write_edge_list(path_graph, buffer)
        assert "0\t1" in buffer.getvalue()

    def test_name_defaults_to_stem(self, tmp_path, path_graph):
        path = tmp_path / "mygraph.txt"
        write_edge_list(path_graph, path)
        assert read_edge_list(path).name == "mygraph"
