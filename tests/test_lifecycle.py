"""Live-index lifecycle: generations, swaps, chaos, serving policies.

The acceptance tests at the bottom are the point of the suite: a
fault-injected kill mid-rebuild must leave readers on bit-identical
last-good answers, the retried rebuild must resume from its checkpoint
and install a generation exactly equal to a from-scratch build, and a
concurrent writer/reader stress run must never surface a torn
generation (every leased fingerprint re-verifies against the leased
arrays) or drop a query.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.dynamic import (
    DynamicGraph,
    SimilaritySession,
    StalenessBudget,
)
from repro.dynamic.lifecycle import (
    CircuitBreaker,
    IndexGeneration,
    IndexGenerationManager,
    Staleness,
    check_policy,
    generation_fingerprint,
)
from repro.graphs import erdos_renyi_graph, random_node_sample
from repro.retrieval.index import GSimIndex
from repro.runtime import ExecutionContext, Metrics, Tracer
from repro.runtime.errors import IndexUnavailableError, InjectedFault
from repro.runtime.resilience import (
    CheckpointManager,
    FaultInjector,
    RetryPolicy,
)

pytestmark = pytest.mark.lifecycle

ITERATIONS = 4


def _dynamic_pair() -> tuple[DynamicGraph, DynamicGraph]:
    """A small seeded (G_A, G_B) dynamic pair."""
    base_a = erdos_renyi_graph(30, 90, seed=1)
    base_b = random_node_sample(base_a, 12, seed=2)
    graph_a = DynamicGraph(base_a.num_nodes)
    graph_a.add_edges([(s, d) for s, d, _ in base_a.edges()])
    graph_b = DynamicGraph(base_b.num_nodes)
    graph_b.add_edges([(s, d) for s, d, _ in base_b.edges()])
    return graph_a, graph_b


def _fresh_edge(graph: DynamicGraph, rng: np.random.Generator) -> tuple[int, int]:
    """A random (src, dst) not currently in the graph."""
    while True:
        src = int(rng.integers(graph.num_nodes))
        dst = int(rng.integers(graph.num_nodes))
        if src != dst and not graph.has_edge(src, dst):
            return src, dst


def _fast_retry(attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(max_attempts=attempts, base_delay=0.0, max_delay=0.0)


def _flip_payload_byte(path):
    """Corrupt one byte inside the largest npz member's compressed data."""
    import zipfile

    with zipfile.ZipFile(path) as archive:
        info = max(archive.infolist(), key=lambda entry: entry.compress_size)
        header = bytearray(path.read_bytes())[info.header_offset:]
        # local header: 26..30 hold the name/extra lengths; data follows.
        name_len = int.from_bytes(header[26:28], "little")
        extra_len = int.from_bytes(header[28:30], "little")
        data_start = info.header_offset + 30 + name_len + extra_len
    blob = bytearray(path.read_bytes())
    blob[data_start + info.compress_size // 2] ^= 0xFF
    path.write_bytes(bytes(blob))


class FlakyInjector:
    """Duck-typed fault injector that fails while ``active`` is set."""

    def __init__(self, match: str = "GSim+ iteration") -> None:
        self.match = match
        self.active = True
        self.fired = 0

    def on_checkpoint(self, what: str = "computation") -> None:
        if self.active and self.match in what:
            self.fired += 1
            raise InjectedFault(
                f"flaky fault at {what!r}", checkpoint_number=self.fired
            )


# ----------------------------------------------------------------------
# Serving policies & staleness budgets
# ----------------------------------------------------------------------
class TestPolicy:
    def test_check_policy_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown serving policy"):
            check_policy("eventually")

    def test_fresh_is_always_allowed(self):
        budget = StalenessBudget(
            max_version_lag=0, max_age_seconds=0.0, max_edge_delta=0
        )
        assert budget.allows(Staleness(0, 1e9, 1e9))

    def test_each_currency_is_enforced(self):
        stale = Staleness(version_lag=3, age_seconds=10.0, edge_delta=7)
        assert StalenessBudget().allows(stale)  # unbounded default
        assert not StalenessBudget(max_version_lag=2).allows(stale)
        assert not StalenessBudget(max_age_seconds=5.0).allows(stale)
        assert not StalenessBudget(max_edge_delta=6).allows(stale)
        assert StalenessBudget(
            max_version_lag=3, max_age_seconds=10.0, max_edge_delta=7
        ).allows(stale)

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            StalenessBudget(max_version_lag=-1)

    def test_from_error_bound_scales_with_slack(self):
        graph_a = erdos_renyi_graph(30, 90, seed=1)
        graph_b = random_node_sample(graph_a, 12, seed=2)
        tight = StalenessBudget.from_error_bound(graph_a, graph_b, iterations=8)
        loose = StalenessBudget.from_error_bound(
            graph_a, graph_b, iterations=8, slack=100.0
        )
        assert tight.max_edge_delta >= 1
        assert loose.max_edge_delta >= tight.max_edge_delta
        with pytest.raises(ValueError, match="slack"):
            StalenessBudget.from_error_bound(
                graph_a, graph_b, iterations=8, slack=0.0
            )


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow_attempt()
        assert breaker.seconds_until_probe() > 0

    def test_open_half_open_close_cycle(self):
        clock = [0.0]
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_timeout=10.0,
            clock=lambda: clock[0],
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock[0] = 10.0
        assert breaker.state == "half_open"
        # exactly one probe is admitted
        assert breaker.allow_attempt()
        assert not breaker.allow_attempt()
        breaker.record_success()
        assert breaker.state == "closed"
        assert transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_failed_probe_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.allow_attempt()
        breaker.record_failure()
        assert breaker.state == "open"
        # the timeout restarts from the re-open
        assert breaker.seconds_until_probe() == pytest.approx(5.0)


# ----------------------------------------------------------------------
# Generations: immutability, fingerprints, reader draining
# ----------------------------------------------------------------------
class TestIndexGeneration:
    @staticmethod
    def _generation(versions=(1, 1), on_retire=None) -> IndexGeneration:
        graph_a = erdos_renyi_graph(20, 60, seed=5)
        graph_b = random_node_sample(graph_a, 8, seed=6)
        index = GSimIndex.build(graph_a, graph_b, iterations=3)
        return IndexGeneration(
            ordinal=1,
            index=index,
            versions=versions,
            edge_clock=(60, 24),
            built_at=time.time(),
            build_seconds=0.01,
            iterations=3,
            on_retire=on_retire,
        )

    def test_fingerprint_binds_factors_to_graph_state(self):
        generation = self._generation(versions=(1, 1))
        same = generation_fingerprint(generation.factors, (1, 1), 3)
        assert generation.fingerprint == same
        assert generation_fingerprint(generation.factors, (2, 1), 3) != same
        assert generation_fingerprint(generation.factors, (1, 1), 4) != same

    def test_retirement_drains_readers(self):
        retired = []
        generation = self._generation(on_retire=retired.append)
        generation.acquire()
        generation.acquire()
        generation.mark_retired()
        assert not generation.retired  # two readers still in flight
        generation.release()
        assert not generation.retired
        generation.release()
        assert generation.retired
        assert retired == [generation]

    def test_immediate_retirement_when_drained(self):
        retired = []
        generation = self._generation(on_retire=retired.append)
        generation.mark_retired()
        assert generation.retired
        assert retired == [generation]
        generation.mark_retired()  # idempotent
        assert retired == [generation]

    def test_acquire_after_retirement_raises(self):
        generation = self._generation()
        generation.mark_retired()
        with pytest.raises(RuntimeError, match="retired"):
            generation.acquire()

    def test_unbalanced_release_raises(self):
        generation = self._generation()
        with pytest.raises(RuntimeError, match="released more than acquired"):
            generation.release()


# ----------------------------------------------------------------------
# DynamicGraph mutation validation
# ----------------------------------------------------------------------
class TestDynamicGraphValidation:
    def test_duplicate_add_edge_rejected_and_counted(self):
        metrics = Metrics()
        graph = DynamicGraph(4, metrics=metrics)
        graph.add_edge(0, 1)
        version = graph.version
        with pytest.raises(ValueError, match="duplicate add_edge"):
            graph.add_edge(0, 1)
        assert graph.version == version  # rejected mutations don't bump
        assert graph.rejected_mutations == 1
        assert metrics.snapshot()["counters"]["graph.rejected_mutations"] == 1

    def test_reweighting_is_a_legitimate_update(self):
        graph = DynamicGraph(4, [(0, 1)])
        graph.add_edge(0, 1, weight=2.5)
        assert graph.rejected_mutations == 0
        assert list(graph.edges()) == [(0, 1, 2.5)]

    def test_remove_missing_edge_rejected(self):
        graph = DynamicGraph(4, [(0, 1)])
        with pytest.raises(KeyError, match="does not exist"):
            graph.remove_edge(1, 0)
        assert graph.rejected_mutations == 1
        assert graph.num_edges == 1

    def test_zero_weight_rejected(self):
        graph = DynamicGraph(4)
        with pytest.raises(ValueError, match="non-zero"):
            graph.add_edge(0, 1, weight=0.0)
        assert graph.rejected_mutations == 1

    def test_out_of_range_node_rejected(self):
        graph = DynamicGraph(3)
        with pytest.raises(IndexError, match="out of range"):
            graph.add_edge(0, 3)
        assert graph.rejected_mutations == 1

    def test_batch_rejected_whole(self):
        graph = DynamicGraph(5, [(0, 1)])
        version = graph.version
        with pytest.raises(ValueError, match="batch was rejected whole"):
            graph.add_edges([(1, 2), (0, 1)])  # (0, 1) duplicates the graph
        with pytest.raises(ValueError, match="batch was rejected whole"):
            graph.add_edges([(2, 3), (2, 3)])  # duplicate within the batch
        assert graph.num_edges == 1
        assert graph.version == version
        assert graph.rejected_mutations == 2

    def test_edge_clock_counts_mutations_not_calls(self):
        graph = DynamicGraph(6)
        graph.add_edges([(0, 1), (1, 2), (2, 3)])
        assert graph.version == 1
        assert graph.edges_changed == 3
        graph.remove_edge(0, 1)
        assert graph.edges_changed == 4
        graph.add_node()
        assert graph.edges_changed == 4  # structural, not an edge change

    def test_subscribers_fire_outside_the_lock(self):
        graph = DynamicGraph(4)
        seen = []

        def callback(g):
            # Reading under the callback must not deadlock.
            seen.append((g.version, g.num_edges))

        graph.subscribe(callback)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.unsubscribe(callback)
        graph.add_edge(2, 3)
        assert seen == [(1, 1), (2, 2)]

    def test_freeze_is_atomic(self):
        graph = DynamicGraph(4, [(0, 1), (1, 2)])
        snapshot, version, clock = graph.freeze()
        assert snapshot.num_edges == 2
        assert version == graph.version
        assert clock == graph.edges_changed


# ----------------------------------------------------------------------
# CheckpointManager.prune
# ----------------------------------------------------------------------
class TestCheckpointPrune:
    def test_prune_keeps_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=10)
        for step in (1, 2, 3, 4, 5):
            manager.save(step, {"u": np.ones(2)})
        assert manager.prune(keep_last=2) == 3
        assert manager.steps() == [4, 5]
        assert manager.prune(keep_last=2) == 0  # idempotent

    def test_prune_zero_clears_everything(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=10)
        manager.save(1, {"u": np.ones(2)})
        assert manager.prune(keep_last=0) == 1
        assert manager.steps() == []

    def test_prune_rejects_negative(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        with pytest.raises(ValueError, match="non-negative"):
            manager.prune(keep_last=-1)


# ----------------------------------------------------------------------
# The generation manager
# ----------------------------------------------------------------------
class TestManagerBasics:
    def test_warm_builds_first_generation(self):
        graph_a, graph_b = _dynamic_pair()
        with IndexGenerationManager(
            graph_a, graph_b, iterations=ITERATIONS
        ) as manager:
            generation = manager.warm()
            assert generation.ordinal == 1
            assert manager.warm() is generation  # idempotent
            with manager.lease("block") as lease:
                assert not lease.stale
                assert lease.generation is generation
            health = manager.health()
            assert health["live_generation"] == 1
            assert not health["degraded"]
            assert health["breaker"] == "closed"

    def test_block_lease_rebuilds_after_mutation(self):
        graph_a, graph_b = _dynamic_pair()
        with IndexGenerationManager(
            graph_a, graph_b, iterations=ITERATIONS
        ) as manager:
            manager.warm()
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(9)))
            assert manager.is_stale
            with manager.lease("block", wait_timeout=30.0) as lease:
                assert not lease.stale
                assert lease.generation.ordinal == 2
            assert not manager.is_stale

    def test_rebuild_equals_from_scratch_build(self):
        graph_a, graph_b = _dynamic_pair()
        with IndexGenerationManager(
            graph_a, graph_b, iterations=ITERATIONS
        ) as manager:
            generation = manager.warm()
            snap_a, va, _ = graph_a.freeze(name="A")
            snap_b, vb, _ = graph_b.freeze(name="B")
            scratch = GSimIndex.build(snap_a, snap_b, iterations=ITERATIONS)
            assert np.array_equal(generation.factors.u, scratch.factors.u)
            assert np.array_equal(generation.factors.v, scratch.factors.v)
            assert generation.fingerprint == generation_fingerprint(
                scratch.factors, (va, vb), ITERATIONS
            )

    def test_mutations_coalesce_into_one_rebuild(self):
        graph_a, graph_b = _dynamic_pair()
        rng = np.random.default_rng(11)
        with IndexGenerationManager(
            graph_a, graph_b, iterations=ITERATIONS
        ) as manager:
            manager.warm()
            for _ in range(10):
                graph_a.add_edge(*_fresh_edge(graph_a, rng))
            with manager.lease("block", wait_timeout=30.0) as lease:
                assert lease.generation.ordinal == 2
            # ten mutations, one rebuild: the request flag is
            # level-triggered, not an event queue
            assert manager.health()["generations_built"] == 2

    def test_serve_stale_annotates_and_counts(self):
        graph_a, graph_b = _dynamic_pair()
        metrics = Metrics()
        context = ExecutionContext(metrics=metrics)
        with IndexGenerationManager(
            graph_a, graph_b, iterations=ITERATIONS, context=context
        ) as manager:
            manager.warm()
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(13)))
            with manager.lease("serve_stale") as lease:
                assert lease.stale
                assert lease.generation.ordinal == 1
                annotation = lease.annotation()
                assert annotation["staleness"]["version_lag"] == 1
                assert annotation["staleness"]["edge_delta"] == 1
                assert not annotation["degraded"]
            assert metrics.snapshot()["counters"]["lifecycle.stale_served"] == 1

    def test_shed_policy_never_waits(self):
        graph_a, graph_b = _dynamic_pair()
        budget = StalenessBudget(max_version_lag=0)
        with IndexGenerationManager(
            graph_a,
            graph_b,
            iterations=ITERATIONS,
            staleness_budget=budget,
        ) as manager:
            with pytest.raises(IndexUnavailableError) as info:
                manager.lease("shed")
            assert info.value.reason == "no_generation"
            manager.warm()
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(17)))
            with pytest.raises(IndexUnavailableError) as info:
                manager.lease("shed")
            assert info.value.reason == "shed"
            assert info.value.staleness["version_lag"] == 1

    def test_stale_within_budget_is_served_under_shed(self):
        graph_a, graph_b = _dynamic_pair()
        budget = StalenessBudget(max_version_lag=5)
        with IndexGenerationManager(
            graph_a, graph_b, iterations=ITERATIONS, staleness_budget=budget
        ) as manager:
            manager.warm()
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(19)))
            with manager.lease("shed") as lease:
                assert lease.stale
                assert lease.generation.ordinal == 1

    def test_block_timeout_sheds_with_reason(self):
        graph_a, graph_b = _dynamic_pair()
        injector = FlakyInjector()
        with IndexGenerationManager(
            graph_a,
            graph_b,
            iterations=ITERATIONS,
            retry_policy=_fast_retry(1),
            circuit_breaker=CircuitBreaker(failure_threshold=100),
            rebuild_fault_injector=injector,
            failure_pause_seconds=0.0,
        ) as manager:
            with pytest.raises(IndexUnavailableError) as info:
                manager.lease("block", wait_timeout=0.4)
            # which structured reason wins depends on scheduling (the
            # failure epoch, the breaker, or the deadline may fire
            # first) — the invariant is: shed with a reason, never hang
            assert info.value.reason in ("timeout", "rebuild_failed", "degraded")

    def test_lease_after_close_raises(self):
        graph_a, graph_b = _dynamic_pair()
        manager = IndexGenerationManager(graph_a, graph_b, iterations=ITERATIONS)
        manager.warm()
        manager.close()
        with pytest.raises(RuntimeError, match="closed"):
            manager.lease("serve_stale")

    def test_swap_retires_old_generation_and_releases_memory(self):
        graph_a, graph_b = _dynamic_pair()
        metrics = Metrics()
        context = ExecutionContext(metrics=metrics)
        with IndexGenerationManager(
            graph_a, graph_b, iterations=ITERATIONS, context=context
        ) as manager:
            first = manager.warm()
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(23)))
            second = manager.rebuild_now()
            assert second.ordinal == 2
            assert first.retired
            counters = metrics.snapshot()["counters"]
            assert counters["lifecycle.generations_retired"] == 1
            assert counters["lifecycle.rebuilds"] == 2

    def test_checkpoints_pruned_after_swap(self, tmp_path):
        graph_a, graph_b = _dynamic_pair()
        with IndexGenerationManager(
            graph_a,
            graph_b,
            iterations=ITERATIONS,
            checkpoint_dir=tmp_path,
            keep_checkpoints=1,
        ) as manager:
            manager.warm()
            checkpoints = CheckpointManager(tmp_path, prefix="generation")
            assert len(checkpoints.steps()) <= 1

    def test_telemetry_is_threaded_through(self):
        graph_a, graph_b = _dynamic_pair()
        metrics = Metrics()
        tracer = Tracer()
        context = ExecutionContext(metrics=metrics, tracer=tracer)
        with IndexGenerationManager(
            graph_a, graph_b, iterations=ITERATIONS, context=context
        ) as manager:
            manager.warm()
        tree = metrics.snapshot()
        assert tree["counters"]["lifecycle.rebuilds"] == 1
        assert tree["gauges"]["lifecycle.live_generation"] == 1
        assert "lifecycle.rebuild_seconds" in tree["histograms"]
        names = {span.name for span in tracer.spans()}
        assert "lifecycle.rebuild" in names
        assert any(
            event["name"] == "lifecycle.generation_installed"
            for event in tracer.events()
        )


# ----------------------------------------------------------------------
# Failure handling: retries, breaker, degraded health
# ----------------------------------------------------------------------
class TestManagerFailures:
    def test_failed_rebuild_pins_last_good(self):
        graph_a, graph_b = _dynamic_pair()
        injector = FlakyInjector()
        injector.active = False
        with IndexGenerationManager(
            graph_a,
            graph_b,
            iterations=ITERATIONS,
            retry_policy=_fast_retry(1),
            rebuild_fault_injector=injector,
            failure_pause_seconds=0.0,
        ) as manager:
            first = manager.warm()
            baseline = first.factors.query_block([0, 1], [0, 1])
            injector.active = True
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(29)))
            with pytest.raises(InjectedFault):
                manager.rebuild_now()
            # last-good still serves, bit-identically
            with manager.lease("serve_stale") as lease:
                assert lease.generation is first
                assert np.array_equal(
                    lease.factors.query_block([0, 1], [0, 1]), baseline
                )
            health = manager.health()
            assert health["live_generation"] == 1
            assert health["last_failure"] is not None
            # recovery: the next forced rebuild succeeds and goes fresh
            injector.active = False
            second = manager.rebuild_now()
            assert second.ordinal == 2
            assert not manager.is_stale
            assert manager.health()["last_failure"] is None

    def test_repeated_failures_trip_breaker_and_degrade(self):
        graph_a, graph_b = _dynamic_pair()
        injector = FlakyInjector()
        injector.active = False
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        metrics = Metrics()
        with IndexGenerationManager(
            graph_a,
            graph_b,
            iterations=ITERATIONS,
            context=ExecutionContext(metrics=metrics),
            retry_policy=_fast_retry(1),
            circuit_breaker=breaker,
            rebuild_fault_injector=injector,
            failure_pause_seconds=0.0,
        ) as manager:
            first = manager.warm()
            injector.active = True
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(31)))
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    manager.rebuild_now()
            health = manager.health()
            assert health["degraded"]
            assert health["breaker"] == "open"
            assert health["consecutive_failures"] == 2
            # an open breaker pins last-good for serve_stale even beyond
            # any budget, annotated as degraded
            with manager.lease("serve_stale") as lease:
                assert lease.degraded
                assert lease.generation is first
            # blocking queries shed instead of hanging
            with pytest.raises(IndexUnavailableError) as info:
                manager.lease("block", wait_timeout=5.0)
            assert info.value.reason == "degraded"
            assert metrics.snapshot()["counters"]["lifecycle.breaker_open"] == 1

    def test_forced_probe_closes_breaker(self):
        graph_a, graph_b = _dynamic_pair()
        injector = FlakyInjector()
        injector.active = False
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        with IndexGenerationManager(
            graph_a,
            graph_b,
            iterations=ITERATIONS,
            retry_policy=_fast_retry(1),
            circuit_breaker=breaker,
            rebuild_fault_injector=injector,
            failure_pause_seconds=0.0,
        ) as manager:
            manager.warm()
            injector.active = True
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(37)))
            with pytest.raises(InjectedFault):
                manager.rebuild_now()
            assert manager.health()["breaker"] == "open"
            # rebuild_now acts as the probe without waiting for the
            # reset timeout; success closes the breaker
            injector.active = False
            generation = manager.rebuild_now()
            assert generation.ordinal == 2
            assert manager.health()["breaker"] == "closed"
            assert not manager.health()["degraded"]


# ----------------------------------------------------------------------
# Chaos: kill-mid-rebuild, checkpoint resume, corrupted checkpoints
# ----------------------------------------------------------------------
class TestChaos:
    def test_killed_rebuild_resumes_from_checkpoint_bit_identically(
        self, tmp_path
    ):
        graph_a, graph_b = _dynamic_pair()
        metrics = Metrics()
        injector = FaultInjector(fail_at=3, match="GSim+ iteration")
        with IndexGenerationManager(
            graph_a,
            graph_b,
            iterations=ITERATIONS,
            context=ExecutionContext(metrics=metrics),
            checkpoint_dir=tmp_path,
            retry_policy=_fast_retry(3),
            rebuild_fault_injector=injector,
        ) as manager:
            # the first build is killed at iteration 3, retried by the
            # retry policy, and the retry resumes from the checkpoint
            generation = manager.warm()
            counters = metrics.snapshot()["counters"]
            assert counters["lifecycle.rebuild_retries"] == 1
            assert counters["gsim_plus.resumed"] == 1
            snap_a, va, _ = graph_a.freeze(name="A")
            snap_b, vb, _ = graph_b.freeze(name="B")
            scratch = GSimIndex.build(snap_a, snap_b, iterations=ITERATIONS)
            assert np.array_equal(generation.factors.u, scratch.factors.u)
            assert np.array_equal(generation.factors.v, scratch.factors.v)
            assert generation.fingerprint == generation_fingerprint(
                scratch.factors, (va, vb), ITERATIONS
            )

    def test_corrupted_checkpoint_recovery(self, tmp_path):
        graph_a, graph_b = _dynamic_pair()
        injector = FaultInjector(fail_at=3, match="GSim+ iteration")
        with IndexGenerationManager(
            graph_a,
            graph_b,
            iterations=ITERATIONS,
            checkpoint_dir=tmp_path,
            keep_checkpoints=4,
            retry_policy=_fast_retry(1),  # no in-cycle retry
            rebuild_fault_injector=injector,
            failure_pause_seconds=0.0,
        ) as manager:
            with pytest.raises(InjectedFault):
                manager.rebuild_now()
            checkpoints = CheckpointManager(tmp_path, prefix="generation")
            steps = checkpoints.steps()
            assert steps, "the killed build left no snapshots"
            # corrupt the newest snapshot inside its largest member's
            # payload (a fixed offset can land in redundant zip plumbing
            # the loader never consults)
            _flip_payload_byte(checkpoints.path_for(max(steps)))
            # the next rebuild skips the corrupt snapshot with a warning
            # and still installs a generation equal to a scratch build
            with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
                generation = manager.rebuild_now()
            snap_a, _, _ = graph_a.freeze(name="A")
            snap_b, _, _ = graph_b.freeze(name="B")
            scratch = GSimIndex.build(snap_a, snap_b, iterations=ITERATIONS)
            assert np.array_equal(generation.factors.u, scratch.factors.u)
            assert np.array_equal(generation.factors.v, scratch.factors.v)

    def test_stale_target_checkpoints_are_discarded(self, tmp_path):
        graph_a, graph_b = _dynamic_pair()
        injector = FaultInjector(fail_at=3, match="GSim+ iteration")
        with IndexGenerationManager(
            graph_a,
            graph_b,
            iterations=ITERATIONS,
            checkpoint_dir=tmp_path,
            retry_policy=_fast_retry(1),
            rebuild_fault_injector=injector,
            failure_pause_seconds=0.0,
        ) as manager:
            with pytest.raises(InjectedFault):
                manager.rebuild_now()
            # the graphs move on: the killed build's snapshots target a
            # version that will never be installed
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(41)))
            generation = manager.rebuild_now()
            snap_a, _, _ = graph_a.freeze(name="A")
            snap_b, _, _ = graph_b.freeze(name="B")
            scratch = GSimIndex.build(snap_a, snap_b, iterations=ITERATIONS)
            assert np.array_equal(generation.factors.u, scratch.factors.u)
            assert np.array_equal(generation.factors.v, scratch.factors.v)


# ----------------------------------------------------------------------
# Concurrency: swaps vs in-flight readers, writer/reader stress
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_swap_during_held_lease_drains_not_tears(self):
        graph_a, graph_b = _dynamic_pair()
        with IndexGenerationManager(
            graph_a, graph_b, iterations=ITERATIONS
        ) as manager:
            first = manager.warm()
            lease = manager.lease("serve_stale")
            before = lease.factors.query_block([0, 1, 2], [0, 1])
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(43)))
            second = manager.rebuild_now()
            assert second.ordinal == 2
            # the old generation is replaced but not retired: the lease
            # still reads bit-identical data
            assert not first.retired
            assert np.array_equal(
                lease.factors.query_block([0, 1, 2], [0, 1]), before
            )
            lease.release()
            assert first.retired

    def test_swap_during_in_flight_query_many(self):
        graph_a, graph_b = _dynamic_pair()
        session = SimilaritySession(
            graph_a, graph_b, iterations=ITERATIONS, policy="serve_stale"
        )
        try:
            session.refresh()
            requests = [([i % graph_a.num_nodes], [0, 1]) for i in range(120)]
            results: dict = {}

            def reader():
                results["blocks"] = session.query_many(requests)

            # generations are immutable: holding a reference to the
            # pre-swap one keeps its arrays comparable after retirement
            first = session.lifecycle.live_generation
            thread = threading.Thread(target=reader)
            thread.start()
            rng = np.random.default_rng(47)
            graph_a.add_edge(*_fresh_edge(graph_a, rng))
            session.refresh()  # swap lands while the batch may be in flight
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            blocks = results["blocks"]
            assert len(blocks) == len(requests)
            second = session.lifecycle.live_generation
            assert second.ordinal == 2
            # the whole batch must be internally consistent: every block
            # equals the expectation from exactly one generation
            consistent = any(
                all(
                    np.array_equal(block, want)
                    for block, want in zip(
                        blocks, _expected_blocks(generation, requests)
                    )
                )
                for generation in (first, second)
            )
            assert consistent, "query_many mixed factor generations"
        finally:
            session.close()

    def test_writer_reader_stress_never_tears(self):
        graph_a, graph_b = _dynamic_pair()
        metrics = Metrics()
        context = ExecutionContext(metrics=metrics)
        manager = IndexGenerationManager(
            graph_a,
            graph_b,
            iterations=ITERATIONS,
            context=context,
            eager=True,
        )
        mutations = 60
        readers = 4
        errors: list = []
        reads: list = []
        stop = threading.Event()

        def writer():
            rng = np.random.default_rng(53)
            try:
                for step in range(mutations):
                    if step % 10 == 9:
                        # exercise deletions too
                        src, dst, _ = next(iter(graph_a.edges()))
                        graph_a.remove_edge(src, dst)
                    else:
                        graph_a.add_edge(*_fresh_edge(graph_a, rng))
                    time.sleep(0.002)
            except BaseException as exc:  # pragma: no cover - fail loudly
                errors.append(exc)
            finally:
                stop.set()

        def reader(seed):
            rng = np.random.default_rng(seed)
            try:
                while not stop.is_set():
                    node = int(rng.integers(graph_a.num_nodes))
                    with manager.lease("serve_stale") as lease:
                        # torn-generation check: the fingerprint taken at
                        # build time must re-verify against the arrays
                        # this lease actually exposes
                        recomputed = generation_fingerprint(
                            lease.factors,
                            lease.generation.versions,
                            lease.generation.iterations,
                        )
                        assert recomputed == lease.generation.fingerprint
                        block = lease.factors.query_block([node], [0])
                        assert block.shape == (1, 1)
                        assert np.isfinite(block).all()
                    reads.append(1)
            except BaseException as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        try:
            manager.warm()
            threads = [threading.Thread(target=writer)] + [
                threading.Thread(target=reader, args=(60 + i,))
                for i in range(readers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
                assert not thread.is_alive()
            assert not errors, errors
            assert len(reads) >= readers  # nobody dropped out early
            assert graph_a.rejected_mutations == 0
            # settle and verify the final state exactly
            final = manager.rebuild_now()
            assert not manager.is_stale
            snap_a, va, _ = graph_a.freeze(name="A")
            snap_b, vb, _ = graph_b.freeze(name="B")
            scratch = GSimIndex.build(snap_a, snap_b, iterations=ITERATIONS)
            assert np.array_equal(final.factors.u, scratch.factors.u)
            assert np.array_equal(final.factors.v, scratch.factors.v)
            assert final.fingerprint == generation_fingerprint(
                scratch.factors, (va, vb), ITERATIONS
            )
            counters = metrics.snapshot()["counters"]
            assert counters["lifecycle.rebuilds"] >= 2
            # coalescing really happened: far fewer rebuilds than writes
            assert counters["lifecycle.rebuilds"] <= mutations
        finally:
            manager.close()


def _expected_blocks(generation, requests):
    """The globally normalised blocks ``generation`` would serve."""
    factors = generation.factors
    norm = factors.frobenius_norm(include_scale=False)
    return [
        factors.query_block(qa, qb, include_scale=False) / norm
        for qa, qb in requests
    ]


# ----------------------------------------------------------------------
# The session facade
# ----------------------------------------------------------------------
class TestSessionLifecycle:
    def test_failed_recompute_does_not_poison(self):
        graph_a, graph_b = _dynamic_pair()
        injector = FlakyInjector()
        injector.active = False
        session = SimilaritySession(
            graph_a,
            graph_b,
            iterations=ITERATIONS,
            retry_policy=_fast_retry(1),
            rebuild_fault_injector=injector,
        )
        try:
            baseline = session.query([0, 1], [0, 1])
            injector.active = True
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(67)))
            with pytest.raises(InjectedFault):
                session.refresh()
            # previous factors still serve; nothing half-updated
            served = session.query([0, 1], [0, 1], policy="serve_stale")
            assert np.array_equal(served, baseline)
            # ... and the next recompute retries cleanly
            injector.active = False
            fresh = session.query([0, 1], [0, 1])
            assert session.stats.recomputes == 2
            assert fresh.shape == (2, 2)
        finally:
            session.close()

    def test_policy_override_per_call(self):
        graph_a, graph_b = _dynamic_pair()
        with SimilaritySession(
            graph_a, graph_b, iterations=ITERATIONS, policy="block"
        ) as session:
            session.refresh()
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(71)))
            info = session.query_info([0], [0], policy="serve_stale")
            assert info.stale
            assert info.generation == 1
        # session closed by the context manager
        with pytest.raises(RuntimeError, match="closed"):
            session.query([0], [0])

    def test_shed_session_policy(self):
        graph_a, graph_b = _dynamic_pair()
        budget = StalenessBudget(max_version_lag=0)
        with SimilaritySession(
            graph_a,
            graph_b,
            iterations=ITERATIONS,
            policy="shed",
            staleness_budget=budget,
        ) as session:
            session.refresh()
            assert session.query([0], [0]).shape == (1, 1)
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(73)))
            with pytest.raises(IndexUnavailableError) as info:
                session.query([0], [0])
            assert info.value.reason == "shed"
            assert session.stats.shed == 1

    def test_eager_rebuild_goes_fresh_without_queries(self):
        graph_a, graph_b = _dynamic_pair()
        with SimilaritySession(
            graph_a, graph_b, iterations=ITERATIONS, eager_rebuild=True
        ) as session:
            session.refresh()
            graph_a.add_edge(*_fresh_edge(graph_a, np.random.default_rng(79)))
            deadline = time.monotonic() + 30.0
            while session.stale and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not session.stale  # the write itself triggered the build

    def test_query_info_annotation_fields(self):
        graph_a, graph_b = _dynamic_pair()
        with SimilaritySession(
            graph_a, graph_b, iterations=ITERATIONS
        ) as session:
            info = session.query_info([0, 1], [0, 1])
            assert info.block.shape == (2, 2)
            assert info.generation == 1
            assert len(info.fingerprint) == 64
            assert not info.stale
            assert not info.degraded
            assert info.staleness["fresh"]

    def test_top_matches_and_normalizations_still_work(self):
        graph_a, graph_b = _dynamic_pair()
        with SimilaritySession(
            graph_a, graph_b, iterations=ITERATIONS
        ) as session:
            matches = session.top_matches(0, k=3)
            assert len(matches) == 3
            assert all(isinstance(node, int) for node, _ in matches)
            scores = [score for _, score in matches]
            assert scores == sorted(scores, reverse=True)
            block = session.query([0], [0], normalization="block")
            assert block.shape == (1, 1)
            with pytest.raises(ValueError, match="unknown normalization"):
                session.query([0], [0], normalization="rowwise")
