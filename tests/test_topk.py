"""Unit tests for top-k pair retrieval from the factored similarity."""

import numpy as np
import pytest

from repro import Graph, gsim_plus
from repro.core import top_k_for_queries, top_k_pairs
from repro.graphs import erdos_renyi_graph, random_node_sample


@pytest.fixture
def pair():
    graph_a = erdos_renyi_graph(30, 120, seed=1)
    graph_b = random_node_sample(graph_a, 12, seed=2)
    return graph_a, graph_b


class TestTopKPairs:
    def test_matches_dense_ranking(self, pair):
        graph_a, graph_b = pair
        full = gsim_plus(
            graph_a, graph_b, iterations=6, rank_cap="qr-compress"
        ).similarity
        best = top_k_pairs(graph_a, graph_b, k=5, iterations=6)
        dense_order = np.argsort(full, axis=None)[::-1][:5]
        expected = [divmod(int(i), graph_b.num_nodes) for i in dense_order]
        assert [(p.node_a, p.node_b) for p in best] == expected

    def test_scores_descending(self, pair):
        best = top_k_pairs(*pair, k=8, iterations=6)
        scores = [p.score for p in best]
        assert scores == sorted(scores, reverse=True)

    def test_scores_match_normalised_similarity(self, pair):
        graph_a, graph_b = pair
        full = gsim_plus(
            graph_a, graph_b, iterations=6, rank_cap="qr-compress"
        ).similarity
        best = top_k_pairs(graph_a, graph_b, k=3, iterations=6)
        for p in best:
            assert p.score == pytest.approx(full[p.node_a, p.node_b], rel=1e-9)

    def test_small_block_rows_same_result(self, pair):
        graph_a, graph_b = pair
        a = top_k_pairs(graph_a, graph_b, k=6, iterations=5, block_rows=4)
        b = top_k_pairs(graph_a, graph_b, k=6, iterations=5, block_rows=1024)
        assert [(p.node_a, p.node_b) for p in a] == [(p.node_a, p.node_b) for p in b]

    def test_k_clamped(self, pair):
        graph_a, graph_b = pair
        everything = top_k_pairs(graph_a, graph_b, k=10**6, iterations=4)
        assert len(everything) == graph_a.num_nodes * graph_b.num_nodes

    def test_hub_pair_wins_on_stars(self):
        star_a = Graph.from_edges(6, [(0, i) for i in range(1, 6)])
        star_b = Graph.from_edges(4, [(0, i) for i in range(1, 4)])
        best = top_k_pairs(star_a, star_b, k=1, iterations=6)
        assert (best[0].node_a, best[0].node_b) == (0, 0)

    def test_k_validated(self, pair):
        with pytest.raises(ValueError):
            top_k_pairs(*pair, k=0)


class TestTopKForQueries:
    def test_per_query_rankings(self, pair):
        graph_a, graph_b = pair
        results = top_k_for_queries(graph_a, graph_b, [0, 5], k=3, iterations=5)
        assert set(results) == {0, 5}
        for node, ranked in results.items():
            assert len(ranked) == 3
            assert all(p.node_a == node for p in ranked)
            scores = [p.score for p in ranked]
            assert scores == sorted(scores, reverse=True)

    def test_matches_dense_rows(self, pair):
        graph_a, graph_b = pair
        full = gsim_plus(
            graph_a, graph_b, iterations=5, rank_cap="qr-compress"
        ).similarity
        results = top_k_for_queries(graph_a, graph_b, [3], k=2, iterations=5)
        expected = np.argsort(-full[3], kind="stable")[:2]
        assert [p.node_b for p in results[3]] == expected.tolist()

    def test_out_of_range_query(self, pair):
        with pytest.raises(IndexError):
            top_k_for_queries(*pair, [999], k=2)


class TestSerialization:
    def test_round_trip(self, pair, tmp_path):
        from repro.core import GSimPlus, load_factors, save_factors

        graph_a, graph_b = pair
        solver = GSimPlus(graph_a, graph_b, rank_cap="qr-compress")
        state = None
        for state in solver.iterate(5):
            pass
        path = tmp_path / "factors.npz"
        save_factors(state.factors, path)
        loaded = load_factors(path)
        np.testing.assert_array_equal(loaded.u, state.factors.u)
        np.testing.assert_array_equal(loaded.v, state.factors.v)
        assert loaded.log_scale == state.factors.log_scale

    def test_loaded_factors_answer_queries(self, pair, tmp_path):
        from repro.core import GSimPlus, load_factors, save_factors

        graph_a, graph_b = pair
        solver = GSimPlus(graph_a, graph_b, rank_cap="qr-compress")
        state = None
        for state in solver.iterate(5):
            pass
        path = tmp_path / "factors.npz"
        save_factors(state.factors, path)
        loaded = load_factors(path)
        direct = state.factors.query_block([0, 1], [2, 3])
        np.testing.assert_array_equal(loaded.query_block([0, 1], [2, 3]), direct)

    def test_wrong_file_rejected(self, tmp_path):
        from repro.core import load_factors

        path = tmp_path / "junk.npz"
        np.savez(path, something=np.ones(3))
        with pytest.raises(ValueError, match="not a factors file"):
            load_factors(path)

    def test_version_mismatch_rejected(self, tmp_path):
        from repro.core import load_factors

        path = tmp_path / "old.npz"
        np.savez(
            path,
            u=np.ones((2, 1)),
            v=np.ones((2, 1)),
            log_scale=np.float64(0),
            format_version=np.int64(999),
        )
        with pytest.raises(ValueError, match="format version"):
            load_factors(path)
