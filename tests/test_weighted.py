"""Weighted-graph behaviour of the similarity models.

The GSim recursion (Eq. 1) is defined over arbitrary non-negative real
adjacency matrices; these tests pin down that the implementation treats
weights as first-class (not just 0/1) and that Theorem 3.1's exactness
carries over.
"""

import numpy as np
import pytest

from repro import Graph, gsim, gsim_plus
from repro.analysis import frobenius_error


@pytest.fixture
def weighted_pair():
    rng = np.random.default_rng(3)
    n_a, n_b = 20, 9
    dense_a = (rng.random((n_a, n_a)) < 0.2) * rng.uniform(0.5, 5.0, (n_a, n_a))
    dense_b = (rng.random((n_b, n_b)) < 0.3) * rng.uniform(0.5, 5.0, (n_b, n_b))
    np.fill_diagonal(dense_a, 0.0)
    np.fill_diagonal(dense_b, 0.0)
    return Graph(dense_a, name="weighted-A"), Graph(dense_b, name="weighted-B")


class TestWeightedExactness:
    @pytest.mark.parametrize("k", [1, 3, 6, 10])
    def test_theorem_31_holds_on_weights(self, weighted_pair, k):
        graph_a, graph_b = weighted_pair
        ours = gsim_plus(graph_a, graph_b, iterations=k).similarity
        reference = gsim(graph_a, graph_b, iterations=k).similarity
        assert frobenius_error(ours, reference) < 1e-9

    def test_weights_change_scores(self):
        base = Graph.from_edges(3, [(0, 1), (1, 2)])
        heavy = Graph.from_edges(3, [(0, 1, 10.0), (1, 2)])
        probe = Graph.from_edges(2, [(0, 1)])
        s_base = gsim_plus(base, probe, iterations=6).similarity
        s_heavy = gsim_plus(heavy, probe, iterations=6).similarity
        assert frobenius_error(s_base, s_heavy) > 1e-3

    def test_uniform_scaling_invariant(self, weighted_pair):
        # Scaling all weights by a constant cancels in the normalisation.
        graph_a, graph_b = weighted_pair
        scaled_a = Graph(graph_a.adjacency * 7.0)
        s_original = gsim_plus(graph_a, graph_b, iterations=6).similarity
        s_scaled = gsim_plus(scaled_a, graph_b, iterations=6).similarity
        assert frobenius_error(s_original, s_scaled) < 1e-9

    def test_deep_weighted_run_no_overflow(self, weighted_pair):
        # Weights > 1 inflate ||Z_k|| geometrically; the log-scale
        # rescaling must keep 50 iterations finite.
        graph_a, graph_b = weighted_pair
        result = gsim_plus(graph_a, graph_b, iterations=50)
        assert np.isfinite(result.similarity).all()


class TestWeightedSemantics:
    def test_heavier_edge_dominates_similarity(self):
        # Two candidate hubs in G_A; the one whose edges are heavier
        # should match G_B's hub more strongly.
        graph_a = Graph.from_edges(
            6,
            [(0, 2, 5.0), (0, 3, 5.0), (1, 4, 1.0), (1, 5, 1.0)],
        )
        graph_b = Graph.from_edges(3, [(0, 1), (0, 2)])
        similarity = gsim_plus(graph_a, graph_b, iterations=6).similarity
        assert similarity[0, 0] > similarity[1, 0]
