"""Unit tests for repro.workloads."""

import numpy as np
import pytest

from repro.graphs import erdos_renyi_graph
from repro.workloads import (
    degree_biased_queries,
    geometric_sweep,
    linear_sweep,
    make_workload,
    uniform_queries,
)


@pytest.fixture
def graph():
    return erdos_renyi_graph(100, 400, seed=0)


class TestUniformQueries:
    def test_size_and_distinct(self, graph):
        queries = uniform_queries(graph, 30, seed=0)
        assert queries.size == 30
        assert np.unique(queries).size == 30

    def test_sorted(self, graph):
        queries = uniform_queries(graph, 30, seed=0)
        assert (np.diff(queries) > 0).all()

    def test_deterministic(self, graph):
        a = uniform_queries(graph, 30, seed=1)
        b = uniform_queries(graph, 30, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_oversample_rejected(self, graph):
        with pytest.raises(ValueError, match="distinct"):
            uniform_queries(graph, 101)

    def test_in_range(self, graph):
        queries = uniform_queries(graph, 50, seed=3)
        assert queries.min() >= 0 and queries.max() < 100


class TestDegreeBiasedQueries:
    def test_size_and_distinct(self, graph):
        queries = degree_biased_queries(graph, 30, seed=0)
        assert np.unique(queries).size == 30

    def test_bias_toward_hubs(self):
        # A graph with one clear hub: biased queries pick it up much more
        # often across seeds than uniform sampling would.
        from repro.graphs import Graph

        edges = [(0, i) for i in range(1, 50)] + [(i, 0) for i in range(1, 50)]
        hub_graph = Graph.from_edges(60, edges)
        hits = sum(
            0 in degree_biased_queries(hub_graph, 5, seed=s, power=2.0)
            for s in range(30)
        )
        assert hits >= 25

    def test_power_zero_is_uniform_support(self, graph):
        queries = degree_biased_queries(graph, 100, seed=0, power=0.0)
        assert queries.size == 100  # can still cover the whole graph

    def test_negative_power_rejected(self, graph):
        with pytest.raises(ValueError, match="power"):
            degree_biased_queries(graph, 5, power=-1.0)


class TestMakeWorkload:
    def test_sizes(self, graph):
        workload = make_workload(graph, graph, 10, 20, seed=0)
        assert workload.size == (10, 20)

    def test_clamped_to_graph(self, graph):
        workload = make_workload(graph, graph, 5000, 5000, seed=0)
        assert workload.size == (100, 100)

    def test_independent_sides(self, graph):
        workload = make_workload(graph, graph, 50, 50, seed=0)
        assert not np.array_equal(workload.queries_a, workload.queries_b)

    def test_deterministic(self, graph):
        a = make_workload(graph, graph, 10, 10, seed=42)
        b = make_workload(graph, graph, 10, 10, seed=42)
        np.testing.assert_array_equal(a.queries_a, b.queries_a)
        np.testing.assert_array_equal(a.queries_b, b.queries_b)

    def test_biased_flag(self, graph):
        workload = make_workload(graph, graph, 10, 10, seed=0, biased=True)
        assert workload.size == (10, 10)


class TestSweeps:
    def test_linear_basic(self):
        assert linear_sweep(2, 10, 5) == [2, 4, 6, 8, 10]

    def test_linear_single_step(self):
        assert linear_sweep(7, 100, 1) == [7]

    def test_linear_dedupes_collisions(self):
        values = linear_sweep(1, 3, 10)
        assert values == sorted(set(values))

    def test_linear_validates_steps(self):
        with pytest.raises(ValueError):
            linear_sweep(0, 10, 0)

    def test_geometric_basic(self):
        assert geometric_sweep(100, 1000, 2) == [100, 200, 400, 800]

    def test_geometric_includes_stop(self):
        assert geometric_sweep(1, 8, 2) == [1, 2, 4, 8]

    def test_geometric_validates(self):
        with pytest.raises(ValueError):
            geometric_sweep(0, 10)
        with pytest.raises(ValueError):
            geometric_sweep(1, 10, factor=1.0)
