"""Unit tests for convergence-controlled iteration."""

import numpy as np
import pytest

from repro import Graph, iterate_to_convergence
from repro.core import GSimPlus


class TestIterateToConvergence:
    def test_converges_on_small_pair(self, random_pair):
        graph_a, graph_b = random_pair
        report = iterate_to_convergence(graph_a, graph_b, tolerance=1e-5)
        assert report.converged
        assert report.iterations % 2 == 0
        assert report.similarity is not None

    def test_residuals_decrease(self, random_pair):
        graph_a, graph_b = random_pair
        report = iterate_to_convergence(
            graph_a, graph_b, tolerance=1e-12, max_iterations=20
        )
        # Geometric decay (Theorem 4.2): later residuals below earlier ones.
        assert report.residuals[-1] < report.residuals[0]

    def test_budget_exhaustion_flagged(self, random_pair):
        graph_a, graph_b = random_pair
        report = iterate_to_convergence(
            graph_a, graph_b, tolerance=1e-300, max_iterations=4
        )
        assert not report.converged
        assert report.iterations == 4

    def test_result_matches_fixed_iteration_run(self, random_pair):
        graph_a, graph_b = random_pair
        report = iterate_to_convergence(graph_a, graph_b, tolerance=1e-5)
        solver = GSimPlus(graph_a, graph_b)
        direct = solver.run(report.iterations).similarity
        np.testing.assert_allclose(report.similarity, direct, atol=1e-12)

    def test_queries_forwarded(self, random_pair):
        graph_a, graph_b = random_pair
        report = iterate_to_convergence(
            graph_a, graph_b, tolerance=1e-4, queries_a=[0, 1], queries_b=[2]
        )
        assert report.similarity.shape == (2, 1)

    def test_tolerance_validated(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(ValueError, match="tolerance"):
            iterate_to_convergence(graph_a, graph_b, tolerance=0.0)

    def test_max_iterations_validated(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(ValueError):
            iterate_to_convergence(graph_a, graph_b, max_iterations=0)

    def test_converges_through_dense_fallback(self, random_pair):
        graph_a, graph_b = random_pair  # min side 15: fallback by k=4
        report = iterate_to_convergence(
            graph_a, graph_b, tolerance=1e-5, max_iterations=60
        )
        assert report.converged
        assert report.iterations > 8  # deep enough that the fallback engaged

    def test_instant_convergence_on_symmetric_structure(self):
        # A 2-cycle pair reaches its fixed point almost immediately.
        a = Graph.from_edges(2, [(0, 1), (1, 0)])
        report = iterate_to_convergence(a, a, tolerance=1e-8)
        assert report.converged
        assert report.iterations <= 6
