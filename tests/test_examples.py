"""Smoke tests: every example script runs end-to-end and reaches its
headline conclusion (captured from stdout)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "GSim+ similarity matrix" in out
        assert "converged=True" in out

    def test_social_media_alignment(self):
        out = run_example("social_media_alignment.py")
        assert "3/3 communities matched" in out
        # Seed-user retrieval hits mostly the right community.
        retrieved = int(out.split("are Twitter broadcasters")[0].split()[-1].split("/")[0])
        assert retrieved >= 7

    def test_synonym_extraction(self):
        out = run_example("synonym_extraction.py")
        # The top candidate for each query is its true synonym.
        big_section = out.split("synonym candidates for 'big':")[1]
        assert big_section.strip().splitlines()[0].split()[0] == "large"
        small_section = out.split("synonym candidates for 'small':")[1]
        assert small_section.strip().splitlines()[0].split()[0] == "little"

    def test_web_anomaly_detection(self):
        out = run_example("web_anomaly_detection.py")
        assert "ranks #1" in out

    def test_index_and_retrieve(self):
        out = run_example("index_and_retrieve.py")
        assert "index built" in out
        assert "top-5 most similar cross-graph pairs" in out

    def test_content_aware_matching(self):
        out = run_example("content_aware_matching.py")
        assert "structure + content  100.0%" in out

    def test_evolving_recommendations(self):
        out = run_example("evolving_recommendations.py")
        assert "recomputes" in out and "cache hits" in out
        recomputes = int(out.split(" recomputes")[0].split()[-1])
        hits = int(out.split(" cache hits")[0].split()[-1])
        assert hits > 0 and recomputes >= 1
