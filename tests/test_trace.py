"""Tracing & telemetry tests: spans, stitching, histograms, exporters.

Covers the tracer itself (nesting, cross-thread parent handles, bounded
buffers, the structured event log, Chrome-trace export, summaries), the
histogram metric kind (percentiles, merge-by-bucket-addition, concurrent
writers), and the end-to-end wiring: per-iteration solver spans, worker
shard stitching, the ``index.query_seconds`` latency histogram, traced
sweeps, and the ``--trace``/``--metrics`` CLI composition.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.cli import main
from repro.core import top_k_pairs
from repro.core.gsim_plus import gsim_plus
from repro.experiments.spec import ExperimentSpec, run_spec
from repro.graphs import Graph
from repro.retrieval import GSimIndex
from repro.runtime import (
    HISTOGRAM_BUCKETS,
    NULL_TRACER,
    ExecutionContext,
    Metrics,
    NullTracer,
    Tracer,
    WorkerPool,
    histogram_bucket_bounds,
    render_trace_summary,
    summarize_trace,
)

pytestmark = pytest.mark.trace


def _ring(n: int, seed: int = 0) -> Graph:
    rng = np.random.default_rng(seed)
    edges = [(i, (i + 1) % n) for i in range(n)]
    for _ in range(n // 2):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.append((int(u), int(v)))
    return Graph.from_edges(n, edges)


# ----------------------------------------------------------------------
# Tracer core
# ----------------------------------------------------------------------
class TestTracer:
    def test_implicit_nesting_and_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
        assert tracer.current_span() is None
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.span_id != outer.span_id
        # Completion order: inner closes first.
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]
        assert outer.duration >= inner.duration >= 0.0

    def test_explicit_parent_stitches_across_threads(self):
        tracer = Tracer()
        with tracer.span("submit") as parent:
            def shard():
                with tracer.span("shard", parent=parent):
                    pass

            threads = [threading.Thread(target=shard) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        shards = [s for s in tracer.spans() if s.name == "shard"]
        assert len(shards) == 4
        assert all(s.parent_id == parent.span_id for s in shards)
        # The worker threads had empty stacks; the explicit handle must
        # not be overridden by implicit resolution.
        assert parent.parent_id is None

    def test_exception_recorded_as_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.attributes["error"] == "ValueError"
        assert span.end is not None

    def test_span_buffer_is_bounded_and_drops_oldest(self):
        tracer = Tracer(max_spans=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]
        assert tracer.dropped_spans == 2

    def test_event_log_bounded_and_bound_to_spans(self):
        tracer = Tracer(max_events=2)
        with tracer.span("work") as span:
            tracer.event("first", severity="warning", detail=1)
        tracer.event("second")
        tracer.event("third", span=span, detail=3)
        events = tracer.events()
        assert [e["name"] for e in events] == ["second", "third"]
        assert tracer.dropped_events == 1
        # "second" fired outside any span; "third" was bound explicitly.
        assert events[0]["span_id"] is None
        assert events[1]["span_id"] == span.span_id
        assert events[1]["attributes"] == {"detail": 3}

    def test_chrome_trace_format(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", width=4) as outer:
            with tracer.span("inner"):
                tracer.event("milestone", severity="info", step=2)
        payload = tracer.chrome_trace()
        text = json.dumps(payload)  # must be JSON-serialisable
        assert "traceEvents" in payload
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        assert [e["name"] for e in instants] == ["milestone"]
        by_name = {e["name"]: e for e in complete}
        assert by_name["inner"]["args"]["parent_id"] == outer.span_id
        assert by_name["outer"]["args"]["width"] == 4
        assert by_name["outer"]["dur"] >= by_name["inner"]["dur"] >= 0
        # The stitching marker is internal, never exported.
        assert "explicit_parent" not in text
        out = tmp_path / "trace.json"
        tracer.write_chrome_trace(out)
        assert json.loads(out.read_text())["traceEvents"]

    def test_write_events_jsonl(self, tmp_path):
        tracer = Tracer()
        tracer.event("a", severity="error", code=7)
        tracer.event("b")
        out = tmp_path / "events.jsonl"
        tracer.write_events(out)
        lines = out.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["severity"] == "error"

    def test_summarize_trace_self_time_telescopes(self):
        tracer = Tracer()
        with tracer.span("root"):
            for _ in range(3):
                with tracer.span("child"):
                    time.sleep(0.002)
        rows = summarize_trace(tracer)
        by_name = {row["name"]: row for row in rows}
        assert by_name["child"]["calls"] == 3
        assert by_name["root"]["calls"] == 1
        root_total = by_name["root"]["total_seconds"]
        self_sum = sum(row["self_seconds"] for row in rows)
        # Serial trace: self time telescopes back to the root duration.
        assert self_sum == pytest.approx(root_total, rel=1e-9)
        assert by_name["child"]["min_seconds"] <= by_name["child"]["max_seconds"]
        # Hottest-first ranking.
        assert rows == sorted(
            rows, key=lambda row: (-row["self_seconds"], row["name"])
        )

    def test_render_trace_summary(self):
        tracer = Tracer()
        with tracer.span("alpha"):
            pass
        table = render_trace_summary(tracer)
        assert "span" in table and "alpha" in table and "self s" in table
        assert "(no spans recorded)" in render_trace_summary(Tracer())


class TestNullTracer:
    def test_null_span_is_a_shared_singleton(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert NULL_TRACER.current_span() is None
        assert not NULL_TRACER.enabled
        NULL_TRACER.event("ignored", severity="error")

    def test_null_span_is_inert(self):
        with NULL_TRACER.span("x") as span:
            span.set_attribute("k", 1)
        assert span.duration == 0.0

    def test_context_defaults_to_null_tracer(self):
        assert ExecutionContext().tracer is NULL_TRACER
        tracer = Tracer()
        assert ExecutionContext(tracer=tracer).tracer is tracer
        assert isinstance(ExecutionContext().tracer, NullTracer)


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
class TestHistograms:
    def test_bucket_bounds_tile_the_range(self):
        assert histogram_bucket_bounds(0) == (0.0, 1e-6)
        for index in range(1, HISTOGRAM_BUCKETS - 1):
            lower, upper = histogram_bucket_bounds(index)
            assert histogram_bucket_bounds(index - 1)[1] == pytest.approx(lower)
            assert upper > lower
        assert histogram_bucket_bounds(HISTOGRAM_BUCKETS - 1)[1] == float("inf")
        with pytest.raises(IndexError):
            histogram_bucket_bounds(HISTOGRAM_BUCKETS)

    def test_percentiles_over_a_known_distribution(self):
        metrics = Metrics()
        for millis in range(1, 101):  # 1ms .. 100ms
            metrics.observe_histogram("lat", millis / 1000.0)
        hist = metrics.histogram("lat")
        assert hist["count"] == 100
        assert hist["min"] == pytest.approx(0.001)
        assert hist["max"] == pytest.approx(0.100)
        assert hist["sum"] == pytest.approx(sum(range(1, 101)) / 1000.0)
        assert hist["p50"] <= hist["p90"] <= hist["p99"] <= hist["max"]
        # Buckets are ~33% wide; the estimates stay in the right decade.
        assert 0.025 <= hist["p50"] <= 0.085
        assert hist["p99"] >= 0.07

    def test_merge_is_exact_bucket_addition(self):
        first, second = Metrics(), Metrics()
        for value in (1e-5, 1e-3, 1e-1):
            first.observe_histogram("h", value)
            second.observe_histogram("h", value)
        second.observe_histogram("h", 10.0)
        first.merge_snapshot(second.snapshot())
        merged = first.histogram("h")
        assert merged["count"] == 7
        assert merged["max"] == pytest.approx(10.0)
        expected = Metrics()
        for value in (1e-5, 1e-3, 1e-1, 1e-5, 1e-3, 1e-1, 10.0):
            expected.observe_histogram("h", value)
        assert merged["buckets"] == expected.histogram("h")["buckets"]
        assert merged["sum"] == pytest.approx(expected.histogram("h")["sum"])

    def test_time_histogram_context_manager(self):
        metrics = Metrics()
        with metrics.time_histogram("block"):
            pass
        assert metrics.histogram("block")["count"] == 1

    def test_absent_histogram_reads_as_zero(self):
        hist = Metrics().histogram("never")
        assert hist["count"] == 0
        assert hist["buckets"] == {}
        assert hist["p99"] == 0.0

    def test_concurrent_writers_exact_counts(self):
        """Satellite: >=4 threads hammering one sink lose nothing."""
        metrics = Metrics()
        threads, per_thread = 6, 500

        def worker(seed: int) -> None:
            for step in range(per_thread):
                metrics.increment("ops")
                metrics.observe_histogram("lat", (seed + 1) * 1e-4)
                if step % 50 == 0:
                    metrics.add_time("t", 0.001)

        pool = [
            threading.Thread(target=worker, args=(index,))
            for index in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert metrics.counter("ops") == threads * per_thread
        hist = metrics.histogram("lat")
        assert hist["count"] == threads * per_thread
        assert sum(hist["buckets"].values()) == threads * per_thread
        assert metrics.timer("t").calls == threads * (per_thread // 50)

    def test_concurrent_merge_snapshot_exact(self):
        """Satellite: concurrent merge_snapshot folds are lossless."""
        shared = Metrics()
        threads = 4

        def producer(seed: int) -> None:
            local = Metrics()
            for _ in range(200):
                local.increment("cells")
                local.observe_histogram("lat", (seed + 1) * 1e-3)
            shared.merge_snapshot(local.snapshot())

        pool = [
            threading.Thread(target=producer, args=(index,))
            for index in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert shared.counter("cells") == threads * 200
        hist = shared.histogram("lat")
        assert hist["count"] == threads * 200
        assert sum(hist["buckets"].values()) == threads * 200

    def test_snapshot_key_ordering_is_deterministic(self):
        """Satellite: same measurements, any insertion order -> same JSON."""
        forward, backward = Metrics(), Metrics()
        names = ["zeta", "alpha", "mid"]
        for name in names:
            forward.increment(name)
            forward.observe_histogram(f"h.{name}", 0.01)
        for name in reversed(names):
            backward.increment(name)
            backward.observe_histogram(f"h.{name}", 0.01)
        assert json.dumps(forward.snapshot()) == json.dumps(backward.snapshot())
        snap = forward.snapshot()
        assert list(snap["counters"]) == sorted(names)
        assert list(snap["histograms"]) == sorted(f"h.{n}" for n in names)


# ----------------------------------------------------------------------
# Wiring: solver, worker shards, index, sweep, CLI
# ----------------------------------------------------------------------
class TestTracedSolver:
    def test_one_span_per_iteration_with_attributes(self):
        tracer = Tracer()
        context = ExecutionContext(tracer=tracer)
        a, b = _ring(14, seed=1), _ring(11, seed=2)
        gsim_plus(a, b, iterations=4, context=context)
        iterate = [s for s in tracer.spans() if s.name == "gsim_plus.iterate"]
        assert len(iterate) == 4
        assert [s.attributes["k"] for s in iterate] == [1, 2, 3, 4]
        assert all("width" in s.attributes for s in iterate)

    def test_untraced_context_records_nothing(self):
        context = ExecutionContext()
        a, b = _ring(10, seed=3), _ring(9, seed=4)
        gsim_plus(a, b, iterations=2, context=context)
        assert context.tracer is NULL_TRACER


@pytest.mark.parallel
class TestShardStitching:
    def test_pool_shards_parent_under_submitting_span(self):
        tracer = Tracer()
        context = ExecutionContext(tracer=tracer)
        pool = WorkerPool.resolve(3)
        with tracer.span("submit") as parent:
            results = pool.map(
                lambda value: value * 2, list(range(8)),
                context=context, what="doubling",
            )
        assert results == [v * 2 for v in range(8)]
        shards = [s for s in tracer.spans() if s.name == "parallel.shard"]
        assert len(shards) == 8
        assert all(s.parent_id == parent.span_id for s in shards)

    def test_topk_scan_stitches_at_two_workers(self):
        tracer = Tracer()
        context = ExecutionContext(tracer=tracer)
        a, b = _ring(24, seed=5), _ring(20, seed=6)
        top_k_pairs(a, b, 5, iterations=3, context=context, max_workers=2)
        spans = tracer.spans()
        (scan,) = [s for s in spans if s.name == "topk.scan_pairs"]
        shards = [
            s for s in spans
            if s.name == "parallel.shard"
            and s.attributes.get("what") == "top-k pair scan"
        ]
        assert shards, "the scan must shard its row blocks"
        assert all(s.parent_id == scan.span_id for s in shards)


class TestTracedIndex:
    def test_query_latency_histogram_over_100_queries(self):
        a, b = _ring(30, seed=7), _ring(25, seed=8)
        index = GSimIndex.build(a, b, iterations=4)
        tracer = Tracer()
        context = ExecutionContext(tracer=tracer)
        for step in range(100):
            index.query([step % a.num_nodes], [step % b.num_nodes], context=context)
        hist = context.metrics.histogram("index.query_seconds")
        assert hist["count"] == 100
        assert 0.0 < hist["p50"] <= hist["p99"]
        query_spans = [s for s in tracer.spans() if s.name == "index.query"]
        assert len(query_spans) == 100
        assert query_spans[0].attributes["cells"] == 1

    def test_query_many_span_covers_all_requests(self):
        a, b = _ring(16, seed=9), _ring(13, seed=10)
        index = GSimIndex.build(a, b, iterations=3)
        tracer = Tracer()
        context = ExecutionContext(tracer=tracer)
        requests = [([i], [0, 1]) for i in range(6)]
        blocks = index.query_many(requests, max_workers=2, context=context)
        assert len(blocks) == 6
        (many,) = [s for s in tracer.spans() if s.name == "index.query_many"]
        assert many.attributes["requests"] == 6
        assert context.metrics.histogram("index.query_seconds")["count"] == 6


class TestTracedSweep:
    def test_sweep_spans_nest_and_account_for_wall_time(self):
        spec = ExperimentSpec(
            name="traced", datasets=("EE",), algorithms=("GSim+",),
            scale="tiny", iterations=3,
        )
        tracer = Tracer()
        records = run_spec(spec, tracer=tracer)
        assert records
        spans = tracer.spans()
        (root,) = [s for s in spans if s.name == "sweep.run"]
        cells = [s for s in spans if s.name == "sweep.cell"]
        assert len(cells) == len(records)
        assert all(c.parent_id == root.span_id for c in cells)
        assert all(c.attributes["outcome"] == "ok" for c in cells)
        iterates = [s for s in spans if s.name == "gsim_plus.iterate"]
        cell_ids = {c.span_id for c in cells}
        assert iterates and all(s.parent_id in cell_ids for s in iterates)
        # Serial run: the self-time ranking telescopes back to the root
        # duration (the acceptance bound is 10%; exact here).
        rows = summarize_trace(tracer)
        self_sum = sum(row["self_seconds"] for row in rows)
        assert self_sum == pytest.approx(root.duration, rel=0.10)


class TestTracedCli:
    def test_trace_and_metrics_compose(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "fig3", "--scale", "tiny", "--algorithms", "GSim+",
            "--trace", str(trace_path), "--trace-summary",
            "--metrics", str(metrics_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written to" in out and "metrics written to" in out
        assert "self s" in out  # the summary table
        payload = json.loads(trace_path.read_text())
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert {"sweep.run", "sweep.cell", "gsim_plus.iterate"} <= names
        metrics = json.loads(metrics_path.read_text())
        assert set(metrics) == {
            "counters", "gauges", "histograms", "series", "timers"
        }

    def test_topk_trace_has_shard_spans(self, tmp_path, capsys):
        trace_path = tmp_path / "topk-trace.json"
        code = main([
            "topk", "--scale", "tiny", "--dataset", "HP", "--top", "3",
            "--workers", "2", "--trace", str(trace_path),
        ])
        assert code == 0
        payload = json.loads(trace_path.read_text())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert {"gsim_plus.iterate", "topk.scan_pairs", "parallel.shard"} <= names
        (scan,) = [e for e in complete if e["name"] == "topk.scan_pairs"]
        shard_parents = {
            e["args"]["parent_id"]
            for e in complete
            if e["name"] == "parallel.shard"
            and e["args"].get("what") == "top-k pair scan"
        }
        assert shard_parents == {scan["args"]["span_id"]}
