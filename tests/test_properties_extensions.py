"""Property-based tests for the extension layers (top-k, batch, index,
content priors)."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Graph, gsim, gsim_plus
from repro.analysis import frobenius_error
from repro.core import LowRankFactors, top_k_pairs
from repro.core.batch import BatchQueryEngine

_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def connected_pairs(draw):
    """Graph pairs guaranteed at least one edge each (no collapse)."""
    def one(n):
        edges = [(i, (i + 1) % n) for i in range(n)]  # cycle backbone
        extra = draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=n,
            )
        )
        edges += [(a, b) for a, b in extra if a != b]
        return Graph.from_edges(n, edges)

    n_a = draw(st.integers(3, 9))
    n_b = draw(st.integers(2, 7))
    return one(n_a), one(n_b)


class TestTopKProperty:
    @_settings
    @given(pair=connected_pairs(), k=st.integers(1, 6))
    def test_topk_agrees_with_dense_scores(self, pair, k):
        graph_a, graph_b = pair
        pairs = top_k_pairs(graph_a, graph_b, k=k, iterations=4)
        full = gsim_plus(
            graph_a, graph_b, iterations=4, rank_cap="qr-compress"
        ).similarity
        # Every returned score matches the dense matrix entry, and no
        # unreturned entry strictly beats the k-th returned score.
        kth = pairs[-1].score
        for pair_ in pairs:
            assert abs(pair_.score - full[pair_.node_a, pair_.node_b]) < 1e-9
        assert (full > kth + 1e-9).sum() < len(pairs)

    @_settings
    @given(pair=connected_pairs())
    def test_topk_block_rows_score_invariant(self, pair):
        # Exact pair identity can differ across block sizes when scores tie
        # at float-noise level (symmetric graphs); the *scores* must agree.
        graph_a, graph_b = pair
        small = top_k_pairs(graph_a, graph_b, k=4, iterations=3, block_rows=2)
        large = top_k_pairs(graph_a, graph_b, k=4, iterations=3, block_rows=512)
        np.testing.assert_allclose(
            [p.score for p in small], [p.score for p in large], atol=1e-9
        )


class TestBatchEngineProperty:
    @_settings
    @given(pair=connected_pairs())
    def test_stream_reconstructs(self, pair):
        graph_a, graph_b = pair
        from repro.core import GSimPlus

        solver = GSimPlus(graph_a, graph_b, rank_cap="qr-compress")
        state = None
        for state in solver.iterate(4):
            pass
        engine = BatchQueryEngine(state.factors)
        full = np.vstack([block for _, block in engine.stream_rows(block_rows=2)])
        reference = gsim_plus(graph_a, graph_b, iterations=4).similarity
        assert frobenius_error(full, reference) < 1e-9


class TestContentPriorProperty:
    @_settings
    @given(
        pair=connected_pairs(),
        k=st.integers(1, 4),
        width=st.integers(1, 3),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_seeded_exactness(self, pair, k, width, seed):
        graph_a, graph_b = pair
        rng = np.random.default_rng(seed)
        features_a = rng.uniform(0.1, 1.0, (graph_a.num_nodes, width))
        features_b = rng.uniform(0.1, 1.0, (graph_b.num_nodes, width))
        ours = gsim_plus(
            graph_a, graph_b, iterations=k,
            initial_factors=(features_a, features_b),
        ).similarity
        reference = gsim(
            graph_a, graph_b, iterations=k, initial=features_a @ features_b.T
        ).similarity
        assert frobenius_error(ours, reference) < 1e-9


class TestFactorScaleProperty:
    @_settings
    @given(
        pair=connected_pairs(),
        scale=st.floats(0.001, 1000.0, allow_nan=False),
    )
    def test_prior_scale_invariance(self, pair, scale):
        # Scaling the content prior by a constant cannot change the
        # normalised similarity.
        graph_a, graph_b = pair
        base_a = np.ones((graph_a.num_nodes, 1))
        base_b = np.ones((graph_b.num_nodes, 1))
        plain = gsim_plus(graph_a, graph_b, iterations=3).similarity
        scaled = gsim_plus(
            graph_a, graph_b, iterations=3,
            initial_factors=(base_a * scale, base_b),
        ).similarity
        assert frobenius_error(plain, scaled) < 1e-9

    @_settings
    @given(pair=connected_pairs())
    def test_factored_norm_scale_identity(self, pair):
        graph_a, graph_b = pair
        from repro.core import GSimPlus

        solver = GSimPlus(graph_a, graph_b, rank_cap="none")
        for state in solver.iterate(3):
            if state.factors is None:
                continue
            factors = state.factors
            # log-scale folded in == explicit multiplication.
            explicit = LowRankFactors(factors.u, factors.v, 0.0)
            ratio = factors.frobenius_norm() / max(
                explicit.frobenius_norm(), 1e-300
            )
            assert ratio == np.exp(factors.log_scale) or abs(
                np.log(max(ratio, 1e-300)) - factors.log_scale
            ) < 1e-9
