"""Unit tests for the runtime layer: ExecutionContext, Metrics, budgets.

Covers the three scenarios the issue calls out explicitly — a deadline
armed mid-run stopping GSim+ with partial metrics, a memory budget turning
the dense rank-cap fallback into a structured failure, and thread-pooled
``query_many`` aggregating counters without losing increments — plus the
supporting pieces (Metrics semantics, ledger accounting, cancellation,
the guards façade, and byte-identical no-context behaviour).
"""

import threading
import time

import numpy as np
import pytest

from repro import gsim_plus
from repro.core.batch import BatchQueryEngine
from repro.core.embeddings import LowRankFactors
from repro.core.gsim_plus import GSimPlus
from repro.experiments import guards
from repro.graphs import Graph
from repro.runtime import (
    BudgetExceeded,
    Cancelled,
    CancellationToken,
    Deadline,
    DeadlineExceeded,
    ExecutionContext,
    MemoryBudget,
    MemoryBudgetExceeded,
    MemoryLedger,
    Metrics,
    WallClockDeadline,
)
from repro.utils.validation import resolve_node_index


def _ring(n: int, seed: int = 0) -> Graph:
    """A ring plus a few chords — connected, irregular, deterministic."""
    rng = np.random.default_rng(seed)
    edges = [(i, (i + 1) % n) for i in range(n)]
    for _ in range(n // 2):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.append((int(u), int(v)))
    return Graph.from_edges(n, edges)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counters_accumulate(self):
        metrics = Metrics()
        metrics.increment("x")
        metrics.increment("x", 4)
        assert metrics.counter("x") == 5.0
        assert metrics.counter("never") == 0.0

    def test_timer_context_manager(self):
        metrics = Metrics()
        with metrics.time("block"):
            pass
        with metrics.time("block"):
            pass
        reading = metrics.timer("block")
        assert reading.calls == 2
        assert reading.seconds >= 0.0
        assert metrics.timer("never") == (0.0, 0)

    def test_gauges_and_record_max(self):
        metrics = Metrics()
        metrics.set_gauge("g", 7)
        metrics.set_gauge("g", 3)
        assert metrics.gauge("g") == 3.0
        metrics.record_max("peak", 10)
        metrics.record_max("peak", 4)
        assert metrics.gauge("peak") == 10.0

    def test_series_ordered(self):
        metrics = Metrics()
        for value in (1, 2, 4, 8):
            metrics.observe("width", value)
        assert metrics.series("width") == [1, 2, 4, 8]

    def test_snapshot_is_a_deep_copy(self):
        metrics = Metrics()
        metrics.increment("n")
        metrics.observe("s", 1)
        snap = metrics.snapshot()
        metrics.increment("n")
        metrics.observe("s", 2)
        assert snap["counters"]["n"] == 1
        assert snap["series"]["s"] == [1]

    def test_merge_snapshot_semantics(self):
        first = Metrics()
        first.increment("calls", 2)
        first.record_max("peak", 5)
        first.observe("w", 1)
        first.add_time("t", 0.5)
        second = Metrics()
        second.increment("calls", 3)
        second.record_max("peak", 9)
        second.observe("w", 2)
        second.add_time("t", 0.25)
        first.merge_snapshot(second.snapshot())
        snap = first.snapshot()
        assert snap["counters"]["calls"] == 5
        assert snap["gauges"]["peak"] == 9
        assert snap["series"]["w"] == [1, 2]
        assert first.timer("t").calls == 2
        assert first.timer("t").seconds == pytest.approx(0.75)

    def test_thread_safety_no_lost_increments(self):
        metrics = Metrics()
        per_thread, threads = 2000, 8

        def worker():
            for _ in range(per_thread):
                metrics.increment("hits")

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert metrics.counter("hits") == per_thread * threads


# ----------------------------------------------------------------------
# MemoryLedger / WallClockDeadline
# ----------------------------------------------------------------------
class TestMemoryLedger:
    def test_charge_release_peak(self):
        ledger = MemoryLedger(1000)
        ledger.charge(400, "a")
        ledger.charge(500, "b")
        assert ledger.held_bytes == 900
        ledger.release(500)
        assert ledger.held_bytes == 400
        assert ledger.peak_bytes == 900

    def test_breach_raises_and_holds_nothing_extra(self):
        ledger = MemoryLedger(1000)
        ledger.charge(800, "base")
        with pytest.raises(MemoryBudgetExceeded, match="exceeds budget"):
            ledger.charge(300, "overflow")
        assert ledger.held_bytes == 800

    def test_release_clamps_at_zero(self):
        ledger = MemoryLedger(100)
        ledger.charge(50, "x")
        ledger.release(80)
        assert ledger.held_bytes == 0

    def test_negative_amounts_rejected(self):
        ledger = MemoryLedger(100)
        with pytest.raises(ValueError):
            ledger.charge(-1)
        with pytest.raises(ValueError):
            ledger.release(-1)


class TestWallClockDeadline:
    def test_fresh_deadline_not_expired(self):
        deadline = WallClockDeadline(60.0)
        assert not deadline.expired
        deadline.check("warm-up")  # no raise

    def test_expired_deadline_raises(self):
        deadline = WallClockDeadline(0.005)
        time.sleep(0.02)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="wall-clock budget"):
            deadline.check("slow step")


# ----------------------------------------------------------------------
# ExecutionContext
# ----------------------------------------------------------------------
class TestExecutionContext:
    def test_default_context_is_pure_metrics(self):
        context = ExecutionContext()
        context.checkpoint("anything")  # no budgets: never raises
        context.charge(10**12)  # no ledger: no-op
        context.metrics.increment("ok")
        assert context.snapshot()["counters"]["ok"] == 1

    def test_start_arms_limits(self):
        context = ExecutionContext.start(
            deadline_seconds=60.0, memory_limit_bytes=1024
        )
        context.charge(512, "factors")
        assert context.memory is not None
        assert context.memory.held_bytes == 512
        assert context.snapshot()["gauges"]["memory.peak_bytes"] == 512

    def test_checkpoint_deadline_carries_metrics(self):
        context = ExecutionContext.start(deadline_seconds=0.005)
        context.metrics.increment("progress", 3)
        time.sleep(0.02)
        with pytest.raises(DeadlineExceeded) as excinfo:
            context.checkpoint("step")
        assert excinfo.value.metrics["counters"]["progress"] == 3

    def test_charge_breach_carries_metrics(self):
        context = ExecutionContext.start(memory_limit_bytes=100)
        context.metrics.increment("progress")
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            context.charge(200, "big block")
        assert excinfo.value.metrics["counters"]["progress"] == 1

    def test_cancellation_token(self):
        token = CancellationToken()
        context = ExecutionContext(cancellation=token)
        context.checkpoint("before")  # fine
        token.cancel()
        with pytest.raises(Cancelled, match="cancelled"):
            context.checkpoint("after")

    def test_budget_exceptions_share_base(self):
        for exc_type in (DeadlineExceeded, MemoryBudgetExceeded, Cancelled):
            assert issubclass(exc_type, BudgetExceeded)


# ----------------------------------------------------------------------
# GSim+ under a context
# ----------------------------------------------------------------------
class TestGSimPlusUnderContext:
    def test_no_context_results_identical(self):
        a, b = _ring(12, seed=1), _ring(8, seed=2)
        plain = gsim_plus(a, b, iterations=6)
        traced = gsim_plus(a, b, iterations=6, context=ExecutionContext())
        np.testing.assert_array_equal(plain.similarity, traced.similarity)
        assert plain.z_frobenius_log == traced.z_frobenius_log

    def test_metrics_recorded_per_iteration(self):
        a, b = _ring(12, seed=1), _ring(8, seed=2)
        context = ExecutionContext()
        gsim_plus(a, b, iterations=6, context=context)
        snap = context.snapshot()
        assert snap["counters"]["gsim_plus.iterations"] == 6
        assert snap["counters"]["gsim_plus.spmm"] == 24
        # widths double (1, 2, 4, 8) then pin at min(n_a, n_b) = 8 dense.
        assert snap["series"]["gsim_plus.width"] == [1, 2, 4, 8, 8, 8, 8]
        assert snap["counters"]["gsim_plus.dense_steps"] == 3

    def test_deadline_armed_mid_run_stops_with_partial_metrics(self):
        a, b = _ring(12, seed=1), _ring(8, seed=2)
        context = ExecutionContext.start(deadline_seconds=0.05)

        def stall(k, width):
            if k == 1:
                time.sleep(0.08)  # burn the budget after one iteration

        solver = GSimPlus(a, b)
        with pytest.raises(DeadlineExceeded, match="GSim\\+ iteration") as excinfo:
            solver.run(iterations=10, progress=stall, context=context)
        partial = excinfo.value.metrics
        assert partial is not None
        assert partial["counters"]["gsim_plus.iterations"] == 1

    def test_memory_budget_converts_dense_fallback_to_structured_oom(self):
        # Factored working sets for n_a=12, n_b=8: (12+8)*width*8 bytes,
        # peaking at 1280 B at width 8.  The dense fallback then needs
        # 2*12*8*8 = 1536 B, so a 1400 B ceiling admits every factored
        # step and rejects exactly the dense hand-over.
        a, b = _ring(12, seed=1), _ring(8, seed=2)
        context = ExecutionContext.start(memory_limit_bytes=1400)
        with pytest.raises(MemoryBudgetExceeded, match="dense rank-cap") as excinfo:
            gsim_plus(a, b, iterations=6, rank_cap="dense", context=context)
        partial = excinfo.value.metrics
        assert partial["counters"]["gsim_plus.iterations"] == 3
        # The breach released the factored charge before raising.
        assert context.memory is not None
        assert context.memory.held_bytes == 0
        # The same run fits in factored form when the cap never engages.
        roomy = ExecutionContext.start(memory_limit_bytes=1400)
        result = gsim_plus(a, b, iterations=3, rank_cap="none", context=roomy)
        assert result.final_width == 8

    def test_cancellation_stops_iteration(self):
        a, b = _ring(12, seed=1), _ring(8, seed=2)
        token = CancellationToken()
        context = ExecutionContext(cancellation=token)

        def cancel_after_two(k, width):
            if k == 2:
                token.cancel()

        with pytest.raises(Cancelled):
            GSimPlus(a, b).run(
                iterations=10, progress=cancel_after_two, context=context
            )
        assert context.metrics.counter("gsim_plus.iterations") == 2

    def test_z_frobenius_log_finite_in_dense_fallback(self):
        # Satellite fix: the dense regime used to report NaN; it must now
        # match the exact ("none") rank-cap value in log-space.
        a, b = _ring(12, seed=1), _ring(8, seed=2)
        dense = gsim_plus(a, b, iterations=8, rank_cap="dense")
        exact = gsim_plus(a, b, iterations=8, rank_cap="none")
        assert dense.used_dense_fallback
        assert np.isfinite(dense.z_frobenius_log)
        np.testing.assert_allclose(
            dense.z_frobenius_log, exact.z_frobenius_log, rtol=1e-9
        )


# ----------------------------------------------------------------------
# BatchQueryEngine under a context
# ----------------------------------------------------------------------
class TestBatchUnderContext:
    def _engine(self) -> BatchQueryEngine:
        rng = np.random.default_rng(7)
        return BatchQueryEngine(
            LowRankFactors(rng.random((40, 4)), rng.random((30, 4)))
        )

    def test_query_many_threaded_counter_aggregation(self):
        engine = self._engine()
        requests = [([i % 40, (i + 1) % 40], [i % 30]) for i in range(64)]
        context = ExecutionContext()
        serial = engine.query_many(requests)
        threaded = engine.query_many(requests, max_workers=4, context=context)
        for expected, got in zip(serial, threaded):
            np.testing.assert_array_equal(expected, got)
        snap = context.snapshot()
        assert snap["counters"]["batch.blocks_served"] == len(requests)
        assert snap["counters"]["batch.cells_served"] == sum(
            len(qa) * len(qb) for qa, qb in requests
        )

    def test_stream_rows_charges_blocks_and_releases(self):
        engine = self._engine()
        context = ExecutionContext.start(memory_limit_bytes=16 * 30 * 8)
        blocks = list(engine.stream_rows(block_rows=16, context=context))
        assert sum(b.shape[0] for _, b in blocks) == 40
        assert context.memory is not None
        assert context.memory.held_bytes == 0
        assert context.metrics.counter("batch.rows_streamed") == 40

    def test_stream_rows_deadline_checkpoint(self):
        engine = self._engine()
        context = ExecutionContext.start(deadline_seconds=0.005)
        stream = engine.stream_rows(block_rows=16, context=context)
        next(stream)
        time.sleep(0.02)
        with pytest.raises(DeadlineExceeded, match="stream_rows block"):
            next(stream)


# ----------------------------------------------------------------------
# Guards façade and policy objects
# ----------------------------------------------------------------------
class TestGuardsFacade:
    def test_guard_classes_are_the_runtime_classes(self):
        assert guards.Deadline is Deadline
        assert guards.MemoryBudget is MemoryBudget
        assert guards.WallClockDeadline is WallClockDeadline
        assert guards.DeadlineExceeded is DeadlineExceeded
        assert guards.MemoryBudgetExceeded is MemoryBudgetExceeded

    def test_policies_arm_live_enforcers(self):
        assert isinstance(Deadline(limit_seconds=5.0).arm(), WallClockDeadline)
        ledger = MemoryBudget(limit_bytes=1024).ledger()
        assert isinstance(ledger, MemoryLedger)
        assert ledger.limit_bytes == 1024


# ----------------------------------------------------------------------
# resolve_node_index (satellite helper)
# ----------------------------------------------------------------------
class TestResolveNodeIndex:
    def test_passthrough(self):
        out = resolve_node_index([2, 0, 1], 3, "queries")
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [2, 0, 1])

    def test_none_resolves_to_all_when_allowed(self):
        np.testing.assert_array_equal(
            resolve_node_index(None, 4, "queries", full_if_none=True),
            np.arange(4),
        )
        with pytest.raises(ValueError, match="must not be None"):
            resolve_node_index(None, 4, "queries")

    def test_bounds(self):
        with pytest.raises(IndexError, match="out of range"):
            resolve_node_index([0, 3], 3, "queries")
        with pytest.raises(IndexError, match="out of range"):
            resolve_node_index([-1], 3, "queries")

    def test_bounds_error_type_override(self):
        with pytest.raises(ValueError, match="out of range"):
            resolve_node_index([5], 3, "nodes", bounds_error=ValueError)

    def test_duplicates(self):
        with pytest.raises(ValueError, match="contains duplicates"):
            resolve_node_index([1, 1], 3, "queries")
        np.testing.assert_array_equal(
            resolve_node_index([1, 1], 3, "queries", allow_duplicates=True),
            [1, 1],
        )

    def test_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            resolve_node_index([], 3, "queries")
        assert resolve_node_index([], 3, "queries", allow_empty=True).size == 0

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            resolve_node_index([[0, 1]], 3, "queries")
