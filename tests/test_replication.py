"""Unit tests for multi-seed replication summaries."""

import pytest

from repro.experiments.guards import MemoryBudget
from repro.experiments.replication import (
    CellSummary,
    replicate_cell,
    summarize_records,
)
from repro.experiments.runner import Outcome, RunRecord


def _ok(seconds, memory=1000.0):
    return RunRecord(
        algorithm="GSim+", dataset="HP", outcome=Outcome.OK,
        seconds=seconds, memory_bytes=memory,
    )


def _oom():
    return RunRecord(algorithm="GSim+", dataset="HP", outcome=Outcome.OOM)


class TestSummarize:
    def test_mean_and_std(self):
        summary = summarize_records([_ok(1.0), _ok(2.0), _ok(3.0)])
        assert summary.ok_count == 3
        assert summary.mean_seconds == pytest.approx(2.0)
        assert summary.std_seconds == pytest.approx(1.0)
        assert summary.robust

    def test_single_run_zero_std(self):
        summary = summarize_records([_ok(1.5)])
        assert summary.std_seconds == 0.0

    def test_mixed_outcomes_not_robust(self):
        summary = summarize_records([_ok(1.0), _oom()])
        assert not summary.robust
        assert summary.outcome_counts == {"ok": 1, "oom": 1}

    def test_all_failures_still_robust(self):
        summary = summarize_records([_oom(), _oom()])
        assert summary.robust
        assert summary.mean_seconds is None
        assert summary.relative_std() is None

    def test_relative_std(self):
        summary = summarize_records([_ok(1.0), _ok(3.0)])
        assert summary.relative_std() == pytest.approx(
            summary.std_seconds / summary.mean_seconds
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no records"):
            summarize_records([])

    def test_mixed_cells_rejected(self):
        other = RunRecord(algorithm="GSim", dataset="HP", outcome=Outcome.OK,
                          seconds=1.0, memory_bytes=1.0)
        with pytest.raises(ValueError, match="one cell"):
            summarize_records([_ok(1.0), other])


class TestReplicateCell:
    def test_gsim_plus_replicates_ok(self):
        summary = replicate_cell(
            "GSim+", "HP", scale="tiny", iterations=4, query_size=10,
            seeds=(0, 1, 2),
        )
        assert summary.replicates == 3
        assert summary.ok_count == 3
        assert summary.robust
        assert summary.mean_seconds > 0

    def test_dense_baseline_robustly_oom_under_tight_budget(self):
        summary = replicate_cell(
            "GSim", "HP", scale="tiny", iterations=4, query_size=10,
            seeds=(0, 1, 2), memory_budget=MemoryBudget(limit_bytes=1000),
        )
        assert summary.ok_count == 0
        assert summary.outcome_counts == {"oom": 3}
        assert summary.robust

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            replicate_cell("Oracle", "HP")

    def test_summary_fields(self):
        summary = replicate_cell(
            "GSVD", "EE", scale="tiny", iterations=3, query_size=8, seeds=(0, 1)
        )
        assert isinstance(summary, CellSummary)
        assert summary.algorithm == "GSVD"
        assert summary.dataset == "EE"
        assert summary.mean_memory_bytes is not None
