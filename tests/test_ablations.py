"""Unit tests for the design-choice ablations."""

import pytest

from repro.experiments.ablations import (
    ablation_gsvd_rank,
    ablation_normalization,
    ablation_query_extraction,
    ablation_rank_cap,
    ablation_rolesim_matching,
)
from repro.graphs import erdos_renyi_graph, random_node_sample


@pytest.fixture
def pair():
    graph_a = erdos_renyi_graph(30, 120, seed=1)
    graph_b = random_node_sample(graph_a, 12, seed=2)
    return graph_a, graph_b


class TestRankCapAblation:
    def test_three_variants(self, pair):
        rows = ablation_rank_cap(*pair, iterations=8)
        assert [r.variant for r in rows] == ["dense", "qr-compress", "none"]

    def test_all_variants_exact(self, pair):
        rows = ablation_rank_cap(*pair, iterations=8)
        for row in rows[1:]:
            drift = float(row.detail.split("drift=")[1])
            assert drift < 1e-8


class TestNormalizationAblation:
    def test_conventions_agree_in_direction(self, pair):
        rows = ablation_normalization(*pair, iterations=6)
        agreement = [r for r in rows if r.variant == "agreement"][0]
        cosine = float(agreement.detail.split("cosine=")[1])
        assert cosine > 0.999  # same matrix up to positive scale


class TestQueryExtractionAblation:
    def test_results_agree(self, pair):
        rows = ablation_query_extraction(*pair, iterations=6, query_size=8)
        late = [r for r in rows if r.variant == "factored-late-extraction"][0]
        drift = float(late.detail.split("drift=")[1])
        assert drift < 1e-8

    def test_both_variants_measured(self, pair):
        rows = ablation_query_extraction(*pair, iterations=6, query_size=8)
        assert all(r.seconds >= 0 for r in rows)
        assert len(rows) == 2


class TestGSVDRankAblation:
    def test_error_nonincreasing_in_rank(self, pair):
        rows = ablation_gsvd_rank(*pair, iterations=8, ranks=(2, 6, 12))
        errors = [float(r.detail.split("err=")[1]) for r in rows]
        assert errors[-1] <= errors[0] + 1e-9


class TestRoleSimMatchingAblation:
    def test_variants_and_gap(self, pair):
        graph, _ = pair
        rows = ablation_rolesim_matching(graph, iterations=2)
        names = [r.variant for r in rows]
        assert names == ["greedy", "exact", "max-entry-gap"]
        gap = float(rows[-1].detail)
        assert 0.0 <= gap < 0.5


class TestSamplingAblation:
    def test_three_strategies(self, pair):
        from repro.experiments.ablations import ablation_sampling_strategy

        graph, _ = pair
        rows = ablation_sampling_strategy(graph, sample_size=10, iterations=4)
        assert [r.variant for r in rows] == ["random-node", "bfs", "forest-fire"]
        assert all(r.seconds >= 0 for r in rows)

    def test_structure_preserving_samplers_keep_more_edges(self):
        from repro.experiments.ablations import ablation_sampling_strategy
        from repro.graphs import erdos_renyi_graph

        graph = erdos_renyi_graph(200, 1600, seed=3)
        rows = ablation_sampling_strategy(graph, sample_size=40, iterations=4)
        edges = {r.variant: int(r.detail.split("=")[1]) for r in rows}
        # BFS-style samples retain at least as many edges as uniform ones
        # on a connected dense graph.
        assert edges["bfs"] >= edges["random-node"]
