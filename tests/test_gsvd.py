"""Unit tests for the Cason et al. GSVD baseline."""

import numpy as np
import pytest

from repro import gsim, gsvd
from repro.analysis import frobenius_error


class TestGSVDMechanics:
    def test_factor_shapes(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsvd(graph_a, graph_b, iterations=5, rank=4)
        assert result.u.shape == (graph_a.num_nodes, 4)
        assert result.v.shape == (graph_b.num_nodes, 4)
        assert result.sigma.shape == (4,)

    def test_factors_orthonormal(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsvd(graph_a, graph_b, iterations=5, rank=4)
        np.testing.assert_allclose(result.u.T @ result.u, np.eye(4), atol=1e-8)
        np.testing.assert_allclose(result.v.T @ result.v, np.eye(4), atol=1e-8)

    def test_sigma_unit_norm(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsvd(graph_a, graph_b, iterations=5, rank=4)
        assert np.linalg.norm(result.sigma) == pytest.approx(1.0)

    def test_similarity_unit_frobenius(self, random_pair):
        graph_a, graph_b = random_pair
        matrix = gsvd(graph_a, graph_b, iterations=5, rank=4).similarity_matrix()
        assert np.linalg.norm(matrix) == pytest.approx(1.0)

    def test_rank_clamped_to_graph_size(self, random_pair):
        graph_a, graph_b = random_pair  # n_b = 15
        result = gsvd(graph_a, graph_b, iterations=3, rank=100)
        assert result.rank == 15

    def test_rank_validated(self, random_pair):
        with pytest.raises(ValueError):
            gsvd(*random_pair, iterations=2, rank=0)

    def test_query_block_matches_matrix_slice(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsvd(graph_a, graph_b, iterations=4, rank=5)
        block = result.query_block([0, 2], [1, 3])
        full = result.similarity_matrix()
        np.testing.assert_allclose(block, full[np.ix_([0, 2], [1, 3])], atol=1e-12)

    def test_history_recorded(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsvd(graph_a, graph_b, iterations=4, rank=3, keep_history=True)
        assert len(result.iterates) == 4

    def test_zero_iterations_is_rank1_ones(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsvd(graph_a, graph_b, iterations=0, rank=3)
        matrix = result.similarity_matrix()
        # S_0 normalised: constant matrix.
        assert np.allclose(matrix, matrix[0, 0])


class TestGSVDAccuracy:
    """The approximation behaviour §5.2.3 measures."""

    def test_approximates_gsim(self, random_pair):
        graph_a, graph_b = random_pair
        reference = gsim(graph_a, graph_b, iterations=6).similarity
        approx = gsvd(graph_a, graph_b, iterations=6, rank=10).similarity_matrix()
        assert frobenius_error(approx, reference) < 0.05

    def test_error_decreases_with_rank(self, random_pair):
        graph_a, graph_b = random_pair
        reference = gsim(graph_a, graph_b, iterations=6).similarity
        errors = [
            frobenius_error(
                gsvd(graph_a, graph_b, iterations=6, rank=r).similarity_matrix(),
                reference,
            )
            for r in (2, 5, 12)
        ]
        assert errors[2] <= errors[0] + 1e-12

    def test_full_rank_exact(self, random_pair):
        graph_a, graph_b = random_pair  # min side 15
        reference = gsim(graph_a, graph_b, iterations=6).similarity
        approx = gsvd(graph_a, graph_b, iterations=6, rank=15).similarity_matrix()
        assert frobenius_error(approx, reference) < 1e-8

    def test_fixed_small_rank_error_floor(self, random_pair):
        # The paper's point: a small fixed r keeps a persistent error even
        # as k grows, unlike GSim+ which is exact.
        graph_a, graph_b = random_pair
        reference = gsim(graph_a, graph_b, iterations=12).similarity
        approx = gsvd(graph_a, graph_b, iterations=12, rank=2).similarity_matrix()
        assert frobenius_error(approx, reference) > 1e-8
