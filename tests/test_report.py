"""Unit tests for the plain-text report renderer."""

import pytest

from repro.experiments import render_records, render_table
from repro.experiments.runner import Outcome, RunRecord


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbb"], [["11", "2"]])
        lines = text.splitlines()
        assert lines[0] == "a  | bbb"
        assert lines[2] == "11 | 2  "

    def test_title(self):
        text = render_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_checked(self):
        with pytest.raises(ValueError, match="columns"):
            render_table(["a", "b"], [["only-one"]])

    def test_non_string_cells_coerced(self):
        text = render_table(["n"], [[42]])
        assert "42" in text


def _record(algorithm, dataset, outcome=Outcome.OK, seconds=1.0, memory=1024.0, **params):
    return RunRecord(
        algorithm=algorithm,
        dataset=dataset,
        outcome=outcome,
        seconds=seconds if outcome is Outcome.OK else None,
        memory_bytes=memory if outcome is Outcome.OK else None,
        params=params,
    )


class TestRenderRecords:
    def test_pivot_by_dataset(self):
        records = [
            _record("GSim+", "HP", seconds=0.5),
            _record("GSim+", "EE", seconds=1.5),
            _record("GSim", "HP", seconds=2.0),
        ]
        text = render_records(records, metric="time")
        assert "GSim+" in text and "HP" in text and "EE" in text
        assert "500.0ms" in text
        assert "2.00s" in text

    def test_missing_cells_dashed(self):
        records = [
            _record("GSim+", "HP"),
            _record("GSim", "EE"),
        ]
        text = render_records(records)
        assert "-" in text

    def test_oom_label(self):
        records = [_record("GSim", "WT", outcome=Outcome.OOM)]
        assert "OOM" in render_records(records)

    def test_timeout_label(self):
        records = [_record("NED", "IT", outcome=Outcome.TIMEOUT)]
        assert ">1day" in render_records(records)

    def test_memory_metric(self):
        records = [_record("GSim+", "HP", memory=2048.0)]
        text = render_records(records, metric="memory")
        assert "2.0 KiB" in text

    def test_param_column_key(self):
        records = [
            _record("GSim+", "EE", k=2),
            _record("GSim+", "EE", k=4),
        ]
        text = render_records(records, column_key="k")
        header = text.splitlines()[0]
        assert "2" in header and "4" in header

    def test_microsecond_formatting(self):
        records = [_record("GSim+", "HP", seconds=5e-6)]
        assert "us" in render_records(records)

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            render_records([_record("GSim+", "HP")], metric="joy")
