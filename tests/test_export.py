"""Unit tests for experiment record export (CSV/JSON)."""

import csv
import io
import json

from repro.experiments.export import (
    records_to_csv,
    records_to_json,
    write_csv,
    write_json,
)
from repro.experiments.runner import Outcome, RunRecord


def _records():
    return [
        RunRecord(
            algorithm="GSim+",
            dataset="HP",
            outcome=Outcome.OK,
            seconds=0.123,
            memory_bytes=4096.0,
            predicted_seconds=0.2,
            predicted_bytes=5000.0,
            params={"n_a": 300, "n_b": 100, "k": 10, "q_a": 20, "q_b": 20,
                    "m_a": 3000, "m_b": 400},
        ),
        RunRecord(
            algorithm="GSim",
            dataset="WT",
            outcome=Outcome.OOM,
            note="predicted 360 MiB exceeds budget 256 MiB",
            params={"k": 10},
        ),
    ]


class TestCSV:
    def test_round_trip_fields(self):
        buffer = io.StringIO()
        records_to_csv(_records(), buffer)
        rows = list(csv.DictReader(io.StringIO(buffer.getvalue())))
        assert len(rows) == 2
        assert rows[0]["algorithm"] == "GSim+"
        assert rows[0]["seconds"] == "0.123"
        assert rows[0]["n_a"] == "300"

    def test_failure_cells_keep_outcome(self):
        buffer = io.StringIO()
        records_to_csv(_records(), buffer)
        rows = list(csv.DictReader(io.StringIO(buffer.getvalue())))
        assert rows[1]["outcome"] == "oom"
        assert rows[1]["seconds"] == ""
        assert "exceeds budget" in rows[1]["note"]

    def test_write_csv_file(self, tmp_path):
        path = tmp_path / "records.csv"
        write_csv(_records(), path)
        assert path.read_text().startswith("algorithm,")


class TestJSON:
    def test_valid_json_with_all_fields(self):
        data = json.loads(records_to_json(_records()))
        assert len(data) == 2
        assert data[0]["algorithm"] == "GSim+"
        assert data[0]["memory_bytes"] == 4096.0
        assert data[1]["outcome"] == "oom"
        assert data[1]["seconds"] is None

    def test_missing_params_are_null(self):
        data = json.loads(records_to_json(_records()))
        assert data[1]["n_a"] is None

    def test_write_json_file(self, tmp_path):
        path = tmp_path / "records.json"
        write_json(_records(), path)
        assert json.loads(path.read_text())[0]["dataset"] == "HP"
