"""Unit tests for repro.graphs.sampling."""

import pytest

from repro.graphs import (
    Graph,
    bfs_sample,
    erdos_renyi_graph,
    forest_fire_sample,
    random_node_sample,
)


@pytest.fixture
def base_graph() -> Graph:
    return erdos_renyi_graph(100, 500, seed=42)


class TestRandomNodeSample:
    def test_size(self, base_graph):
        sub = random_node_sample(base_graph, 30, seed=0)
        assert sub.num_nodes == 30

    def test_deterministic(self, base_graph):
        a = random_node_sample(base_graph, 30, seed=1)
        b = random_node_sample(base_graph, 30, seed=1)
        assert a == b

    def test_induced_edges_only(self, base_graph):
        # A 1-node sample can never have edges (no self loops in base).
        sub = random_node_sample(base_graph, 1, seed=0)
        assert sub.num_edges == 0

    def test_whole_graph_sample(self, base_graph):
        sub = random_node_sample(base_graph, base_graph.num_nodes, seed=0)
        assert sub.num_edges == base_graph.num_edges

    def test_oversample_rejected(self, base_graph):
        with pytest.raises(ValueError, match="cannot sample"):
            random_node_sample(base_graph, 101, seed=0)

    def test_zero_rejected(self, base_graph):
        with pytest.raises(ValueError):
            random_node_sample(base_graph, 0, seed=0)


class TestBFSSample:
    def test_size(self, base_graph):
        assert bfs_sample(base_graph, 25, seed=0).num_nodes == 25

    def test_start_node_respected(self, base_graph):
        sub = bfs_sample(base_graph, 10, seed=0, start=5)
        assert sub.num_nodes == 10

    def test_start_out_of_range(self, base_graph):
        with pytest.raises(ValueError, match="out of range"):
            bfs_sample(base_graph, 5, start=1000)

    def test_connected_region_denser_than_uniform(self):
        # Two disjoint cliques: BFS from inside one stays inside it.
        edges = [(i, j) for i in range(10) for j in range(10) if i != j]
        edges += [(i, j) for i in range(10, 20) for j in range(10, 20) if i != j]
        g = Graph.from_edges(20, edges)
        sub = bfs_sample(g, 10, seed=0, start=0)
        # All 10 sampled nodes from the first clique -> full clique edges.
        assert sub.num_edges == 90

    def test_restarts_cover_disconnected_graphs(self):
        g = Graph.empty(50)  # no edges at all: needs a restart per node
        sub = bfs_sample(g, 20, seed=1)
        assert sub.num_nodes == 20


class TestForestFire:
    def test_size(self, base_graph):
        assert forest_fire_sample(base_graph, 30, seed=0).num_nodes == 30

    def test_deterministic(self, base_graph):
        a = forest_fire_sample(base_graph, 30, seed=3)
        b = forest_fire_sample(base_graph, 30, seed=3)
        assert a == b

    def test_probability_validated(self, base_graph):
        with pytest.raises(ValueError, match="forward_probability"):
            forest_fire_sample(base_graph, 5, forward_probability=1.0)

    def test_survives_dead_ends(self):
        g = Graph.from_edges(30, [(0, 1)])  # almost no edges to burn along
        sub = forest_fire_sample(g, 10, seed=0)
        assert sub.num_nodes == 10
