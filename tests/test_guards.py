"""Unit tests for the experiment resource guards."""

import pytest

from repro.experiments import (
    Deadline,
    DeadlineExceeded,
    MemoryBudget,
    MemoryBudgetExceeded,
)
from repro.utils.deadline import WallClockDeadline


class TestMemoryBudget:
    def test_within_budget_passes(self):
        MemoryBudget(1000).check(999, "x")  # no raise

    def test_over_budget_raises(self):
        with pytest.raises(MemoryBudgetExceeded, match="exceeds budget"):
            MemoryBudget(1000).check(1001, "x")

    def test_message_names_algorithm(self):
        with pytest.raises(MemoryBudgetExceeded, match="GSim"):
            MemoryBudget(10).check(100, "GSim")

    def test_allows(self):
        budget = MemoryBudget(1000)
        assert budget.allows(500)
        assert not budget.allows(5000)

    def test_default_budget_calibration(self):
        # 256 MiB default: the small-profile EE dense S (~8000 x 1000 x 8 x 3
        # working set = 192 MB) fits, the WT one (~15000 x 1000 x 8 x 3 =
        # 360 MB) does not — the paper's survival pattern.
        budget = MemoryBudget()
        assert budget.allows(8_000 * 1_000 * 8 * 3)
        assert not budget.allows(15_000 * 1_000 * 8 * 3)


class TestDeadline:
    def test_predictive_gate_uses_factor(self):
        deadline = Deadline(limit_seconds=10.0, predictive_factor=30.0)
        deadline.check_predicted(299.0, "x")  # under 300: attempted
        with pytest.raises(DeadlineExceeded, match="exceeds"):
            deadline.check_predicted(301.0, "x")

    def test_allows(self):
        deadline = Deadline(limit_seconds=1.0, predictive_factor=10.0)
        assert deadline.allows(9.0)
        assert not deadline.allows(11.0)

    def test_arm_returns_wall_clock(self):
        armed = Deadline(limit_seconds=5.0).arm()
        assert isinstance(armed, WallClockDeadline)
        assert armed.limit_seconds == 5.0

    def test_default_is_twenty_seconds(self):
        assert Deadline().limit_seconds == 20.0
