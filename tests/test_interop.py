"""Unit tests for NetworkX interoperability."""

import networkx as nx
import numpy as np

from repro.graphs import Graph
from repro.graphs.interop import from_networkx, to_networkx


class TestFromNetworkX:
    def test_directed_edges(self):
        nx_graph = nx.DiGraph([(0, 1), (1, 2)])
        graph, labels = from_networkx(nx_graph)
        assert graph.num_nodes == 3
        assert graph.has_edge(labels[0], labels[1])
        assert not graph.has_edge(labels[1], labels[0])

    def test_undirected_symmetrised(self):
        nx_graph = nx.Graph([(0, 1)])
        graph, labels = from_networkx(nx_graph)
        assert graph.has_edge(labels[0], labels[1])
        assert graph.has_edge(labels[1], labels[0])

    def test_weights_preserved(self):
        nx_graph = nx.DiGraph()
        nx_graph.add_edge("a", "b", weight=2.5)
        graph, labels = from_networkx(nx_graph)
        assert graph.adjacency[labels["a"], labels["b"]] == 2.5

    def test_custom_weight_attribute(self):
        nx_graph = nx.DiGraph()
        nx_graph.add_edge(0, 1, cost=4.0)
        graph, labels = from_networkx(nx_graph, weight_attribute="cost")
        assert graph.adjacency[labels[0], labels[1]] == 4.0

    def test_missing_weight_defaults_to_one(self):
        nx_graph = nx.DiGraph([(0, 1)])
        graph, labels = from_networkx(nx_graph)
        assert graph.adjacency[labels[0], labels[1]] == 1.0

    def test_arbitrary_labels(self):
        nx_graph = nx.DiGraph([("alice", "bob"), ("bob", ("tuple", "label"))])
        graph, labels = from_networkx(nx_graph)
        assert graph.num_nodes == 3
        assert set(labels) == {"alice", "bob", ("tuple", "label")}

    def test_isolated_nodes_kept(self):
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from([0, 1, 2])
        graph, _ = from_networkx(nx_graph)
        assert graph.num_nodes == 3
        assert graph.num_edges == 0

    def test_name_from_nx(self):
        nx_graph = nx.DiGraph(name="web")
        nx_graph.add_edge(0, 1)
        graph, _ = from_networkx(nx_graph)
        assert graph.name == "web"


class TestToNetworkX:
    def test_round_trip(self, random_pair):
        graph, _ = random_pair
        nx_graph = to_networkx(graph)
        back, labels = from_networkx(nx_graph)
        # Labels are already 0..n-1, so the round trip is exact.
        assert back == graph

    def test_weights_carried(self):
        graph = Graph.from_edges(2, [(0, 1, 3.5)])
        nx_graph = to_networkx(graph)
        assert nx_graph[0][1]["weight"] == 3.5

    def test_isolated_nodes_carried(self):
        graph = Graph.empty(4)
        nx_graph = to_networkx(graph)
        assert nx_graph.number_of_nodes() == 4

    def test_directedness(self, path_graph):
        nx_graph = to_networkx(path_graph)
        assert nx_graph.is_directed()
        assert nx_graph.has_edge(0, 1)
        assert not nx_graph.has_edge(1, 0)


class TestEndToEnd:
    def test_similarity_on_converted_graphs(self):
        # The canonical NetworkX workflow: build there, score here.
        from repro import gsim_plus

        nx_a = nx.karate_club_graph()
        graph_a, _ = from_networkx(nx_a)
        nx_b = nx.path_graph(5, create_using=nx.DiGraph)
        graph_b, _ = from_networkx(nx_b)
        result = gsim_plus(graph_a, graph_b, iterations=6)
        assert result.similarity.shape == (34, 5)
        assert np.isfinite(result.similarity).all()
