"""Unit tests for the GSim+ core algorithm (Theorem 3.1 and Algorithm 1)."""

import numpy as np
import pytest

from repro import Graph, GSimPlus, gsim, gsim_plus
from repro.analysis import frobenius_error
from repro.graphs import erdos_renyi_graph


class TestExactEquivalence:
    """Theorem 3.1: GSim+ scores equal GSim scores at every iteration."""

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 6, 10])
    def test_matches_gsim_every_iteration(self, random_pair, k):
        graph_a, graph_b = random_pair
        ours = gsim_plus(graph_a, graph_b, iterations=k).similarity
        reference = gsim(graph_a, graph_b, iterations=k).similarity
        assert frobenius_error(ours, reference) < 1e-10

    @pytest.mark.parametrize("rank_cap", ["dense", "qr-compress", "none"])
    def test_rank_cap_modes_agree(self, random_pair, rank_cap):
        graph_a, graph_b = random_pair
        # Deep enough that 2^k passes min(n_A, n_B) = 15.
        ours = gsim_plus(graph_a, graph_b, iterations=8, rank_cap=rank_cap)
        reference = gsim(graph_a, graph_b, iterations=8).similarity
        assert frobenius_error(ours.similarity, reference) < 1e-9

    def test_dense_fallback_flag(self, random_pair):
        graph_a, graph_b = random_pair  # min(n_A, n_B) = 15
        shallow = gsim_plus(graph_a, graph_b, iterations=3)
        deep = gsim_plus(graph_a, graph_b, iterations=8)
        assert not shallow.used_dense_fallback
        assert deep.used_dense_fallback

    def test_qr_compress_caps_width(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsim_plus(graph_a, graph_b, iterations=8, rank_cap="qr-compress")
        assert result.final_width <= min(graph_a.num_nodes, graph_b.num_nodes)
        assert not result.used_dense_fallback

    def test_uncapped_width_doubles(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsim_plus(graph_a, graph_b, iterations=3, rank_cap="none")
        assert result.final_width == 8


class TestAlgorithmMechanics:
    def test_width_doubles_each_iteration(self, random_pair):
        graph_a, graph_b = random_pair
        solver = GSimPlus(graph_a, graph_b, rank_cap="none")
        widths = [
            state.factors.width for state in solver.iterate(3) if state.factors
        ]
        assert widths == [1, 2, 4, 8]

    def test_iteration_zero_is_all_ones(self, random_pair):
        graph_a, graph_b = random_pair
        solver = GSimPlus(graph_a, graph_b)
        first = next(iter(solver.iterate(0)))
        dense = first.factors.materialize()
        np.testing.assert_array_equal(
            dense, np.ones((graph_a.num_nodes, graph_b.num_nodes))
        )

    def test_zero_iterations_returns_flat_similarity(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsim_plus(graph_a, graph_b, iterations=0)
        # S_0 = all-ones normalised: every entry identical.
        assert np.allclose(result.similarity, result.similarity[0, 0])

    def test_similarity_unit_norm(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsim_plus(graph_a, graph_b, iterations=5)
        assert np.linalg.norm(result.similarity) == pytest.approx(1.0)

    def test_z_frobenius_log_finite_in_factored_regime(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsim_plus(graph_a, graph_b, iterations=3)
        assert np.isfinite(result.z_frobenius_log)

    def test_no_overflow_at_many_iterations(self, random_pair):
        graph_a, graph_b = random_pair
        # Without the log-scale rescaling this would overflow float64.
        result = gsim_plus(graph_a, graph_b, iterations=60)
        assert np.isfinite(result.similarity).all()

    def test_iterations_validated(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(ValueError):
            gsim_plus(graph_a, graph_b, iterations=-1)


class TestQueries:
    def test_query_block_matches_full_matrix_slice(self, random_pair):
        graph_a, graph_b = random_pair
        queries_a = [0, 3, 7]
        queries_b = [1, 4]
        block = gsim_plus(
            graph_a,
            graph_b,
            iterations=4,
            queries_a=queries_a,
            queries_b=queries_b,
            normalization="global",
        ).similarity
        full = gsim_plus(graph_a, graph_b, iterations=4).similarity
        np.testing.assert_allclose(
            block, full[np.ix_(queries_a, queries_b)], atol=1e-12
        )

    def test_block_normalization_unit_norm(self, random_pair):
        graph_a, graph_b = random_pair
        block = gsim_plus(
            graph_a, graph_b, iterations=4, queries_a=[0, 1], queries_b=[2, 3]
        ).similarity
        assert np.linalg.norm(block) == pytest.approx(1.0)

    def test_block_and_global_agree_on_full_queries(self, random_pair):
        graph_a, graph_b = random_pair
        all_a = list(range(graph_a.num_nodes))
        all_b = list(range(graph_b.num_nodes))
        block = gsim_plus(
            graph_a, graph_b, iterations=4, queries_a=all_a, queries_b=all_b,
            normalization="block",
        ).similarity
        global_ = gsim_plus(
            graph_a, graph_b, iterations=4, queries_a=all_a, queries_b=all_b,
            normalization="global",
        ).similarity
        np.testing.assert_allclose(block, global_, atol=1e-12)

    def test_duplicate_queries_rejected(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(ValueError, match="duplicate"):
            gsim_plus(graph_a, graph_b, iterations=2, queries_a=[0, 0])

    def test_out_of_range_queries_rejected(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(IndexError):
            gsim_plus(graph_a, graph_b, iterations=2, queries_b=[999])

    def test_empty_queries_rejected(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(ValueError, match="non-empty"):
            gsim_plus(graph_a, graph_b, iterations=2, queries_a=[])

    def test_single_pair_query(self, random_pair):
        graph_a, graph_b = random_pair
        block = gsim_plus(
            graph_a, graph_b, iterations=4, queries_a=[2], queries_b=[3]
        ).similarity
        assert block.shape == (1, 1)


class TestValidation:
    def test_bad_rank_cap(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(ValueError, match="rank_cap"):
            GSimPlus(graph_a, graph_b, rank_cap="nope")

    def test_bad_normalization(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(ValueError, match="normalization"):
            GSimPlus(graph_a, graph_b, normalization="nope")

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            GSimPlus(Graph.empty(0), Graph.empty(3))

    def test_edgeless_graph_collapses_cleanly(self):
        # With no edges, Z_1 = 0: the solver must raise, not emit NaNs.
        a = Graph.empty(3)
        b = Graph.empty(2)
        with pytest.raises(ZeroDivisionError):
            gsim_plus(a, b, iterations=2)


class TestStructuralSanity:
    def test_isomorphic_positions_score_equal(self):
        # Two identical directed cycles: by symmetry every pair scores the
        # same (all nodes play identical roles).
        cycle = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        result = gsim_plus(cycle, cycle, iterations=10)
        assert np.allclose(result.similarity, result.similarity[0, 0])

    def test_hub_matches_hub(self):
        # Star vs star: the two centres should be each other's best match.
        star_a = Graph.from_edges(6, [(0, i) for i in range(1, 6)])
        star_b = Graph.from_edges(4, [(0, i) for i in range(1, 4)])
        sim = gsim_plus(star_a, star_b, iterations=10).similarity
        assert sim[0, 0] == sim.max()

    def test_self_similarity_matrix_symmetric_for_symmetric_graph(self):
        # Undirected (symmetric) graph vs itself: S should be symmetric.
        g = Graph.from_edges(
            4, [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]
        )
        sim = gsim_plus(g, g, iterations=8).similarity
        np.testing.assert_allclose(sim, sim.T, atol=1e-12)

    def test_larger_graph_orientation(self):
        # The shape of the output is (n_A, n_B), not transposed.
        a = erdos_renyi_graph(9, 20, seed=0)
        b = erdos_renyi_graph(5, 8, seed=1)
        assert gsim_plus(a, b, iterations=3).similarity.shape == (9, 5)


class TestProgressCallback:
    def test_called_once_per_iteration(self, random_pair):
        graph_a, graph_b = random_pair
        calls = []
        solver = GSimPlus(graph_a, graph_b)
        solver.run(4, progress=lambda k, width: calls.append((k, width)))
        assert [k for k, _ in calls] == [1, 2, 3, 4]

    def test_reports_doubling_widths(self, random_pair):
        graph_a, graph_b = random_pair
        widths = []
        solver = GSimPlus(graph_a, graph_b, rank_cap="none")
        solver.run(3, progress=lambda k, width: widths.append(width))
        assert widths == [2, 4, 8]

    def test_reports_capped_width_in_dense_regime(self, random_pair):
        graph_a, graph_b = random_pair  # min side 15
        widths = []
        solver = GSimPlus(graph_a, graph_b)
        solver.run(6, progress=lambda k, width: widths.append(width))
        assert widths[-1] == 15  # dense fallback reports min(n_A, n_B)
