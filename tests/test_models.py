"""Unit tests for the related similarity models (SimRank, CoSimRank,
VertexSim) from the paper's introduction."""

import numpy as np
import pytest

from repro import Graph
from repro.models import cosimrank, cosimrank_cross, simrank, vertexsim


class TestSimRank:
    def test_diagonal_is_one(self, random_pair):
        graph, _ = random_pair
        s = simrank(graph, iterations=4)
        np.testing.assert_array_equal(np.diag(s), 1.0)

    def test_symmetric(self, random_pair):
        graph, _ = random_pair
        s = simrank(graph, iterations=4)
        np.testing.assert_allclose(s, s.T, atol=1e-12)

    def test_common_parent_similar(self):
        # 0 and 1 both receive from 2: strong SimRank signal.
        g = Graph.from_edges(3, [(2, 0), (2, 1)])
        s = simrank(g, iterations=5, damping=0.8)
        assert s[0, 1] == pytest.approx(0.8)

    def test_disconnected_components_score_zero(self):
        # The paper's introduction: "due to the lack of connectivity ...
        # SimRank would perceive these nodes as completely dissimilar".
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        s = simrank(g, iterations=6)
        assert s[1, 3] == 0.0

    def test_no_in_neighbours_zero(self):
        g = Graph.from_edges(3, [(0, 1), (0, 2)])
        s = simrank(g, iterations=4)
        # Node 0 has no in-neighbours: similarity with anyone else is 0.
        assert s[0, 1] == 0.0

    def test_range(self, random_pair):
        graph, _ = random_pair
        s = simrank(graph, iterations=5)
        assert (s >= -1e-12).all() and (s <= 1.0 + 1e-12).all()

    def test_zero_iterations_identity(self, path_graph):
        np.testing.assert_array_equal(simrank(path_graph, iterations=0), np.eye(4))

    def test_damping_validated(self, path_graph):
        with pytest.raises(ValueError):
            simrank(path_graph, damping=1.5)

    def test_empty_graph(self):
        assert simrank(Graph.empty(0)).shape == (0, 0)


class TestCoSimRank:
    def test_single_graph_diagonal_largest(self, random_pair):
        graph, _ = random_pair
        s = cosimrank(graph, iterations=5)
        # Each node's best match is itself (k=0 term + identical walks).
        assert (np.argmax(s, axis=1) == np.arange(graph.num_nodes)).all()

    def test_single_graph_symmetric(self, random_pair):
        graph, _ = random_pair
        s = cosimrank(graph, iterations=5)
        np.testing.assert_allclose(s, s.T, atol=1e-12)

    def test_shared_walk_targets_similar(self):
        g = Graph.from_edges(3, [(0, 1), (2, 1)])
        s = cosimrank(g, iterations=3, damping=0.8)
        # p_1(0) = p_1(2) = e_1 (inner product 1, weight 0.8); node 1 has
        # no out-edges so all longer walks vanish.
        assert s[0, 2] == pytest.approx(0.8)

    def test_cross_graph_shape(self, random_pair):
        graph_a, graph_b = random_pair
        s = cosimrank_cross(graph_a, graph_b, iterations=4)
        assert s.shape == (graph_a.num_nodes, graph_b.num_nodes)

    def test_cross_graph_identical_inputs_match_single(self, random_pair):
        graph, _ = random_pair
        np.testing.assert_allclose(
            cosimrank_cross(graph, graph, iterations=4),
            cosimrank(graph, iterations=4),
        )

    def test_damping_zero_is_k0_only(self, random_pair):
        graph, _ = random_pair
        s = cosimrank(graph, iterations=5, damping=0.0)
        np.testing.assert_array_equal(s, np.eye(graph.num_nodes))


class TestVertexSim:
    def test_shape_and_finite(self, random_pair):
        graph, _ = random_pair
        s = vertexsim(graph, terms=10)
        assert s.shape == (graph.num_nodes, graph.num_nodes)
        assert np.isfinite(s).all()

    def test_symmetric(self, random_pair):
        graph, _ = random_pair
        s = vertexsim(graph, terms=10)
        np.testing.assert_allclose(s, s.T, atol=1e-10)

    def test_neighbours_more_similar_than_strangers(self):
        # A path: adjacent nodes share walk structure.
        g = Graph.from_edges(5, [(i, i + 1) for i in range(4)])
        s = vertexsim(g, terms=15)
        assert s[0, 1] > s[0, 4]

    def test_alpha_validated(self, path_graph):
        with pytest.raises(ValueError, match="alpha"):
            vertexsim(path_graph, alpha=1.0)

    def test_empty_graph(self):
        assert vertexsim(Graph.empty(0)).shape == (0, 0)

    def test_edgeless_graph_is_degree_normalised_identity(self):
        s = vertexsim(Graph.empty(3))
        np.testing.assert_array_equal(s, np.eye(3))
