"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_fig3_runs(self, capsys):
        exit_code = main(
            ["fig3", "--scale", "tiny", "-k", "4", "--algorithms", "GSim+,GSim"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "GSim+" in out

    def test_fig5_custom_dataset(self, capsys):
        exit_code = main(
            [
                "fig5", "--scale", "tiny", "--dataset", "HP", "-k", "4",
                "--algorithms", "GSim+",
            ]
        )
        assert exit_code == 0
        assert "GSim+" in capsys.readouterr().out

    def test_deadline_flag_forwarded(self, capsys):
        # An absurdly tight deadline turns slow competitors into >1day cells.
        exit_code = main(
            [
                "fig3", "--scale", "tiny", "-k", "4",
                "--algorithms", "SS-BC*", "--deadline", "0.000001",
            ]
        )
        assert exit_code == 0
        assert ">1day" in capsys.readouterr().out

    def test_memory_budget_flag_forwarded(self, capsys):
        exit_code = main(
            [
                "fig3", "--scale", "tiny", "-k", "4",
                "--algorithms", "GSim", "--memory-budget-mib", "0.001",
            ]
        )
        assert exit_code == 0
        assert "OOM" in capsys.readouterr().out

    def test_accuracy_runs(self, capsys):
        exit_code = main(["accuracy", "--scale", "tiny"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "GSim+ / GSim" in out
        assert "Theorem 3.1" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--scale", "galactic"])

    def test_topk_runs(self, capsys):
        exit_code = main(["topk", "--scale", "tiny", "--dataset", "HP", "--top", "3"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "top-3 pairs" in out
        assert out.count("score") == 3

    def test_datasets_runs(self, capsys):
        exit_code = main(["datasets", "--scale", "tiny"])
        assert exit_code == 0
        out = capsys.readouterr().out
        for key in ("HP", "EE", "WT", "UK", "IT"):
            assert key in out
        assert "gini" in out

    def test_help_lists_figures(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig8", "accuracy", "all"):
            assert name in out

    def test_bound_runs(self, capsys):
        exit_code = main(["bound", "--scale", "tiny"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Theorem 4.2" in out
        assert "NO" not in out  # the bound holds at every k

    def test_spec_runs(self, capsys, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "cli-spec-test",
                    "datasets": ["HP"],
                    "algorithms": ["GSim+"],
                    "scale": "tiny",
                    "iterations": 3,
                    "query_size": 8,
                }
            )
        )
        csv_path = tmp_path / "out.csv"
        exit_code = main(["spec", str(spec_path), "--export-csv", str(csv_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "cli-spec-test" in out
        assert csv_path.read_text().startswith("algorithm,")

    def test_sim_command_block(self, capsys, tmp_path):
        graph_a = tmp_path / "a.txt"
        graph_a.write_text("0 1\n1 2\n2 0\n")
        graph_b = tmp_path / "b.txt"
        graph_b.write_text("0 1\n")
        exit_code = main(["sim", str(graph_a), str(graph_b), "-k", "4"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "G_A" in out and "G_B" in out

    def test_sim_command_topk_and_csv(self, capsys, tmp_path):
        graph_a = tmp_path / "a.txt"
        graph_a.write_text("0 1\n1 2\n2 0\n")
        graph_b = tmp_path / "b.txt"
        graph_b.write_text("0 1\n1 0\n")
        exit_code = main(
            ["sim", str(graph_a), str(graph_b), "-k", "4", "--top", "2"]
        )
        assert exit_code == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 4

        out_csv = tmp_path / "block.csv"
        exit_code = main(
            ["sim", str(graph_a), str(graph_b), "-k", "4",
             "--output", str(out_csv)]
        )
        assert exit_code == 0
        rows = out_csv.read_text().strip().splitlines()
        assert len(rows) == 3  # n_A rows

    @pytest.mark.parametrize("figure", ["fig2", "fig4", "fig6", "fig7", "fig8"])
    def test_every_figure_command_runs(self, capsys, figure):
        exit_code = main(
            [figure, "--scale", "tiny", "-k", "3", "--algorithms", "GSim+"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert f"Figure {figure[3:]}" in out
        assert "GSim+" in out
