"""Unit tests for repro.utils (rng, timing, memory, validation, deadline)."""

import time

import numpy as np
import pytest

from repro.utils import (
    MemoryTracker,
    Stopwatch,
    check_integer,
    check_nonnegative_integer,
    check_positive_integer,
    check_probability,
    dense_matrix_bytes,
    ensure_rng,
    format_bytes,
    spawn_rngs,
    time_call,
)
from repro.utils.deadline import DeadlineExceeded, WallClockDeadline


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert ensure_rng(5).integers(1000) == ensure_rng(5).integers(1000)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_bad_seed_type(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng(1.5)

    def test_spawn_count(self):
        assert len(spawn_rngs(0, 3)) == 3

    def test_spawn_children_independent(self):
        a, b = spawn_rngs(7, 2)
        assert a.integers(10**9) != b.integers(10**9)

    def test_spawn_deterministic(self):
        first = [g.integers(10**9) for g in spawn_rngs(7, 2)]
        second = [g.integers(10**9) for g in spawn_rngs(7, 2)]
        assert first == second

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 2)
        assert len(children) == 2

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestStopwatch:
    def test_measures_time(self):
        sw = Stopwatch().start()
        time.sleep(0.01)
        assert sw.stop() >= 0.01

    def test_context_manager(self):
        with Stopwatch() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.005

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError, match="already running"):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            Stopwatch().stop()

    def test_resume_accumulates(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.005)
        first = sw.stop()
        sw.start()
        time.sleep(0.005)
        assert sw.stop() > first

    def test_lap_records(self):
        sw = Stopwatch().start()
        sw.lap()
        sw.lap()
        sw.stop()
        assert len(sw.laps) == 2
        assert sw.laps[1] >= sw.laps[0]

    def test_reset(self):
        sw = Stopwatch().start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_time_call(self):
        result, seconds = time_call(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0.0


class TestMemory:
    def test_dense_matrix_bytes(self):
        assert dense_matrix_bytes(10, 10) == 800

    def test_dense_matrix_bytes_negative(self):
        with pytest.raises(ValueError):
            dense_matrix_bytes(-1, 5)

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(5 * 1024**2) == "5.0 MiB"
        assert format_bytes(3 * 1024**3) == "3.0 GiB"

    def test_format_bytes_negative(self):
        assert format_bytes(-2048) == "-2.0 KiB"

    def test_tracker_measures_allocation(self):
        with MemoryTracker() as tracker:
            block = np.ones((256, 256))
        assert tracker.peak_bytes >= block.nbytes * 0.9

    def test_tracker_peak_mib(self):
        with MemoryTracker() as tracker:
            _ = np.ones((512, 512))  # 2 MiB
        assert tracker.peak_mib >= 1.5

    def test_nested_trackers(self):
        with MemoryTracker() as outer:
            with MemoryTracker() as inner:
                _ = np.ones((128, 128))
        assert inner.peak_bytes > 0
        assert outer.peak_bytes >= inner.peak_bytes * 0.5


class TestValidation:
    def test_check_integer(self):
        assert check_integer(5, "x") == 5
        assert check_integer(np.int64(5), "x") == 5

    def test_check_integer_rejects_bool(self):
        with pytest.raises(TypeError, match="bool"):
            check_integer(True, "x")

    def test_check_integer_rejects_float(self):
        with pytest.raises(TypeError):
            check_integer(5.0, "x")

    def test_nonnegative(self):
        assert check_nonnegative_integer(0, "x") == 0
        with pytest.raises(ValueError, match=">= 0"):
            check_nonnegative_integer(-1, "x")

    def test_positive(self):
        assert check_positive_integer(1, "x") == 1
        with pytest.raises(ValueError, match=">= 1"):
            check_positive_integer(0, "x")

    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        assert check_probability(0, "p") == 0.0
        with pytest.raises(ValueError):
            check_probability(1.1, "p")
        with pytest.raises(TypeError):
            check_probability("half", "p")
        with pytest.raises(TypeError):
            check_probability(True, "p")


class TestWallClockDeadline:
    def test_not_expired_initially(self):
        deadline = WallClockDeadline(60.0)
        assert not deadline.expired
        deadline.check()  # no raise

    def test_expires(self):
        deadline = WallClockDeadline(0.001)
        time.sleep(0.01)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="budget"):
            deadline.check("test work")

    def test_remaining_decreases(self):
        deadline = WallClockDeadline(10.0)
        first = deadline.remaining
        time.sleep(0.005)
        assert deadline.remaining < first

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(ValueError):
            WallClockDeadline(0.0)

    def test_message_names_work(self):
        deadline = WallClockDeadline(1e-9)
        time.sleep(0.001)
        with pytest.raises(DeadlineExceeded, match="my task"):
            deadline.check("my task")
