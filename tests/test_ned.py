"""Unit tests for the NED baseline (k-adjacent tree edit distance)."""

import pytest

from repro import Graph
from repro.baselines import NEDIndex, ned_distance, ned_query
from repro.baselines.ned import TreeSizeLimitExceeded
from repro.utils.deadline import DeadlineExceeded, WallClockDeadline


class TestNEDIndex:
    def test_subtree_size_depth_zero(self, path_graph):
        index = NEDIndex(path_graph, depth=3)
        assert index.subtree_size(0, 0) == 1

    def test_subtree_size_counts_children(self):
        star = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        index = NEDIndex(star, depth=2)
        # Depth 1 from the centre: itself + 3 leaves.
        assert index.subtree_size(0, 1) == 4

    def test_subtree_size_revisits_parents(self):
        # Undirected edge 0-1: depth-2 tree at 0 is 0 -> 1 -> 0 (3 nodes).
        g = Graph.from_edges(2, [(0, 1)])
        index = NEDIndex(g, depth=2)
        assert index.subtree_size(0, 2) == 3

    def test_exponential_growth(self):
        clique = Graph.from_edges(
            5, [(i, j) for i in range(5) for j in range(5) if i != j]
        )
        index = NEDIndex(clique, depth=6)
        sizes = [index.subtree_size(0, d) for d in range(5)]
        # Each level multiplies by ~4 neighbours: strictly growing fast.
        assert sizes[4] > 4 * sizes[3] - 5

    def test_size_limit_enforced(self):
        clique = Graph.from_edges(
            8, [(i, j) for i in range(8) for j in range(8) if i != j]
        )
        index = NEDIndex(clique, depth=10, size_limit=1000)
        with pytest.raises(TreeSizeLimitExceeded):
            index.subtree_size(0, 10)


class TestNEDDistance:
    def test_identical_nodes_distance_zero(self, cycle_graph):
        assert ned_distance(cycle_graph, cycle_graph, 0, 0, depth=3) == 0.0

    def test_symmetric_roles_distance_zero(self):
        cycle = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert ned_distance(cycle, cycle, 0, 2, depth=3) == 0.0

    def test_different_degrees_positive_distance(self):
        star = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        # Centre vs leaf.
        assert ned_distance(star, star, 0, 1, depth=2) > 0

    def test_depth_zero_always_zero(self, path_graph, star_graph):
        assert ned_distance(path_graph, star_graph, 0, 0, depth=0) == 0.0

    def test_symmetry(self, path_graph, star_graph):
        d_ab = ned_distance(path_graph, star_graph, 1, 0, depth=2)
        d_ba = ned_distance(star_graph, path_graph, 0, 1, depth=2)
        assert d_ab == pytest.approx(d_ba)

    def test_distance_is_insertion_cost_for_missing_children(self):
        # Node with 2 children vs node with 0: distance = both subtrees.
        fork = Graph.from_edges(3, [(0, 1), (0, 2)])
        lone = Graph.empty(1)
        distance = ned_distance(fork, lone, 0, 0, depth=1)
        assert distance == 2.0  # two leaf subtrees of size 1 inserted


class TestNEDQuery:
    def test_block_shape(self, path_graph, cycle_graph):
        block = ned_query(path_graph, cycle_graph, [0, 1], [0, 1, 2], depth=2)
        assert block.shape == (2, 3)

    def test_similarity_in_unit_interval(self, random_pair):
        graph_a, graph_b = random_pair
        block = ned_query(graph_a, graph_b, [0, 1], [0, 1], depth=2)
        assert ((block > 0) & (block <= 1)).all()

    def test_identical_pair_scores_one(self, cycle_graph):
        block = ned_query(cycle_graph, cycle_graph, [0], [0], depth=3)
        assert block[0, 0] == 1.0

    def test_deadline_enforced(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(DeadlineExceeded):
            ned_query(
                graph_a, graph_b, [0, 1], [0, 1], depth=3,
                deadline=WallClockDeadline(1e-9),
            )

    def test_memoisation_consistency(self, random_pair):
        # Shared memo across pairs must not change individual results.
        graph_a, graph_b = random_pair
        block = ned_query(graph_a, graph_b, [0, 1], [2, 3], depth=2)
        for i, a in enumerate([0, 1]):
            for j, b in enumerate([2, 3]):
                single = ned_query(graph_a, graph_b, [a], [b], depth=2)
                assert single[0, 0] == pytest.approx(block[i, j])
