"""Unit tests for the Blondel GSim baseline (Eq. 2 / Eq. 5)."""

import numpy as np
import pytest

from repro import Graph, gsim, gsim_partial
from repro.utils.deadline import DeadlineExceeded, WallClockDeadline


class TestGSim:
    def test_unit_norm_every_run(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsim(graph_a, graph_b, iterations=5)
        assert np.linalg.norm(result.similarity) == pytest.approx(1.0)

    def test_shape(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsim(graph_a, graph_b, iterations=3)
        assert result.similarity.shape == (graph_a.num_nodes, graph_b.num_nodes)

    def test_zero_iterations_gives_normalised_ones(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsim(graph_a, graph_b, iterations=0)
        assert np.allclose(result.similarity, result.similarity[0, 0])

    def test_matches_explicit_dense_iteration(self, tiny_pair):
        graph_a, graph_b = tiny_pair
        a = graph_a.adjacency.toarray()
        b = graph_b.adjacency.toarray()
        s = np.ones((graph_a.num_nodes, graph_b.num_nodes))
        s /= np.linalg.norm(s)
        for _ in range(4):
            s = a @ s @ b.T + a.T @ s @ b
            s /= np.linalg.norm(s)
        result = gsim(graph_a, graph_b, iterations=4)
        np.testing.assert_allclose(result.similarity, s, atol=1e-10)

    def test_history_recorded(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsim(graph_a, graph_b, iterations=4, keep_history=True)
        assert len(result.iterates) == 4
        np.testing.assert_array_equal(result.iterates[-1], result.similarity)

    def test_history_off_by_default(self, random_pair):
        graph_a, graph_b = random_pair
        assert gsim(graph_a, graph_b, iterations=2).iterates is None

    def test_even_iterates_converge(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsim(graph_a, graph_b, iterations=40, keep_history=True)
        evens = result.iterates[1::2]  # S_2, S_4, ...
        last_gap = np.linalg.norm(evens[-1] - evens[-2])
        first_gap = np.linalg.norm(evens[1] - evens[0])
        assert last_gap < first_gap * 1e-2

    def test_empty_graph_raises_cleanly(self):
        with pytest.raises(ZeroDivisionError):
            gsim(Graph.empty(3), Graph.empty(2), iterations=1)

    def test_deadline_enforced(self, random_pair):
        graph_a, graph_b = random_pair
        expired = WallClockDeadline(1e-9)
        with pytest.raises(DeadlineExceeded):
            gsim(graph_a, graph_b, iterations=5, deadline=expired)


class TestGSimPartial:
    def test_block_shape(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsim_partial(graph_a, graph_b, [0, 1, 2], [3, 4], iterations=5)
        assert result.similarity.shape == (3, 2)

    def test_block_unit_norm(self, random_pair):
        graph_a, graph_b = random_pair
        result = gsim_partial(graph_a, graph_b, [0, 1], [2, 3], iterations=5)
        assert np.linalg.norm(result.similarity) == pytest.approx(1.0)

    def test_full_queries_match_gsim(self, random_pair):
        graph_a, graph_b = random_pair
        all_a = list(range(graph_a.num_nodes))
        all_b = list(range(graph_b.num_nodes))
        partial = gsim_partial(graph_a, graph_b, all_a, all_b, iterations=5)
        full = gsim(graph_a, graph_b, iterations=5)
        np.testing.assert_allclose(
            partial.similarity, full.similarity, atol=1e-10
        )

    def test_block_proportional_to_full_slice(self, random_pair):
        # Eq.(5) block = full-matrix slice up to its own normalisation.
        graph_a, graph_b = random_pair
        rows, cols = [0, 5, 9], [1, 2]
        partial = gsim_partial(graph_a, graph_b, rows, cols, iterations=5)
        full_slice = gsim(graph_a, graph_b, iterations=5).similarity[
            np.ix_(rows, cols)
        ]
        expected = full_slice / np.linalg.norm(full_slice)
        np.testing.assert_allclose(partial.similarity, expected, atol=1e-10)

    def test_zero_iterations_rejected(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(ValueError, match="at least one"):
            gsim_partial(graph_a, graph_b, [0], [0], iterations=0)
