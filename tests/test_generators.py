"""Unit tests for repro.graphs.generators."""

import numpy as np
import pytest

from repro.graphs import (
    barabasi_albert_graph,
    chung_lu_graph,
    erdos_renyi_graph,
    rmat_graph,
    stochastic_block_graph,
)
from repro.graphs.generators import power_law_degrees


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi_graph(50, 200, seed=0)
        assert g.num_nodes == 50
        assert g.num_edges == 200

    def test_deterministic_given_seed(self):
        assert erdos_renyi_graph(30, 90, seed=5) == erdos_renyi_graph(30, 90, seed=5)

    def test_different_seeds_differ(self):
        assert erdos_renyi_graph(30, 90, seed=5) != erdos_renyi_graph(30, 90, seed=6)

    def test_no_self_loops_by_default(self):
        g = erdos_renyi_graph(10, 60, seed=1)
        assert all(s != d for s, d, _ in g.edges())

    def test_self_loops_allowed_when_requested(self):
        # Full capacity including loops forces at least one loop.
        g = erdos_renyi_graph(3, 9, seed=1, allow_self_loops=True)
        assert any(s == d for s, d, _ in g.edges())

    def test_capacity_check(self):
        with pytest.raises(ValueError, match="capacity"):
            erdos_renyi_graph(3, 7, seed=0)  # only 6 loop-free slots

    def test_zero_edges(self):
        assert erdos_renyi_graph(5, 0, seed=0).num_edges == 0

    def test_full_capacity(self):
        g = erdos_renyi_graph(4, 12, seed=0)
        assert g.num_edges == 12


class TestBarabasiAlbert:
    def test_shape(self):
        g = barabasi_albert_graph(100, 3, seed=0)
        assert g.num_nodes == 100
        # (n - m0) arrivals each adding exactly m edges.
        assert g.num_edges == (100 - 3) * 3

    def test_heavy_tail(self):
        g = barabasi_albert_graph(300, 4, seed=1)
        degrees = g.in_degrees() + g.out_degrees()
        # Preferential attachment: max total degree far above the mean.
        assert degrees.max() > 4 * degrees.mean()

    def test_deterministic(self):
        a = barabasi_albert_graph(50, 2, seed=9)
        b = barabasi_albert_graph(50, 2, seed=9)
        assert a == b

    def test_rejects_m_ge_n(self):
        with pytest.raises(ValueError, match="must be <"):
            barabasi_albert_graph(3, 3, seed=0)


class TestRMAT:
    def test_node_count_power_of_two(self):
        g = rmat_graph(6, 200, seed=0)
        assert g.num_nodes == 64

    def test_edge_count_close_to_target(self):
        g = rmat_graph(8, 1000, seed=0)
        # Duplicates are merged, so realised count <= requested but close.
        assert 800 <= g.num_edges <= 1000

    def test_skewed_degrees(self):
        g = rmat_graph(9, 4000, seed=2)
        degrees = g.out_degrees()
        assert degrees.max() >= 5 * max(degrees.mean(), 1)

    def test_deterministic(self):
        assert rmat_graph(5, 100, seed=3) == rmat_graph(5, 100, seed=3)

    def test_quadrants_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            rmat_graph(4, 10, quadrants=(0.5, 0.5, 0.5, 0.5))

    def test_uniform_quadrants_work(self):
        g = rmat_graph(5, 50, seed=0, quadrants=(0.25, 0.25, 0.25, 0.25))
        assert g.num_edges > 0


class TestChungLu:
    def test_average_degree_targeted(self):
        degrees = np.full(200, 5.0)
        g = chung_lu_graph(degrees, seed=0)
        realised = g.num_edges / g.num_nodes
        assert 2.0 <= realised <= 5.0  # dedup removes some

    def test_zero_degrees_give_empty_graph(self):
        g = chung_lu_graph([0.0, 0.0, 0.0], seed=0)
        assert g.num_edges == 0

    def test_rejects_negative_degrees(self):
        with pytest.raises(ValueError, match="non-negative"):
            chung_lu_graph([1.0, -2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            chung_lu_graph([])

    def test_hub_gets_more_edges(self):
        degrees = np.ones(100)
        degrees[0] = 60.0
        g = chung_lu_graph(degrees, seed=1)
        hub_degree = g.out_degrees()[0] + g.in_degrees()[0]
        rest_mean = (g.out_degrees()[1:] + g.in_degrees()[1:]).mean()
        assert hub_degree > 5 * max(rest_mean, 0.1)


class TestPowerLawDegrees:
    def test_mean_matches_target(self):
        degrees = power_law_degrees(5000, 3.0, seed=0)
        assert degrees.mean() == pytest.approx(3.0, rel=1e-9)

    def test_all_positive(self):
        assert (power_law_degrees(100, 2.0, seed=1) > 0).all()

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError, match="exponent"):
            power_law_degrees(10, 2.0, exponent=1.0)

    def test_rejects_bad_average(self):
        with pytest.raises(ValueError, match="average_degree"):
            power_law_degrees(10, 0.0)


class TestStochasticBlock:
    def test_total_nodes(self):
        g = stochastic_block_graph([10, 20], p_in=0.3, p_out=0.01, seed=0)
        assert g.num_nodes == 30

    def test_communities_denser_inside(self):
        g = stochastic_block_graph([40, 40], p_in=0.4, p_out=0.02, seed=1)
        adjacency = g.adjacency.toarray()
        inside = adjacency[:40, :40].sum() + adjacency[40:, 40:].sum()
        across = adjacency[:40, 40:].sum() + adjacency[40:, :40].sum()
        assert inside > 3 * across

    def test_no_self_loops(self):
        g = stochastic_block_graph([15], p_in=1.0, p_out=0.0, seed=0)
        assert all(s != d for s, d, _ in g.edges())

    def test_p_in_one_gives_complete_blocks(self):
        g = stochastic_block_graph([5], p_in=1.0, p_out=0.0, seed=0)
        assert g.num_edges == 5 * 4

    def test_rejects_empty_blocks(self):
        with pytest.raises(ValueError, match="non-empty"):
            stochastic_block_graph([], 0.5, 0.1)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            stochastic_block_graph([5], p_in=1.5, p_out=0.0)


class TestDirectedBlockGraph:
    def test_block_roles_respected(self):
        from repro.graphs.generators import directed_block_graph

        # Block 0 only points at block 1; never the reverse.
        g = directed_block_graph([5, 5], [[0.0, 1.0], [0.0, 0.0]], seed=0)
        for src, dst, _ in g.edges():
            assert src < 5 and dst >= 5

    def test_matrix_shape_validated(self):
        from repro.graphs.generators import directed_block_graph

        with pytest.raises(ValueError, match="block_matrix must be"):
            directed_block_graph([3, 3], [[0.5]], seed=0)

    def test_probabilities_validated(self):
        from repro.graphs.generators import directed_block_graph

        with pytest.raises(ValueError, match="probabilities"):
            directed_block_graph([3], [[1.5]], seed=0)

    def test_no_self_loops(self):
        from repro.graphs.generators import directed_block_graph

        g = directed_block_graph([6], [[1.0]], seed=0)
        assert all(s != d for s, d, _ in g.edges())

    def test_deterministic(self):
        from repro.graphs.generators import directed_block_graph

        matrix = [[0.2, 0.4], [0.1, 0.3]]
        a = directed_block_graph([4, 6], matrix, seed=3)
        b = directed_block_graph([4, 6], matrix, seed=3)
        assert a == b

    def test_empty_blocks_rejected(self):
        from repro.graphs.generators import directed_block_graph

        with pytest.raises(ValueError, match="non-empty"):
            directed_block_graph([], [])


class TestPerBlockDensities:
    def test_per_block_p_in(self):
        g = stochastic_block_graph(
            [20, 20], p_in=[0.8, 0.05], p_out=0.0, seed=0
        )
        adjacency = g.adjacency.toarray()
        dense_block = adjacency[:20, :20].sum()
        sparse_block = adjacency[20:, 20:].sum()
        assert dense_block > 4 * max(sparse_block, 1)

    def test_p_in_length_validated(self):
        with pytest.raises(ValueError, match="entries for"):
            stochastic_block_graph([5, 5], p_in=[0.5], p_out=0.0)
