"""Out-of-core CSR graphs and the process-pool backend (``scale`` marker).

The load-bearing claims, mirroring the parallel suite's contract:

* an :class:`MmapCSRGraph` built by :func:`convert_edge_list` is
  **bit-identical** to the in-memory :class:`Graph` parsed from the same
  edge list — structure, degrees, and SpMM products;
* the converter is crash-safe: killed at any checkpoint, a resumed run
  publishes a manifest whose content checksum equals a clean convert's;
* ``gsim_plus`` / ``top_k_pairs`` / ``top_k_for_queries`` return
  bit-identical results across ``backend`` in {thread, process},
  ``max_workers`` in {1, 2, 4}, and in-memory vs mmap-backed graphs;
* memmap arrays are charged at their *resident* estimate, not their
  virtual ``nbytes``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.embeddings import LowRankFactors
from repro.core.gsim_plus import gsim_plus
from repro.core.topk import top_k_for_queries, top_k_pairs
from repro.graphs import MmapCSRGraph, convert_edge_list, read_edge_list
from repro.runtime import (
    ExecutionContext,
    FaultInjector,
    InjectedFault,
    MemoryLedger,
    Metrics,
    WorkerPool,
)
from repro.utils.memory import RESIDENT_WINDOW_BYTES, resident_estimate, resident_nbytes

pytestmark = pytest.mark.scale

WORKER_COUNTS = (1, 2, 4)
GRAPH_SPECS = {"a": (60, 400, 11), "b": (45, 300, 12)}


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def edge_files(tmp_path_factory):
    """Weighted edge lists with comments and duplicate edges."""
    root = tmp_path_factory.mktemp("edges")
    paths = {}
    for label, (n, m, seed) in GRAPH_SPECS.items():
        rng = np.random.default_rng(seed)
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        weight = rng.standard_normal(m).round(3)
        lines = ["# synthetic weighted edge list", f"{n - 1} {n - 1} 0.5"]
        lines += [f"{s} {d} {w}" for s, d, w in zip(src, dst, weight)]
        path = root / f"{label}.txt"
        path.write_text("\n".join(lines) + "\n")
        paths[label] = path
    return paths


@pytest.fixture(scope="module")
def graph_pairs(edge_files, tmp_path_factory):
    """(in-memory, mmap) pairs parsed from the same edge lists.

    Tiny chunk/block sizes force the converter through many chunks and
    row blocks, exercising the streamed code paths on a small input.
    """
    root = tmp_path_factory.mktemp("mmap")
    mem = {k: read_edge_list(p, name=k) for k, p in edge_files.items()}
    mm = {
        k: convert_edge_list(
            p, root / k, name=k, chunk_edges=64, block_rows=16
        )
        for k, p in edge_files.items()
    }
    return mem, mm


@pytest.fixture(scope="module")
def pools():
    """One persistent pool per (backend, workers) cell, shut down at teardown."""
    built = {
        (backend, w): WorkerPool(max_workers=w, backend=backend)
        for backend in ("thread", "process")
        for w in WORKER_COUNTS
    }
    yield built
    for pool in built.values():
        pool.shutdown()


# ---------------------------------------------------------------------------
# mmap-CSR vs in-memory parity
# ---------------------------------------------------------------------------


def test_mmap_structure_parity(graph_pairs):
    mem, mm = graph_pairs
    for key in mem:
        g, h = mem[key], mm[key]
        assert h.num_nodes == g.num_nodes
        assert h.num_edges == g.num_edges
        assert np.array_equal(h.out_degrees(), g.out_degrees())
        assert np.array_equal(h.in_degrees(), g.in_degrees())
        for attr in ("adjacency", "adjacency_t"):
            a, b = getattr(g, attr), getattr(h, attr)
            assert np.array_equal(b.indptr, a.indptr)
            assert np.array_equal(b.indices, a.indices)
            assert np.array_equal(b.data, a.data)


def test_mmap_spmm_bit_identical(graph_pairs):
    mem, mm = graph_pairs
    for key in mem:
        g, h = mem[key], mm[key]
        rng = np.random.default_rng(5)
        dense = rng.standard_normal((g.num_nodes, 7))
        assert np.array_equal(h.adjacency @ dense, g.adjacency @ dense)
        assert np.array_equal(h.adjacency_t @ dense, g.adjacency_t @ dense)


def test_convert_idempotent_and_verifiable(graph_pairs, edge_files, tmp_path):
    _, mm = graph_pairs
    root = mm["a"].root
    # A second convert into the same directory reloads the artifact.
    again = convert_edge_list(edge_files["a"], root, name="a")
    assert again.num_edges == mm["a"].num_edges
    # Full checksum verification passes on a clean artifact.
    verified = MmapCSRGraph(root, verify=True)
    assert verified.num_edges == mm["a"].num_edges
    # No raw.* intermediates or progress journal survive completion.
    leftovers = [p.name for p in root.iterdir() if p.name.startswith("raw.")]
    assert leftovers == []
    assert not (root / "progress.json").exists()


def test_verify_detects_corruption(edge_files, tmp_path):
    graph = convert_edge_list(edge_files["b"], tmp_path / "art", name="b")
    target = tmp_path / "art" / "adj.data.bin"
    raw = bytearray(target.read_bytes())
    raw[0] ^= 0xFF
    target.write_bytes(bytes(raw))
    with pytest.raises(ValueError, match="checksum"):
        MmapCSRGraph(graph.root, verify=True)


def test_from_graph_round_trip(graph_pairs, tmp_path):
    mem, _ = graph_pairs
    g = mem["b"]
    h = MmapCSRGraph.from_graph(g, tmp_path / "fg", name="b-copy")
    assert np.array_equal(h.adjacency.indptr, g.adjacency.indptr)
    assert np.array_equal(h.adjacency.indices, g.adjacency.indices)
    assert np.array_equal(h.adjacency.data, g.adjacency.data)
    rng = np.random.default_rng(9)
    dense = rng.standard_normal((g.num_nodes, 3))
    assert np.array_equal(h.adjacency_t @ dense, g.adjacency_t @ dense)


# ---------------------------------------------------------------------------
# converter modes and crash-safety
# ---------------------------------------------------------------------------


def test_convert_strict_rejects_bad_lines(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1\nx y\n2 3\n")
    with pytest.raises(ValueError, match="line 2"):
        convert_edge_list(path, tmp_path / "out", mode="strict")


def test_convert_lenient_matches_reader(tmp_path):
    path = tmp_path / "messy.txt"
    path.write_text("# header\n0 1 2.0\nx y\n2 0 1.0\n-1 3 9.0\n3 2\n")
    with pytest.warns(RuntimeWarning, match="skipped"):
        h = convert_edge_list(path, tmp_path / "out", mode="lenient")
        g = read_edge_list(path, mode="lenient")
    assert h.num_edges == g.num_edges
    assert np.array_equal(h.adjacency.indices, g.adjacency.indices)
    assert np.array_equal(h.adjacency.data, g.adjacency.data)


@pytest.mark.parametrize("fail_at", [1, 3, 5, 7, 9])
def test_convert_crash_resume_checksum_identical(
    edge_files, tmp_path, fail_at
):
    clean = convert_edge_list(
        edge_files["a"], tmp_path / "clean", chunk_edges=64, block_rows=16
    )
    clean_manifest = json.loads((clean.root / "manifest.json").read_text())

    crashed = tmp_path / "crashed"
    context = ExecutionContext(
        fault_injector=FaultInjector(fail_at=fail_at, match="mmap convert")
    )
    with pytest.raises(InjectedFault):
        convert_edge_list(
            edge_files["a"],
            crashed,
            chunk_edges=64,
            block_rows=16,
            context=context,
        )
    assert not (crashed / "manifest.json").exists()

    resumed = convert_edge_list(
        edge_files["a"], crashed, chunk_edges=64, block_rows=16
    )
    resumed_manifest = json.loads((resumed.root / "manifest.json").read_text())
    assert resumed_manifest["checksum"] == clean_manifest["checksum"]
    assert not (crashed / "progress.json").exists()


# ---------------------------------------------------------------------------
# cross-backend bit-identity
# ---------------------------------------------------------------------------


def _similarity(graph_a, graph_b, max_workers=None, backend="thread"):
    return gsim_plus(
        graph_a,
        graph_b,
        iterations=6,
        max_workers=max_workers,
        backend=backend,
    ).similarity


def test_gsim_plus_backend_bit_identity(graph_pairs, pools):
    mem, mm = graph_pairs
    reference = _similarity(mem["a"], mem["b"])
    for (backend, workers), pool in pools.items():
        got = _similarity(mem["a"], mem["b"], max_workers=pool)
        assert np.array_equal(got, reference), (backend, workers)
    # mmap-backed graphs ship (path, row-range) descriptors; results are
    # still bit-identical to the in-memory serial reference.
    assert np.array_equal(_similarity(mm["a"], mm["b"]), reference)
    mmap_proc = _similarity(
        mm["a"], mm["b"], max_workers=pools[("process", 2)]
    )
    assert np.array_equal(mmap_proc, reference)


def test_top_k_pairs_backend_bit_identity(graph_pairs, pools):
    mem, mm = graph_pairs
    reference = top_k_pairs(mem["a"], mem["b"], k=25, iterations=6, block_rows=17)
    for (backend, workers), pool in pools.items():
        got = top_k_pairs(
            mem["a"], mem["b"], k=25, iterations=6, block_rows=17, max_workers=pool
        )
        assert got == reference, (backend, workers)
    mmap_got = top_k_pairs(
        mm["a"],
        mm["b"],
        k=25,
        iterations=6,
        block_rows=17,
        max_workers=pools[("process", 4)],
    )
    assert mmap_got == reference


def test_top_k_for_queries_backend_bit_identity(graph_pairs, pools):
    mem, mm = graph_pairs
    queries = [0, 5, 5, 17, 3, 59, 28]
    reference = top_k_for_queries(
        mem["a"], mem["b"], queries, k=7, iterations=6, block_rows=2
    )
    for (backend, workers), pool in pools.items():
        got = top_k_for_queries(
            mem["a"],
            mem["b"],
            queries,
            k=7,
            iterations=6,
            block_rows=2,
            max_workers=pool,
        )
        assert got == reference, (backend, workers)
    mmap_got = top_k_for_queries(
        mm["a"],
        mm["b"],
        queries,
        k=7,
        iterations=6,
        block_rows=2,
        max_workers=pools[("process", 2)],
    )
    assert mmap_got == reference


# ---------------------------------------------------------------------------
# process-pool semantics
# ---------------------------------------------------------------------------


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("shard three exploded")
    return x


def test_process_pool_preserves_submission_order(pools):
    pool = pools[("process", 4)]
    assert pool.map(_square, list(range(32))) == [i * i for i in range(32)]


def test_process_pool_propagates_first_error(pools):
    pool = pools[("process", 2)]
    with pytest.raises(ValueError, match="shard three exploded"):
        pool.map(_fail_on_three, [1, 2, 3, 4, 5])
    # The pool stays usable after a failed batch.
    assert pool.map(_square, [5, 6]) == [25, 36]


def test_process_pool_pins_worker_blas_threads(pools):
    pool = pools[("process", 2)]
    metrics = Metrics()
    context = ExecutionContext(metrics=metrics)
    pool.map(_square, [1, 2, 3, 4], context=context)
    info = pool.worker_info
    assert info is not None
    assert info["blas_threads"] == 1
    pool.map(_square, [1, 2], context=context)
    assert metrics.snapshot()["gauges"]["parallel.worker_blas_threads"] == 1.0


def test_resolve_existing_pool_backend_wins(pools):
    pool = pools[("process", 2)]
    resolved = WorkerPool.resolve(pool, backend="thread")
    assert resolved is pool
    assert resolved.backend == "process"
    fresh = WorkerPool.resolve(2, backend="process")
    assert fresh.backend == "process" and fresh.max_workers == 2
    fresh.shutdown()


# ---------------------------------------------------------------------------
# resident-memory accounting
# ---------------------------------------------------------------------------


def test_resident_nbytes_memmap_bounded(graph_pairs):
    _, mm = graph_pairs
    graph = mm["a"]
    data = graph.adjacency.data
    resident = resident_nbytes(data)
    assert 0 <= resident <= data.nbytes
    # Heap arrays are fully resident by definition.
    heap = np.ones(1024)
    assert resident_nbytes(heap) == heap.nbytes


def test_resident_estimate_window():
    assert resident_estimate(100) == 100
    big = 4 * RESIDENT_WINDOW_BYTES
    assert resident_estimate(big) == RESIDENT_WINDOW_BYTES


def test_factors_resident_matches_nbytes_for_heap_arrays():
    u = np.ones((8, 3))
    v = np.ones((5, 3))
    factors = LowRankFactors(u, v)
    assert factors.resident_nbytes == factors.nbytes


def test_ledger_charges_resident_not_virtual(graph_pairs):
    _, mm = graph_pairs
    graph = mm["b"]
    virtual = graph.memory_bytes()
    resident = graph.resident_bytes()
    assert resident <= virtual
    ledger = MemoryLedger(limit_bytes=max(resident, 1) * 2 + 1)
    ledger.charge(resident, "mmap graph")
    assert ledger.held_bytes == resident
    ledger.release(resident)
    assert ledger.held_bytes == 0


def test_release_pages_keeps_graph_usable(graph_pairs):
    mem, mm = graph_pairs
    graph = mm["a"]
    graph.release_pages()
    assert graph.resident_bytes() >= 0
    rng = np.random.default_rng(2)
    dense = rng.standard_normal((graph.num_nodes, 2))
    assert np.array_equal(
        graph.adjacency @ dense, mem["a"].adjacency @ dense
    )


# ---------------------------------------------------------------------------
# CLI converter
# ---------------------------------------------------------------------------


def test_cli_datasets_convert(edge_files, tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "artifact"
    code = main(
        ["datasets", "convert", str(edge_files["a"]), str(out), "--lenient"]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "nodes" in printed and "edges" in printed
    assert (out / "manifest.json").exists()
    graph = MmapCSRGraph(out)
    assert graph.num_nodes == GRAPH_SPECS["a"][0]
