"""Unit tests for repro.core.embeddings.LowRankFactors."""

import math

import numpy as np
import pytest

from repro.core import LowRankFactors


def random_factors(rng, n=7, m=5, w=3, log_scale=0.0):
    return LowRankFactors(
        rng.standard_normal((n, w)), rng.standard_normal((m, w)), log_scale
    )


class TestConstruction:
    def test_shape_and_width(self, rng):
        f = random_factors(rng)
        assert f.shape == (7, 5)
        assert f.width == 3

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="widths differ"):
            LowRankFactors(np.ones((3, 2)), np.ones((4, 3)))

    def test_ones(self):
        f = LowRankFactors.ones(4, 6)
        assert f.shape == (4, 6)
        assert f.width == 1
        np.testing.assert_array_equal(f.materialize(), np.ones((4, 6)))

    def test_ones_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LowRankFactors.ones(0, 3)

    def test_vectors_promoted_to_2d(self):
        f = LowRankFactors(np.ones(3), np.ones(3))
        # atleast_2d turns (3,) into (1, 3): a width-3 pair of row factors.
        assert f.width == 3

    def test_memory_bytes(self, rng):
        f = random_factors(rng)
        assert f.memory_bytes() == (7 * 3 + 5 * 3) * 8


class TestFactoredAlgebra:
    def test_frobenius_matches_dense(self, rng):
        f = random_factors(rng)
        dense = f.materialize()
        assert f.frobenius_norm() == pytest.approx(np.linalg.norm(dense))

    def test_frobenius_with_scale(self, rng):
        f = random_factors(rng, log_scale=2.0)
        dense_norm = np.linalg.norm(f.u @ f.v.T) * math.exp(2.0)
        assert f.frobenius_norm() == pytest.approx(dense_norm)

    def test_frobenius_exclude_scale(self, rng):
        f = random_factors(rng, log_scale=5.0)
        assert f.frobenius_norm(include_scale=False) == pytest.approx(
            np.linalg.norm(f.u @ f.v.T)
        )

    def test_inner_product_matches_dense(self, rng):
        f = random_factors(rng)
        g = random_factors(rng)
        expected = float(np.sum(f.materialize() * g.materialize()))
        assert f.inner_product(g) == pytest.approx(expected)

    def test_inner_product_shape_checked(self, rng):
        f = random_factors(rng, n=4)
        g = random_factors(rng, n=5)
        with pytest.raises(ValueError, match="shape mismatch"):
            f.inner_product(g)

    def test_normalized_distance_matches_dense(self, rng):
        f = random_factors(rng)
        g = random_factors(rng)
        a = f.materialize() / np.linalg.norm(f.materialize())
        b = g.materialize() / np.linalg.norm(g.materialize())
        assert f.normalized_distance(g) == pytest.approx(
            np.linalg.norm(a - b), abs=1e-10
        )

    def test_normalized_distance_self_is_zero(self, rng):
        f = random_factors(rng)
        assert f.normalized_distance(f) == pytest.approx(0.0, abs=1e-7)

    def test_normalized_distance_ignores_scale(self, rng):
        f = random_factors(rng)
        g = LowRankFactors(f.u.copy(), f.v.copy(), log_scale=9.0)
        assert f.normalized_distance(g) == pytest.approx(0.0, abs=1e-7)

    def test_normalized_distance_zero_matrix_raises(self):
        zero = LowRankFactors(np.zeros((2, 1)), np.zeros((3, 1)))
        other = LowRankFactors.ones(2, 3)
        with pytest.raises(ZeroDivisionError):
            zero.normalized_distance(other)


class TestQueryBlock:
    def test_block_matches_dense_slice(self, rng):
        f = random_factors(rng)
        dense = f.materialize()
        block = f.query_block([1, 3], [0, 2, 4])
        np.testing.assert_allclose(block, dense[np.ix_([1, 3], [0, 2, 4])])

    def test_block_respects_scale(self, rng):
        f = random_factors(rng, log_scale=1.5)
        block = f.query_block([0], [0])
        assert block[0, 0] == pytest.approx(f.materialize()[0, 0])

    def test_row_out_of_range(self, rng):
        with pytest.raises(IndexError, match="row"):
            random_factors(rng).query_block([99], [0])

    def test_col_out_of_range(self, rng):
        with pytest.raises(IndexError, match="column"):
            random_factors(rng).query_block([0], [99])


class TestConditioning:
    def test_rescaled_preserves_matrix(self, rng):
        f = random_factors(rng)
        f.u *= 1e100  # force huge magnitudes
        rescaled = f.rescaled()
        assert np.abs(rescaled.u).max() <= 1.0
        np.testing.assert_allclose(
            rescaled.materialize(), f.materialize(), rtol=1e-10
        )

    def test_rescaled_zero_matrix_safe(self):
        f = LowRankFactors(np.zeros((2, 1)), np.zeros((3, 1)))
        rescaled = f.rescaled()
        assert rescaled.frobenius_norm() == 0.0

    def test_compressed_reduces_width(self, rng):
        # width 10 > min(4, 6): compression must cut to 4.
        f = LowRankFactors(
            rng.standard_normal((4, 10)), rng.standard_normal((6, 10))
        )
        compressed = f.compressed()
        assert compressed.width == 4
        np.testing.assert_allclose(
            compressed.materialize(), f.materialize(), atol=1e-10
        )

    def test_compressed_wide_other_side(self, rng):
        f = LowRankFactors(
            rng.standard_normal((6, 10)), rng.standard_normal((4, 10))
        )
        compressed = f.compressed()
        assert compressed.width == 4
        np.testing.assert_allclose(
            compressed.materialize(), f.materialize(), atol=1e-10
        )

    def test_compressed_noop_when_slim(self, rng):
        f = random_factors(rng)  # width 3 < min(7, 5)
        assert f.compressed().width == 3

    def test_repr(self, rng):
        assert "width=3" in repr(random_factors(rng))
