"""Unit tests for repro.graphs.algorithms."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    degree_statistics,
    erdos_renyi_graph,
    largest_weakly_connected_subgraph,
    strongly_connected_components,
    weakly_connected_components,
)


class TestWeaklyConnected:
    def test_single_component(self, cycle_graph):
        components = weakly_connected_components(cycle_graph)
        assert len(components) == 1
        assert components[0].size == 5

    def test_two_components(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        components = weakly_connected_components(g)
        sizes = [c.size for c in components]
        assert sizes == [2, 2, 1]

    def test_direction_ignored(self):
        g = Graph.from_edges(3, [(1, 0), (1, 2)])  # only out-edges from 1
        components = weakly_connected_components(g)
        assert len(components) == 1

    def test_isolated_nodes_singletons(self):
        components = weakly_connected_components(Graph.empty(4))
        assert len(components) == 4
        assert all(c.size == 1 for c in components)

    def test_largest_first_ordering(self):
        g = Graph.from_edges(6, [(0, 1), (2, 3), (3, 4)])
        components = weakly_connected_components(g)
        assert [c.size for c in components] == [3, 2, 1]

    def test_partition(self, random_pair):
        graph, _ = random_pair
        components = weakly_connected_components(graph)
        union = np.concatenate(components)
        assert np.array_equal(np.sort(union), np.arange(graph.num_nodes))


class TestStronglyConnected:
    def test_cycle_is_one_scc(self, cycle_graph):
        components = strongly_connected_components(cycle_graph)
        assert len(components) == 1
        assert components[0].size == 5

    def test_path_is_singletons(self, path_graph):
        components = strongly_connected_components(path_graph)
        assert len(components) == 4
        assert all(c.size == 1 for c in components)

    def test_two_cycles_with_bridge(self):
        g = Graph.from_edges(
            6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]
        )
        components = strongly_connected_components(g)
        sizes = sorted(c.size for c in components)
        assert sizes == [3, 3]

    def test_deep_chain_no_recursion_error(self):
        # 5000-node cycle: recursive Tarjan would blow the stack.
        n = 5000
        g = Graph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])
        components = strongly_connected_components(g)
        assert len(components) == 1
        assert components[0].size == n

    def test_partition(self, random_pair):
        graph, _ = random_pair
        components = strongly_connected_components(graph)
        union = np.concatenate(components)
        assert np.array_equal(np.sort(union), np.arange(graph.num_nodes))

    def test_matches_networkx(self):
        import networkx as nx

        graph = erdos_renyi_graph(40, 120, seed=5)
        ours = {frozenset(c.tolist()) for c in strongly_connected_components(graph)}
        nx_graph = nx.DiGraph([(s, d) for s, d, _ in graph.edges()])
        nx_graph.add_nodes_from(range(graph.num_nodes))
        theirs = {frozenset(c) for c in nx.strongly_connected_components(nx_graph)}
        assert ours == theirs


class TestLargestComponent:
    def test_extracts_largest(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        sub = largest_weakly_connected_subgraph(g)
        assert sub.num_nodes == 3

    def test_connected_graph_unchanged_size(self, cycle_graph):
        sub = largest_weakly_connected_subgraph(cycle_graph)
        assert sub.num_nodes == cycle_graph.num_nodes


class TestDegreeStatistics:
    def test_regular_graph(self, cycle_graph):
        stats = degree_statistics(cycle_graph)
        assert stats.mean == pytest.approx(2.0)
        assert stats.maximum == 2
        assert stats.gini == pytest.approx(0.0, abs=1e-12)

    def test_star_is_skewed(self, star_graph):
        stats = degree_statistics(star_graph)
        assert stats.maximum == 4
        # Star degrees (4, 1, 1, 1, 1): Gini is exactly 0.3.
        assert stats.gini == pytest.approx(0.3)

    def test_empty_graph(self):
        stats = degree_statistics(Graph.empty(0))
        assert stats.mean == 0.0
        assert stats.gini == 0.0

    def test_edgeless_graph(self):
        stats = degree_statistics(Graph.empty(5))
        assert stats.maximum == 0
        assert stats.gini == 0.0

    def test_social_stand_in_more_skewed_than_er(self):
        from repro.graphs import load_dataset

        social = degree_statistics(load_dataset("HP", scale="tiny", seed=0))
        uniform = degree_statistics(erdos_renyi_graph(300, 3456, seed=0))
        assert social.gini > uniform.gini
