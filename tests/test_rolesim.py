"""Unit tests for the RoleSim baseline."""

import numpy as np
import pytest

from repro import Graph
from repro.baselines import rolesim, rolesim_query
from repro.utils.deadline import DeadlineExceeded, WallClockDeadline


class TestRoleSimProperties:
    def test_diagonal_is_one(self, cycle_graph):
        result = rolesim(cycle_graph, iterations=3)
        np.testing.assert_array_equal(np.diag(result.similarity), 1.0)

    def test_symmetric(self, random_pair):
        graph, _ = random_pair
        result = rolesim(graph, iterations=2)
        np.testing.assert_allclose(result.similarity, result.similarity.T)

    def test_range(self, random_pair):
        graph, _ = random_pair
        sim = rolesim(graph, iterations=2, beta=0.15).similarity
        assert (sim >= 0.15 - 1e-12).all()
        assert (sim <= 1.0 + 1e-12).all()

    def test_beta_floor(self, path_graph):
        # A leaf and a hub share no matching weight at convergence, but
        # the decay term keeps similarity >= beta.
        sim = rolesim(path_graph, iterations=4, beta=0.2).similarity
        assert sim.min() >= 0.2 - 1e-12

    def test_automorphic_nodes_score_one(self):
        # In a 4-cycle every node is automorphically equivalent.
        cycle = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        sim = rolesim(cycle, iterations=5).similarity
        np.testing.assert_allclose(sim, 1.0, atol=1e-9)

    def test_isolated_nodes_identical_roles(self):
        g = Graph.empty(3)
        sim = rolesim(g, iterations=2).similarity
        np.testing.assert_allclose(sim, 1.0)

    def test_zero_iterations_all_ones(self, path_graph):
        sim = rolesim(path_graph, iterations=0).similarity
        np.testing.assert_allclose(sim, 1.0)

    def test_matching_strategies_close(self, random_pair):
        graph, _ = random_pair
        greedy = rolesim(graph, iterations=2, matching="greedy").similarity
        exact = rolesim(graph, iterations=2, matching="exact").similarity
        # Greedy matching under-weights at most modestly.
        assert np.abs(greedy - exact).max() < 0.2

    def test_exact_matching_at_least_greedy_weight(self):
        # Exact assignment weight >= greedy weight => exact sim >= greedy
        # after ONE iteration (both start from the same all-ones state).
        g = Graph.from_edges(
            6, [(0, 1), (0, 2), (0, 3), (4, 1), (4, 2), (4, 5), (5, 3)]
        )
        greedy = rolesim(g, iterations=1, matching="greedy").similarity
        exact = rolesim(g, iterations=1, matching="exact").similarity
        assert (exact >= greedy - 1e-12).all()

    def test_bad_matching_rejected(self, path_graph):
        with pytest.raises(ValueError, match="matching"):
            rolesim(path_graph, matching="quantum")

    def test_beta_validated(self, path_graph):
        with pytest.raises(ValueError):
            rolesim(path_graph, beta=1.5)

    def test_iceberg_freezes_low_pairs(self, random_pair):
        graph, _ = random_pair
        pruned = rolesim(
            graph, iterations=3, beta=0.15, iceberg_threshold=0.6
        ).similarity
        # Pairs below the threshold are clamped exactly to beta.
        below = pruned[pruned < 0.6]
        off_diagonal = below[below != 1.0]
        assert np.allclose(off_diagonal, 0.15)

    def test_deadline_enforced(self, random_pair):
        graph, _ = random_pair
        with pytest.raises(DeadlineExceeded):
            rolesim(graph, iterations=3, deadline=WallClockDeadline(1e-9))


class TestRoleSimQuery:
    def test_block_shape(self, path_graph, cycle_graph):
        block = rolesim_query(path_graph, cycle_graph, [0, 1], [2], iterations=2)
        assert block.shape == (2, 1)

    def test_matches_union_matrix(self, path_graph, cycle_graph):
        union = path_graph.union_disjoint(cycle_graph)
        full = rolesim(union, iterations=2).similarity
        block = rolesim_query(path_graph, cycle_graph, [1], [0], iterations=2)
        assert block[0, 0] == pytest.approx(full[1, 4])

    def test_out_of_range_queries(self, path_graph, cycle_graph):
        with pytest.raises(IndexError):
            rolesim_query(path_graph, cycle_graph, [99], [0])
