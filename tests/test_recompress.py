"""Factor recompression and the precision policy.

Covers the first-class ``LowRankFactors`` representation end to end:

* the rank-bounded recompression step (QR + small SVD + tail-energy
  truncation) and its relative-error contract,
* the precision policy (float64 exact default, opt-in float32) and
  float32-vs-float64 parity on the paper's worked example,
* width bounded by numerical rank instead of the ``2^k`` doubling
  schedule on the bench graphs,
* recompressed-vs-exact error staying under the Theorem 4.2 bound,
* dtype + truncation metadata round-tripping through serialization and
  ``GSimIndex`` (with the v2 float64 compatibility path),
* memory-ledger charging and metrics for recompression steps.
"""

import numpy as np
import pytest

from repro.core import LowRankFactors, TruncationInfo, error_bound
from repro.core.gsim_plus import DEFAULT_RECOMPRESS_TOL, GSimPlus, gsim_plus
from repro.core.serialization import load_factors, save_factors
from repro.graphs import load_dataset_pair
from repro.retrieval import GSimIndex
from repro.runtime import ExecutionContext, Metrics

pytestmark = pytest.mark.recompress

# The paper's Example 3.2 factor rows (see test_paper_example.py).
U2_QA = np.array(
    [
        [7.0, 8.0, 2.0, 1.0],
        [10.0, 15.0, 11.0, 13.0],
        [10.0, 11.0, 14.0, 14.0],
        [10.0, 13.0, 10.0, 13.0],
    ]
)
V2_QB = np.array(
    [
        [10.0, 11.0, 9.0, 10.0],
        [10.0, 9.0, 11.0, 10.0],
        [10.0, 10.0, 10.0, 10.0],
    ]
)


def _dense(factors: LowRankFactors) -> np.ndarray:
    return factors.scale * (
        np.asarray(factors.u, dtype=np.float64)
        @ np.asarray(factors.v, dtype=np.float64).T
    )


# ----------------------------------------------------------------------
# The representation: dtype policy, accessors, truncation metadata
# ----------------------------------------------------------------------
class TestPrecisionPolicy:
    def test_default_promotes_to_float64(self):
        factors = LowRankFactors([[1, 2]], [[3, 4]])
        assert factors.dtype == np.float64
        assert factors.precision == "float64"

    def test_matching_float32_is_preserved(self):
        u = np.ones((4, 2), dtype=np.float32)
        v = np.ones((3, 2), dtype=np.float32)
        factors = LowRankFactors(u, v)
        assert factors.dtype == np.float32
        assert factors.precision == "float32"

    def test_explicit_dtype_wins(self):
        factors = LowRankFactors(
            np.ones((4, 2)), np.ones((3, 2)), dtype=np.float32
        )
        assert factors.dtype == np.float32

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError, match="float32 and float64"):
            LowRankFactors(np.ones((2, 1)), np.ones((2, 1)), dtype=np.float16)

    def test_astype_round_trip(self):
        factors = LowRankFactors(U2_QA, V2_QB, log_scale=0.5)
        as32 = factors.astype(np.float32)
        back = as32.astype(np.float64)
        assert as32.dtype == np.float32
        assert back.dtype == np.float64
        assert back.log_scale == factors.log_scale

    def test_nbytes_and_width(self):
        factors = LowRankFactors(U2_QA, V2_QB)
        assert factors.width == 4
        assert factors.nbytes == U2_QA.nbytes + V2_QB.nbytes
        assert factors.memory_bytes() == factors.nbytes
        assert factors.astype(np.float32).nbytes == factors.nbytes // 2

    def test_paper_example_float32_parity(self):
        exact = LowRankFactors(U2_QA, V2_QB)
        half = LowRankFactors(U2_QA, V2_QB, dtype=np.float32)
        block64 = exact.query_block([0, 1, 2, 3], [0, 1, 2])
        block32 = half.query_block([0, 1, 2, 3], [0, 1, 2])
        # The documented float32 contract: ~1e-7 relative error.
        np.testing.assert_allclose(block32, block64, rtol=1e-6)
        assert half.frobenius_norm() == pytest.approx(
            exact.frobenius_norm(), rel=1e-6
        )


class TestTruncationInfo:
    def test_dict_round_trip(self):
        info = TruncationInfo(
            retained_rank=7, discarded_rank=9,
            discarded_energy=1.5e-9, tolerance=1e-8,
        )
        assert TruncationInfo.from_dict(info.to_dict()) == info


# ----------------------------------------------------------------------
# The recompression step
# ----------------------------------------------------------------------
class TestRecompressed:
    def _rank3_factors(self, width=16, seed=0):
        rng = np.random.default_rng(seed)
        basis_u = rng.standard_normal((40, 3))
        basis_v = rng.standard_normal((30, 3))
        mix = rng.standard_normal((3, width))
        return LowRankFactors(basis_u @ mix, basis_v @ mix)

    def test_recovers_numerical_rank(self):
        factors = self._rank3_factors()
        compressed = factors.recompressed(1e-8)
        assert compressed.width == 3
        assert compressed.truncation.retained_rank == 3
        assert compressed.truncation.discarded_rank == 13
        np.testing.assert_allclose(
            _dense(compressed), _dense(factors), atol=1e-10
        )

    @pytest.mark.parametrize("tol", [1e-10, 1e-6, 1e-3, 1e-1])
    def test_relative_error_within_tolerance(self, tol, rng):
        u = rng.standard_normal((25, 12))
        v = rng.standard_normal((20, 12))
        factors = LowRankFactors(u, v)
        compressed = factors.recompressed(tol)
        z = _dense(factors)
        error = np.linalg.norm(z - _dense(compressed)) / np.linalg.norm(z)
        assert error <= tol * (1 + 1e-12)
        assert compressed.truncation.tolerance == tol
        assert compressed.truncation.discarded_energy <= tol * (1 + 1e-12)

    def test_max_rank_caps_width(self):
        factors = self._rank3_factors()
        assert factors.recompressed(1e-12, max_rank=2).width == 2

    def test_invalid_tolerance_rejected(self):
        factors = self._rank3_factors()
        for bad in (0.0, -1e-3, 1.0, 2.0):
            with pytest.raises(ValueError, match="tol"):
                factors.recompressed(bad)

    def test_float32_recompression_stays_float32(self):
        compressed = self._rank3_factors().astype(np.float32).recompressed(1e-5)
        assert compressed.dtype == np.float32
        assert compressed.width == 3


# ----------------------------------------------------------------------
# The solver: width bounding, accuracy, parity, metrics
# ----------------------------------------------------------------------
class TestSolverRecompression:
    def test_width_bounded_by_numerical_rank_on_bench_graphs(self):
        # Acceptance criterion: after >= 6 iterations at the default
        # tolerance, width stays strictly below the 2^k schedule.
        graph_a, graph_b = load_dataset_pair("HP", scale="tiny", seed=7)
        iterations = 6
        exact = gsim_plus(
            graph_a, graph_b, iterations=iterations, rank_cap="qr-compress"
        )
        compressed = gsim_plus(
            graph_a, graph_b, iterations=iterations, rank_cap="qr-compress",
            recompress_tol=DEFAULT_RECOMPRESS_TOL,
        )
        assert compressed.final_width < 2**iterations
        assert compressed.final_width < exact.final_width
        assert compressed.truncation is not None
        np.testing.assert_allclose(
            compressed.similarity, exact.similarity, atol=1e-8
        )

    @pytest.mark.parametrize("tol", [1e-10, 1e-8, 1e-6])
    def test_error_within_theorem_bound(self, tol, random_pair):
        graph_a, graph_b = random_pair
        iterations = 6  # Theorem 4.2 needs an even count
        bound = error_bound(graph_a, graph_b, iterations)
        exact = gsim_plus(graph_a, graph_b, iterations=iterations)
        compressed = gsim_plus(
            graph_a, graph_b, iterations=iterations, recompress_tol=tol
        )
        max_error = float(
            np.abs(compressed.similarity - exact.similarity).max()
        )
        assert max_error <= max(bound, iterations * tol)

    def test_default_path_identical_with_recompression_off(self, random_pair):
        graph_a, graph_b = random_pair
        plain = gsim_plus(graph_a, graph_b, iterations=5)
        explicit = gsim_plus(
            graph_a, graph_b, iterations=5,
            recompress_tol=None, precision="float64",
        )
        assert np.array_equal(plain.similarity, explicit.similarity)
        assert plain.truncation is None
        assert plain.precision == "float64"

    def test_float32_solver_parity(self, random_pair):
        graph_a, graph_b = random_pair
        exact = gsim_plus(graph_a, graph_b, iterations=5)
        half = gsim_plus(graph_a, graph_b, iterations=5, precision="float32")
        assert half.precision == "float32"
        assert half.similarity.dtype == np.float32
        np.testing.assert_allclose(
            half.similarity.astype(np.float64), exact.similarity, atol=1e-5
        )

    def test_invalid_precision_rejected(self, random_pair):
        graph_a, graph_b = random_pair
        with pytest.raises(ValueError, match="precision"):
            GSimPlus(graph_a, graph_b, precision="float16")

    def test_recompression_metrics_and_ledger(self, random_pair):
        from repro.experiments.guards import MemoryBudget

        graph_a, graph_b = random_pair
        metrics = Metrics()
        context = ExecutionContext(
            metrics=metrics, memory=MemoryBudget().ledger()
        )
        gsim_plus(
            graph_a, graph_b, iterations=5,
            recompress_tol=1e-8, context=context,
        )
        tree = metrics.snapshot()
        assert tree["counters"]["gsim_plus.recompressions"] >= 1
        assert context.memory.peak_bytes > 0


# ----------------------------------------------------------------------
# Artifacts: serialization and the index
# ----------------------------------------------------------------------
class TestArtifactRoundTrips:
    def _compressed_factors(self, random_pair, precision="float32"):
        graph_a, graph_b = random_pair
        solver = GSimPlus(
            graph_a, graph_b, rank_cap="qr-compress",
            recompress_tol=1e-6, precision=precision,
        )
        state = None
        for state in solver.iterate(5):
            pass
        return state.factors

    def test_save_load_preserves_dtype_and_truncation(
        self, tmp_path, random_pair
    ):
        factors = self._compressed_factors(random_pair)
        path = tmp_path / "factors.npz"
        save_factors(factors, path)
        loaded = load_factors(path)
        assert loaded.dtype == np.float32
        assert loaded.truncation == factors.truncation
        np.testing.assert_array_equal(loaded.u, factors.u)
        np.testing.assert_array_equal(loaded.v, factors.v)
        # float32 on disk must not balloon back to float64 sizes.
        assert loaded.nbytes == factors.nbytes

    def test_v2_artifact_still_loads_as_float64(self, tmp_path, random_pair):
        from repro.runtime.resilience import content_checksum

        factors = self._compressed_factors(random_pair, precision="float64")
        content = {
            "u": factors.u,
            "v": factors.v,
            "log_scale": np.float64(factors.log_scale),
            "format_version": np.int64(2),
        }
        digest = content_checksum(content)
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **content, checksum=np.str_(digest))
        loaded = load_factors(path)
        assert loaded.dtype == np.float64
        assert loaded.truncation is None
        np.testing.assert_array_equal(loaded.u, factors.u)

    def test_index_round_trip_preserves_precision(self, tmp_path, random_pair):
        graph_a, graph_b = random_pair
        index = GSimIndex.build(
            graph_a, graph_b, iterations=5,
            recompress_tol=1e-6, precision="float32",
        )
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = GSimIndex.load(path)
        assert loaded.metadata.precision == "float32"
        assert loaded.metadata.recompress_tol == 1e-6
        assert loaded.metadata.truncation is not None
        assert loaded.memory_bytes() == index.memory_bytes()
        queries = ([0, 1, 2], [0, 1])
        np.testing.assert_array_equal(
            loaded.query(*queries), index.query(*queries)
        )

    def test_index_build_records_default_policy(self, random_pair):
        graph_a, graph_b = random_pair
        index = GSimIndex.build(graph_a, graph_b, iterations=4)
        assert index.metadata.precision == "float64"
        assert index.metadata.recompress_tol is None
        assert index.metadata.truncation is None
