"""Run the doctests embedded in the public modules' docstrings.

Keeps the inline usage examples honest: if an API changes, the stale
docstring fails here rather than misleading a reader.
"""

import doctest
import importlib

import pytest

# Resolved via importlib because several package __init__ files re-export
# same-named callables (e.g. repro.core.gsim_plus the function shadows the
# submodule as a package attribute).
MODULE_NAMES = [
    "repro",
    "repro.analysis.matching",
    "repro.analysis.ranking",
    "repro.core.batch",
    "repro.core.embeddings",
    "repro.core.gsim_plus",
    "repro.baselines.gsim",
    "repro.baselines.gsvd",
    "repro.baselines.ned",
    "repro.baselines.rolesim",
    "repro.baselines.structsim",
    "repro.dynamic.graph",
    "repro.dynamic.session",
    "repro.experiments.report",
    "repro.experiments.scaling",
    "repro.models.cosimrank",
    "repro.models.hits",
    "repro.models.simrank",
    "repro.runtime.budget",
    "repro.runtime.context",
    "repro.runtime.metrics",
    "repro.utils.deadline",
    "repro.utils.memory",
    "repro.utils.timing",
    "repro.workloads.sweeps",
]

MODULES = [importlib.import_module(name) for name in MODULE_NAMES]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert result.failed == 0, (
        f"{result.failed} doctest failures in {module.__name__}"
    )
    # Modules listed here are expected to carry at least one example.
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"
