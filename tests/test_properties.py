"""Property-based tests (hypothesis) on the core invariants.

These hammer the central claims of the paper on randomly generated graph
pairs rather than hand-picked fixtures:

* Theorem 3.1 — GSim+ equals GSim exactly at every iteration, for every
  graph pair and iteration count.
* The low-embedding algebra (Gram norms, inner products, query blocks)
  agrees with dense linear algebra on arbitrary factors.
* Generators, samplers, and IO round-trips preserve their contracts.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Graph, LowRankFactors, gsim, gsim_plus
from repro.analysis import frobenius_error
from repro.graphs import read_edge_list_text, write_edge_list

_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def graphs(draw, min_nodes=2, max_nodes=12, require_edges=True):
    """A random small directed graph as (num_nodes, edge list)."""
    n = draw(st.integers(min_nodes, max_nodes))
    possible = [(i, j) for i in range(n) for j in range(n) if i != j]
    min_size = 1 if require_edges else 0
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=min_size, max_size=3 * n)
    )
    return Graph.from_edges(n, edges)


@st.composite
def graph_pairs(draw):
    """Two random graphs with at least one edge each (GSim needs signal)."""
    return draw(graphs()), draw(graphs())


@st.composite
def factors(draw):
    """A random LowRankFactors with small dimensions."""
    n = draw(st.integers(1, 8))
    m = draw(st.integers(1, 8))
    w = draw(st.integers(1, 5))
    u = np.array(
        draw(
            st.lists(
                st.floats(-10, 10, allow_nan=False), min_size=n * w, max_size=n * w
            )
        )
    ).reshape(n, w)
    v = np.array(
        draw(
            st.lists(
                st.floats(-10, 10, allow_nan=False), min_size=m * w, max_size=m * w
            )
        )
    ).reshape(m, w)
    return LowRankFactors(u, v)


# ----------------------------------------------------------------------
# Theorem 3.1: exact equivalence
# ----------------------------------------------------------------------
class TestTheorem31Property:
    @_settings
    @given(pair=graph_pairs(), k=st.integers(1, 6))
    def test_gsim_plus_equals_gsim(self, pair, k):
        graph_a, graph_b = pair
        try:
            ours = gsim_plus(graph_a, graph_b, iterations=k).similarity
        except ZeroDivisionError:
            # Iterate collapsed (e.g. DAG deeper than k): GSim must too.
            try:
                gsim(graph_a, graph_b, iterations=k)
            except ZeroDivisionError:
                return
            raise
        reference = gsim(graph_a, graph_b, iterations=k).similarity
        assert frobenius_error(ours, reference) < 1e-9

    @_settings
    @given(pair=graph_pairs(), k=st.integers(1, 5))
    def test_rank_cap_modes_agree(self, pair, k):
        graph_a, graph_b = pair
        results = {}
        for mode in ("dense", "qr-compress", "none"):
            try:
                results[mode] = gsim_plus(
                    graph_a, graph_b, iterations=k, rank_cap=mode
                ).similarity
            except ZeroDivisionError:
                results[mode] = None
        values = list(results.values())
        if values[0] is None:
            assert all(v is None for v in values)
            return
        for other in values[1:]:
            assert frobenius_error(values[0], other) < 1e-9

    @_settings
    @given(pair=graph_pairs(), k=st.integers(0, 5))
    def test_similarity_always_unit_norm(self, pair, k):
        graph_a, graph_b = pair
        try:
            result = gsim_plus(graph_a, graph_b, iterations=k)
        except ZeroDivisionError:
            return
        assert abs(np.linalg.norm(result.similarity) - 1.0) < 1e-9


# ----------------------------------------------------------------------
# Low-embedding algebra
# ----------------------------------------------------------------------
class TestFactorAlgebraProperty:
    @_settings
    @given(f=factors())
    def test_gram_norm_matches_dense(self, f):
        dense_norm = np.linalg.norm(f.materialize())
        assert abs(f.frobenius_norm() - dense_norm) <= 1e-8 * (1 + dense_norm)

    @_settings
    @given(f=factors())
    def test_rescaled_is_equivalent(self, f):
        rescaled = f.rescaled()
        np.testing.assert_allclose(
            rescaled.materialize(), f.materialize(), rtol=1e-9, atol=1e-9
        )

    @_settings
    @given(f=factors())
    def test_compressed_is_equivalent(self, f):
        compressed = f.compressed()
        assert compressed.width <= max(f.width, min(f.shape))
        np.testing.assert_allclose(
            compressed.materialize(), f.materialize(), atol=1e-7
        )

    @_settings
    @given(f=factors())
    def test_query_block_consistent_with_materialize(self, f):
        n, m = f.shape
        dense = f.materialize()
        block = f.query_block(list(range(n)), list(range(m)))
        np.testing.assert_allclose(block, dense, atol=1e-12)


# ----------------------------------------------------------------------
# Substrate contracts
# ----------------------------------------------------------------------
class TestSubstrateProperty:
    @_settings
    @given(g=graphs(require_edges=False))
    def test_edge_list_round_trip(self, g):
        import io

        buffer = io.StringIO()
        write_edge_list(g, buffer, write_weights=True)
        loaded = read_edge_list_text(buffer.getvalue())
        # Round trip may shrink node count if trailing nodes are isolated;
        # compare on the common prefix by re-embedding.
        assert loaded.num_edges == g.num_edges
        for s, d, w in loaded.edges():
            assert g.adjacency[s, d] == w

    @_settings
    @given(g=graphs(require_edges=False))
    def test_degree_sums_match_edge_count(self, g):
        assert g.out_degrees().sum() == g.num_edges
        assert g.in_degrees().sum() == g.num_edges

    @_settings
    @given(g=graphs(require_edges=False))
    def test_undirected_is_idempotent(self, g):
        once = g.to_undirected()
        twice = once.to_undirected()
        assert once == twice

    @_settings
    @given(g=graphs(require_edges=False), seed=st.integers(0, 2**31 - 1))
    def test_subgraph_never_gains_edges(self, g, seed):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(1, g.num_nodes + 1))
        nodes = rng.choice(g.num_nodes, size=size, replace=False)
        sub = g.subgraph(sorted(nodes))
        assert sub.num_edges <= g.num_edges
        assert sub.num_nodes == size
