"""Unit tests for the experiment runner and algorithm registry."""

import numpy as np
import pytest

from repro.experiments import (
    ALGORITHMS,
    Deadline,
    MemoryBudget,
    Outcome,
    run_algorithm,
)
from repro.experiments.runner import instance_params
from repro.graphs import erdos_renyi_graph, random_node_sample


@pytest.fixture
def instance():
    graph_a = erdos_renyi_graph(40, 160, seed=1)
    graph_b = random_node_sample(graph_a, 15, seed=2)
    queries_a = np.arange(8)
    queries_b = np.arange(6)
    return graph_a, graph_b, queries_a, queries_b


class TestRegistry:
    def test_all_paper_competitors_registered(self):
        assert set(ALGORITHMS) == {"GSim+", "GSVD", "GSim", "SS-BC*", "NED", "RSim"}

    def test_cost_models_resolve(self):
        from repro.core import COST_MODELS

        for spec in ALGORITHMS.values():
            assert spec.cost_model in COST_MODELS


class TestInstanceParams:
    def test_fields(self, instance):
        graph_a, graph_b, queries_a, queries_b = instance
        params = instance_params(graph_a, graph_b, queries_a, queries_b, 5)
        assert params.n_a == 40
        assert params.n_b == 15
        assert params.q_a == 8
        assert params.q_b == 6
        assert params.iterations == 5
        assert params.d_avg >= 1.0
        assert params.d_max >= 1


class TestRunAlgorithm:
    @pytest.mark.parametrize("name", ["GSim+", "GSVD", "GSim", "SS-BC*"])
    def test_fast_algorithms_complete(self, instance, name):
        record = run_algorithm(ALGORITHMS[name], *instance, 4)
        assert record.outcome is Outcome.OK
        assert record.seconds is not None and record.seconds >= 0
        assert record.memory_bytes is not None

    def test_memory_veto_records_oom(self, instance):
        record = run_algorithm(
            ALGORITHMS["GSim"], *instance, 4, memory_budget=MemoryBudget(8)
        )
        assert record.outcome is Outcome.OOM
        assert "exceeds budget" in record.note
        assert record.seconds is None

    def test_predictive_timeout_records(self, instance):
        tight = Deadline(limit_seconds=1e-7, predictive_factor=1.0)
        record = run_algorithm(ALGORITHMS["GSim"], *instance, 4, deadline=tight)
        assert record.outcome is Outcome.TIMEOUT

    def test_cooperative_timeout_records(self, instance):
        # Predictive gate passes (huge factor) but the armed wall clock
        # stops the slow per-pair loop almost immediately.
        tight = Deadline(limit_seconds=0.001, predictive_factor=1e12)
        record = run_algorithm(ALGORITHMS["NED"], *instance, 3, deadline=tight)
        assert record.outcome is Outcome.TIMEOUT
        assert record.seconds is None

    def test_predictions_recorded(self, instance):
        record = run_algorithm(ALGORITHMS["GSim+"], *instance, 4)
        assert record.predicted_seconds is not None
        assert record.predicted_bytes is not None

    def test_params_recorded(self, instance):
        record = run_algorithm(ALGORITHMS["GSim+"], *instance, 4)
        assert record.params["k"] == 4
        assert record.params["q_a"] == 8

    def test_dataset_label(self, instance):
        record = run_algorithm(ALGORITHMS["GSim+"], *instance, 2, dataset="HP")
        assert record.dataset == "HP"

    def test_dataset_defaults_to_graph_name(self, instance):
        record = run_algorithm(ALGORITHMS["GSim+"], *instance, 2)
        assert record.dataset == "erdos-renyi"

    def test_ok_property(self, instance):
        record = run_algorithm(ALGORITHMS["GSim+"], *instance, 2)
        assert record.ok
        vetoed = run_algorithm(
            ALGORITHMS["GSim"], *instance, 2, memory_budget=MemoryBudget(1)
        )
        assert not vetoed.ok

    def test_rolesim_completes_on_tiny_instance(self, instance):
        record = run_algorithm(
            ALGORITHMS["RSim"], *instance, 2, deadline=Deadline(limit_seconds=30)
        )
        assert record.outcome in (Outcome.OK, Outcome.TIMEOUT)
