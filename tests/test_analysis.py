"""Unit tests for repro.analysis (accuracy + ranking metrics)."""

import numpy as np
import pytest

from repro.analysis import (
    frobenius_error,
    kendall_tau,
    max_absolute_error,
    relative_frobenius_error,
    top_k_overlap,
)


class TestAccuracyMetrics:
    def test_frobenius_zero_on_identical(self, rng):
        m = rng.standard_normal((4, 5))
        assert frobenius_error(m, m) == 0.0

    def test_frobenius_known_value(self):
        a = np.zeros((2, 2))
        b = np.array([[3.0, 0.0], [0.0, 4.0]])
        assert frobenius_error(a, b) == pytest.approx(5.0)

    def test_frobenius_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            frobenius_error(np.ones((2, 2)), np.ones((3, 3)))

    def test_relative_error(self):
        reference = np.array([[3.0, 4.0]])
        estimate = np.array([[3.0, 4.0]]) * 1.1
        assert relative_frobenius_error(estimate, reference) == pytest.approx(0.1)

    def test_relative_error_zero_reference(self):
        with pytest.raises(ZeroDivisionError):
            relative_frobenius_error(np.ones((2, 2)), np.zeros((2, 2)))

    def test_max_absolute_error(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[1.5, 1.0]])
        assert max_absolute_error(a, b) == pytest.approx(1.0)

    def test_max_absolute_error_empty(self):
        assert max_absolute_error(np.empty((0, 3)), np.empty((0, 3))) == 0.0


class TestTopKOverlap:
    def test_identical_rankings(self):
        scores = np.array([5.0, 4.0, 3.0, 2.0])
        assert top_k_overlap(scores, scores, 2) == 1.0

    def test_disjoint_top_sets(self):
        a = np.array([10.0, 9.0, 0.0, 0.0])
        b = np.array([0.0, 0.0, 9.0, 10.0])
        assert top_k_overlap(a, b, 2) == 0.0

    def test_partial_overlap(self):
        a = np.array([10.0, 9.0, 1.0, 0.0])
        b = np.array([10.0, 0.0, 9.0, 1.0])
        assert top_k_overlap(a, b, 2) == 0.5

    def test_matrices_flattened(self):
        a = np.array([[3.0, 2.0], [1.0, 0.0]])
        assert top_k_overlap(a, a, 3) == 1.0

    def test_k_validated(self):
        scores = np.ones(3)
        with pytest.raises(ValueError):
            top_k_overlap(scores, scores, 0)
        with pytest.raises(ValueError):
            top_k_overlap(scores, scores, 4)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            top_k_overlap(np.ones(3), np.ones(4), 2)


class TestKendallTau:
    def test_identical_order(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        assert kendall_tau(scores, scores) == pytest.approx(1.0)

    def test_reversed_order(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert kendall_tau(a, a[::-1]) == pytest.approx(-1.0)

    def test_single_swap(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        b = np.array([2.0, 1.0, 3.0, 4.0])
        # One inversion among 6 pairs: tau = 1 - 2/6.
        assert kendall_tau(a, b) == pytest.approx(1.0 - 2.0 / 6.0)

    def test_matches_scipy(self, rng):
        from scipy.stats import kendalltau as scipy_tau

        a = rng.standard_normal(50)
        b = rng.standard_normal(50)
        ours = kendall_tau(a, b)
        theirs = scipy_tau(a, b).statistic
        assert ours == pytest.approx(theirs, abs=1e-10)

    def test_needs_two_entries(self):
        with pytest.raises(ValueError, match="two entries"):
            kendall_tau(np.array([1.0]), np.array([1.0]))

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau(np.ones(3), np.ones(4))
