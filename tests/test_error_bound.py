"""Unit tests for Theorem 4.2 (error bound) and the spectral machinery."""

import numpy as np
import pytest

from repro import Graph, error_bound, gsim_plus
from repro.analysis import convergence_rate, dominant_eigenvalues, frobenius_error
from repro.core import (
    exact_similarity_spectral,
    kronecker_similarity_matrix,
    spectral_gap,
)


class TestKroneckerMatrix:
    def test_shape(self, tiny_pair):
        graph_a, graph_b = tiny_pair
        m = kronecker_similarity_matrix(graph_a, graph_b)
        n = graph_a.num_nodes * graph_b.num_nodes
        assert m.shape == (n, n)

    def test_symmetric(self, tiny_pair):
        graph_a, graph_b = tiny_pair
        m = kronecker_similarity_matrix(graph_a, graph_b)
        assert abs(m - m.T).sum() == 0

    def test_vec_identity(self, tiny_pair):
        # vec(A X B^T + A^T X B) = M vec(X) with column-major vec.
        graph_a, graph_b = tiny_pair
        m = kronecker_similarity_matrix(graph_a, graph_b).toarray()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((graph_a.num_nodes, graph_b.num_nodes))
        a = graph_a.adjacency.toarray()
        b = graph_b.adjacency.toarray()
        direct = a @ x @ b.T + a.T @ x @ b
        via_m = (m @ x.reshape(-1, order="F")).reshape(direct.shape, order="F")
        np.testing.assert_allclose(via_m, direct, atol=1e-10)


class TestSpectralGap:
    def test_ordering(self, tiny_pair):
        lambda1, lambda2 = spectral_gap(*tiny_pair)
        assert lambda1 >= lambda2 >= 0.0

    def test_convergence_rate_in_unit_interval(self, tiny_pair):
        rate = convergence_rate(*tiny_pair)
        assert 0.0 <= rate <= 1.0

    def test_dominant_eigenvalues_alias(self, tiny_pair):
        assert dominant_eigenvalues(*tiny_pair) == spectral_gap(*tiny_pair)

    def test_edgeless_graph_rate_raises(self):
        a = Graph.empty(2)
        with pytest.raises(ValueError, match="edgeless"):
            convergence_rate(a, a)

    def test_two_node_instance(self):
        a = Graph.from_edges(2, [(0, 1)])
        b = Graph.from_edges(1, [])
        lambda1, lambda2 = spectral_gap(a, b)
        assert lambda1 >= lambda2


class TestErrorBound:
    def test_bound_holds_for_even_iterations(self, tiny_pair):
        graph_a, graph_b = tiny_pair
        exact = exact_similarity_spectral(graph_a, graph_b)
        for k in (4, 8, 12):
            approx = gsim_plus(graph_a, graph_b, iterations=k).similarity
            actual = frobenius_error(approx, exact)
            bound = error_bound(graph_a, graph_b, k)
            assert actual <= bound + 1e-9, f"bound violated at k={k}"

    def test_bound_decays_geometrically(self, tiny_pair):
        graph_a, graph_b = tiny_pair
        bounds = [error_bound(graph_a, graph_b, k) for k in (2, 4, 6, 8)]
        assert all(b2 < b1 for b1, b2 in zip(bounds, bounds[1:]))
        # Ratio between consecutive bounds = (λ2/λ1)^2, constant.
        ratios = [b2 / b1 for b1, b2 in zip(bounds, bounds[1:])]
        assert max(ratios) - min(ratios) < 1e-9

    def test_odd_iterations_rejected(self, tiny_pair):
        with pytest.raises(ValueError, match="even"):
            error_bound(*tiny_pair, iterations=3)

    def test_zero_iterations_rejected(self, tiny_pair):
        with pytest.raises(ValueError):
            error_bound(*tiny_pair, iterations=0)

    def test_large_instance_refused(self):
        a = Graph.from_edges(100, [(i, (i + 1) % 100) for i in range(100)])
        with pytest.raises(ValueError, match="order <="):
            error_bound(a, a, iterations=4)


class TestExactSimilaritySpectral:
    def test_unit_norm(self, tiny_pair):
        exact = exact_similarity_spectral(*tiny_pair)
        assert np.linalg.norm(exact) == pytest.approx(1.0)

    def test_agrees_with_deep_power_iteration(self, tiny_pair):
        graph_a, graph_b = tiny_pair
        exact = exact_similarity_spectral(graph_a, graph_b)
        deep = gsim_plus(graph_a, graph_b, iterations=80).similarity
        assert frobenius_error(exact, deep) < 1e-6

    def test_shape(self, tiny_pair):
        graph_a, graph_b = tiny_pair
        exact = exact_similarity_spectral(graph_a, graph_b)
        assert exact.shape == (graph_a.num_nodes, graph_b.num_nodes)
