# Convenience targets for the GSim+ reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench figures accuracy examples all-checks

install:
	$(PYTHON) -m pip install -e '.[dev]'

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m 'not slow'

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	for fig in fig2 fig3 fig4 fig5 fig6 fig7 fig8; do \
		$(PYTHON) -m repro.cli $$fig --scale small --seed 7; \
	done

accuracy:
	$(PYTHON) -m repro.cli accuracy --scale tiny
	$(PYTHON) -m repro.cli bound

examples:
	for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

all-checks: test bench
