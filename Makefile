# Convenience targets for the GSim+ reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench bench-all bench-compression bench-scale bench-scale-gate bench-gate figures accuracy examples all-checks

# Pin BLAS thread pools so benchmark numbers isolate the worker-pool
# sharding from library-internal threading (see docs/usage.md).
BENCH_ENV = OMP_NUM_THREADS=1 OPENBLAS_NUM_THREADS=1 MKL_NUM_THREADS=1 PYTHONPATH=src

# Where `make bench` writes its pytest-benchmark JSON; override with
# `make bench BENCH_OUT=elsewhere.json`.  Defaults to a gitignored file
# under results/ so a fresh run never clobbers the committed
# results/BENCH_core.json baseline the perf gate compares against.
BENCH_OUT ?= results/BENCH_fresh.json

# Committed baseline + candidate path for `make bench-gate`.
BENCH_BASELINE ?= results/BENCH_core.json
BENCH_GATE_OUT ?= results/BENCH_gate_candidate.json

# Default tolerance bands: worker-scaling entries oversubscribe small
# CI hosts and jitter 2-3x run-to-run, so they get a wide band; the
# process-backend entries add fork/IPC jitter on top; the algorithmic
# benchmarks keep the gate's +50% default.
BENCH_GATE_BANDS ?= --band '*_workers*=3.0' --band '*_process*=3.0'

# Where `make bench-scale` writes the thread-vs-process timing and the
# in-memory-vs-mmap RSS comparison (committed baseline for the gate).
BENCH_SCALE_OUT ?= results/BENCH_scale.json
BENCH_SCALE_GATE_OUT ?= results/BENCH_scale_candidate.json

# Where `make bench-compression` writes the exact-vs-compressed
# accuracy/speed curves (committed next to the core bench artifact).
BENCH_COMPRESSION_OUT ?= results/BENCH_compression.json

install:
	$(PYTHON) -m pip install -e '.[dev]'

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m 'not slow'

bench:
	mkdir -p $(dir $(BENCH_OUT))
	$(BENCH_ENV) $(PYTHON) -m pytest \
		benchmarks/test_core_kernels.py \
		benchmarks/test_topk_retrieval.py \
		benchmarks/test_parallel_scan.py \
		--benchmark-only --benchmark-json=$(BENCH_OUT)

bench-all:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-compression:
	mkdir -p $(dir $(BENCH_COMPRESSION_OUT))
	$(BENCH_ENV) $(PYTHON) benchmarks/compression_sweep.py $(BENCH_COMPRESSION_OUT)

bench-scale:
	mkdir -p $(dir $(BENCH_SCALE_OUT))
	$(BENCH_ENV) $(PYTHON) benchmarks/bench_scale.py $(BENCH_SCALE_OUT)

# Compare a fresh scale run against the committed baseline with the
# wide worker/process bands (see scripts/bench_gate.py --help).
bench-scale-gate:
	$(MAKE) bench-scale BENCH_SCALE_OUT=$(BENCH_SCALE_GATE_OUT)
	$(PYTHON) scripts/bench_gate.py \
		--baseline results/BENCH_scale.json --candidate $(BENCH_SCALE_GATE_OUT) \
		$(BENCH_GATE_BANDS)

# CI perf-regression gate: run the core benchmarks fresh, compare
# against the committed baseline with tolerance bands (exit 1 on a
# regression, 2 on unusable input).  See scripts/bench_gate.py --help.
bench-gate:
	$(MAKE) bench BENCH_OUT=$(BENCH_GATE_OUT)
	$(PYTHON) scripts/bench_gate.py \
		--baseline $(BENCH_BASELINE) --candidate $(BENCH_GATE_OUT) \
		$(BENCH_GATE_BANDS)

figures:
	for fig in fig2 fig3 fig4 fig5 fig6 fig7 fig8; do \
		$(PYTHON) -m repro.cli $$fig --scale small --seed 7; \
	done

accuracy:
	$(PYTHON) -m repro.cli accuracy --scale tiny
	$(PYTHON) -m repro.cli bound

examples:
	for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

all-checks: test bench
