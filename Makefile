# Convenience targets for the GSim+ reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench bench-all bench-compression figures accuracy examples all-checks

# Pin BLAS thread pools so benchmark numbers isolate the worker-pool
# sharding from library-internal threading (see docs/usage.md).
BENCH_ENV = OMP_NUM_THREADS=1 OPENBLAS_NUM_THREADS=1 MKL_NUM_THREADS=1 PYTHONPATH=src

# Where `make bench` writes its pytest-benchmark JSON; override with
# `make bench BENCH_OUT=elsewhere.json`.  Defaults under results/ so a
# bench run never dirties the repo root.
BENCH_OUT ?= results/BENCH_core.json

# Where `make bench-compression` writes the exact-vs-compressed
# accuracy/speed curves (committed next to the core bench artifact).
BENCH_COMPRESSION_OUT ?= results/BENCH_compression.json

install:
	$(PYTHON) -m pip install -e '.[dev]'

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m 'not slow'

bench:
	mkdir -p $(dir $(BENCH_OUT))
	$(BENCH_ENV) $(PYTHON) -m pytest \
		benchmarks/test_core_kernels.py \
		benchmarks/test_topk_retrieval.py \
		benchmarks/test_parallel_scan.py \
		--benchmark-only --benchmark-json=$(BENCH_OUT)

bench-all:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-compression:
	mkdir -p $(dir $(BENCH_COMPRESSION_OUT))
	$(BENCH_ENV) $(PYTHON) benchmarks/compression_sweep.py $(BENCH_COMPRESSION_OUT)

figures:
	for fig in fig2 fig3 fig4 fig5 fig6 fig7 fig8; do \
		$(PYTHON) -m repro.cli $$fig --scale small --seed 7; \
	done

accuracy:
	$(PYTHON) -m repro.cli accuracy --scale tiny
	$(PYTHON) -m repro.cli bound

examples:
	for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

all-checks: test bench
