#!/usr/bin/env python
"""Perf-regression gate over pytest-benchmark JSON artifacts.

Compares a candidate benchmark run (``make bench BENCH_OUT=...``) against
a committed baseline (``results/BENCH_core.json``) and fails when any
benchmark regressed beyond its tolerance band:

    candidate_stat > baseline_stat * (1 + tolerance)

Benchmarks are matched by ``fullname`` (file::test[param]); the compared
statistic defaults to ``median`` — the most stable pytest-benchmark stat
on noisy CI hosts.  The default tolerance is deliberately wide (50%)
because shared runners jitter; tighten per benchmark with ``--band``:

    python scripts/bench_gate.py \
        --baseline results/BENCH_core.json \
        --candidate /tmp/BENCH_fresh.json \
        --band 'benchmarks/test_core_kernels.py::*=0.8' \
        --band '*scan_vectorized*=0.3'

``--band GLOB=TOL`` uses ``fnmatch`` globs against the fullname; the
*last* matching band wins, so list general bands before specific ones.

Exit codes: 0 = within bands, 1 = at least one regression, 2 = unusable
input (missing file, malformed JSON, empty overlap).  Improvements and
benchmarks present on only one side never fail the gate (new benchmarks
have no baseline yet; retired ones no longer matter) — they are listed
so a silently shrinking benchmark suite is visible in the log.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from pathlib import Path


def _die(message: str) -> "SystemExit":
    """Unusable input: print and exit 2 (distinct from a regression's 1)."""
    print(message, file=sys.stderr)
    return SystemExit(2)


STATS = ("min", "max", "mean", "median", "stddev", "iqr", "ops")


def load_benchmarks(path: Path) -> dict[str, dict]:
    """Map ``fullname`` -> ``stats`` dict from a pytest-benchmark JSON."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise _die(f"bench-gate: no such file: {path}") from None
    except json.JSONDecodeError as exc:
        raise _die(f"bench-gate: {path} is not valid JSON: {exc}") from None
    benches = raw.get("benchmarks")
    if not isinstance(benches, list):
        raise _die(
            f"bench-gate: {path} has no 'benchmarks' list "
            "(is it a pytest-benchmark artifact?)"
        )
    out: dict[str, dict] = {}
    for bench in benches:
        fullname = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats")
        if fullname and isinstance(stats, dict):
            out[fullname] = stats
    return out


def parse_bands(specs: list[str]) -> list[tuple[str, float]]:
    """``GLOB=TOL`` strings -> (glob, tolerance) pairs, order preserved."""
    bands: list[tuple[str, float]] = []
    for spec in specs:
        glob, sep, tol = spec.rpartition("=")
        if not sep or not glob:
            raise _die(f"bench-gate: bad --band {spec!r}, expected GLOB=TOL")
        try:
            tolerance = float(tol)
        except ValueError:
            raise _die(
                f"bench-gate: bad --band tolerance {tol!r} in {spec!r}"
            ) from None
        if tolerance < 0:
            raise _die(f"bench-gate: negative tolerance in {spec!r}")
        bands.append((glob, tolerance))
    return bands


def tolerance_for(
    fullname: str, default: float, bands: list[tuple[str, float]]
) -> float:
    """Last matching ``--band`` glob wins; otherwise the default."""
    tolerance = default
    for glob, tol in bands:
        if fnmatch.fnmatch(fullname, glob):
            tolerance = tol
    return tolerance


def compare(
    baseline: dict[str, dict],
    candidate: dict[str, dict],
    stat: str,
    default_tolerance: float,
    bands: list[tuple[str, float]],
) -> dict:
    """The full gate verdict as a JSON-serialisable report."""
    shared = sorted(set(baseline) & set(candidate))
    rows = []
    for fullname in shared:
        base = baseline[fullname].get(stat)
        cand = candidate[fullname].get(stat)
        if base is None or cand is None:
            continue
        tolerance = tolerance_for(fullname, default_tolerance, bands)
        limit = base * (1.0 + tolerance)
        # ops is a rate (higher = better); every other stat is seconds.
        if stat == "ops":
            limit = base / (1.0 + tolerance)
            regressed = cand < limit
            ratio = base / cand if cand else float("inf")
        else:
            regressed = cand > limit
            ratio = cand / base if base else float("inf")
        rows.append(
            {
                "fullname": fullname,
                "baseline": base,
                "candidate": cand,
                "ratio": ratio,
                "tolerance": tolerance,
                "regressed": regressed,
            }
        )
    return {
        "stat": stat,
        "compared": len(rows),
        "regressions": [row for row in rows if row["regressed"]],
        "rows": rows,
        "only_in_baseline": sorted(set(baseline) - set(candidate)),
        "only_in_candidate": sorted(set(candidate) - set(baseline)),
    }


def render(report: dict) -> str:
    lines = [
        f"bench-gate: {report['compared']} benchmarks compared "
        f"on stat={report['stat']!r}"
    ]
    for row in report["rows"]:
        flag = "FAIL" if row["regressed"] else "ok  "
        lines.append(
            f"  {flag} {row['fullname']}: "
            f"{row['candidate']:.6g} vs {row['baseline']:.6g} "
            f"(x{row['ratio']:.2f}, band +{row['tolerance']:.0%})"
        )
    for name in report["only_in_baseline"]:
        lines.append(f"  gone {name}: in baseline only (not gated)")
    for name in report["only_in_candidate"]:
        lines.append(f"  new  {name}: in candidate only (no baseline yet)")
    n = len(report["regressions"])
    lines.append(
        "bench-gate: PASS — no regressions beyond tolerance"
        if n == 0
        else f"bench-gate: FAIL — {n} regression(s) beyond tolerance"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--baseline",
        default="results/BENCH_core.json",
        type=Path,
        help="committed pytest-benchmark JSON to gate against",
    )
    parser.add_argument(
        "--candidate",
        required=True,
        type=Path,
        help="fresh pytest-benchmark JSON from this run",
    )
    parser.add_argument(
        "--stat",
        default="median",
        choices=STATS,
        help="stats field to compare (default: median)",
    )
    parser.add_argument(
        "--tolerance",
        default=0.5,
        type=float,
        help="default allowed slowdown fraction (0.5 = +50%%)",
    )
    parser.add_argument(
        "--band",
        action="append",
        default=[],
        metavar="GLOB=TOL",
        help="per-benchmark tolerance override (fnmatch on fullname; "
        "repeatable, last match wins)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the full report as JSON",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        raise _die("bench-gate: --tolerance must be >= 0")

    baseline = load_benchmarks(args.baseline)
    candidate = load_benchmarks(args.candidate)
    report = compare(
        baseline, candidate, args.stat, args.tolerance, parse_bands(args.band)
    )
    if report["compared"] == 0:
        print(
            "bench-gate: no overlapping benchmarks between "
            f"{args.baseline} and {args.candidate}",
            file=sys.stderr,
        )
        return 2
    print(render(report))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"bench-gate: report written to {args.json}")
    return 1 if report["regressions"] else 0


if __name__ == "__main__":
    sys.exit(main())
