"""Figure 8 — peak memory versus query-set size on EE.

GSim+ stores the low-embeddings plus the |Q_A| x |Q_B| output block; the
dense baselines hold the full n_A x n_B matrix regardless of query size.
"""

from __future__ import annotations

import pytest

from repro.experiments import ALGORITHMS, render_records, run_algorithm
from repro.experiments.figures import fig8_memory_vs_queries
from repro.workloads import make_workload

from conftest import FAST_ALGORITHMS


@pytest.mark.parametrize("size", [10, 40, 80])
def test_fig8_gsim_plus_cell(benchmark, size, ee_instance, bench_config):
    """GSim+ memory at query size `size` on EE."""
    graph_a, graph_b, _, _ = ee_instance
    workload = make_workload(graph_a, graph_b, size, size, seed=8)
    spec = ALGORITHMS["GSim+"]

    def cell():
        return run_algorithm(
            spec, graph_a, graph_b, workload.queries_a, workload.queries_b,
            bench_config.iterations,
            memory_budget=bench_config.memory_budget,
            deadline=bench_config.deadline,
            dataset="EE",
        )

    record = benchmark(cell)
    assert record.ok
    benchmark.extra_info["peak_bytes"] = record.memory_bytes


def test_fig8_full_series(benchmark, bench_config, capsys):
    """The complete Figure 8 memory-vs-query-size table on EE."""
    records = benchmark.pedantic(
        fig8_memory_vs_queries,
        args=(bench_config,),
        kwargs={"dataset": "EE", "algorithms": FAST_ALGORITHMS},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(
            render_records(
                records, column_key="q_a", metric="memory",
                title="Figure 8 (memory vs |Q|)",
            )
        )
    by_cell = {(r.algorithm, r.params["q_a"]): r for r in records if r.ok}
    # GSim's dense footprint dwarfs GSim+'s at every query size it survived.
    for (algorithm, size), record in by_cell.items():
        if algorithm == "GSim":
            ours = by_cell.get(("GSim+", size))
            if ours is not None:
                assert ours.memory_bytes < record.memory_bytes
