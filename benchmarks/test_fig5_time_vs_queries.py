"""Figure 5 — time versus query-set size (|Q_A|, |Q_B|).

GSim+ pays the query size only in the final block product; SS-BC* executes
one single-pair query per (a, b) pair and scales with |Q_A| x |Q_B|.
"""

from __future__ import annotations

import pytest

from repro.experiments import ALGORITHMS, render_records, run_algorithm
from repro.experiments.figures import fig5_time_vs_queries
from repro.workloads import make_workload

from conftest import FAST_ALGORITHMS


@pytest.mark.parametrize("size", [10, 40, 80])
@pytest.mark.parametrize("algorithm", ["GSim+", "SS-BC*"])
def test_fig5_cell(benchmark, algorithm, size, ee_instance, bench_config):
    """One Figure 5 cell: `algorithm` with |Q_A| = |Q_B| = `size` on EE."""
    graph_a, graph_b, _, _ = ee_instance
    workload = make_workload(graph_a, graph_b, size, size, seed=8)
    spec = ALGORITHMS[algorithm]

    def cell():
        return run_algorithm(
            spec, graph_a, graph_b, workload.queries_a, workload.queries_b,
            bench_config.iterations,
            memory_budget=bench_config.memory_budget,
            deadline=bench_config.deadline,
            dataset="EE",
        )

    record = benchmark(cell)
    assert record.ok, record.note


def test_fig5_full_series(benchmark, bench_config, capsys):
    """The complete Figure 5 query-size sweep on EE."""
    records = benchmark.pedantic(
        fig5_time_vs_queries,
        args=(bench_config,),
        kwargs={"dataset": "EE", "algorithms": FAST_ALGORITHMS},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(
            render_records(
                records, column_key="q_a", metric="time",
                title="Figure 5 (time vs |Q|)",
            )
        )
