"""Figure 4 — time versus |V_B| (the sampled subgraph size).

GSim+ should be nearly flat in |V_B| while GSim's dense iterate makes it
superlinear.  Cells sample G_B at increasing fractions of G_A.
"""

from __future__ import annotations

import pytest

from repro.experiments import ALGORITHMS, render_records, run_algorithm
from repro.experiments.figures import fig4_time_vs_nb
from repro.graphs import load_dataset, random_node_sample
from repro.workloads import make_workload

from conftest import FAST_ALGORITHMS


@pytest.mark.parametrize("fraction", [0.1, 0.4, 0.8])
@pytest.mark.parametrize("algorithm", ["GSim+", "GSim"])
def test_fig4_cell(benchmark, algorithm, fraction, bench_config):
    """One Figure 4 cell: `algorithm` with |V_B| = fraction * |V_A| on EE."""
    graph_a = load_dataset("EE", scale="tiny", seed=7)
    graph_b = random_node_sample(
        graph_a, max(16, int(graph_a.num_nodes * fraction)), seed=20
    )
    workload = make_workload(graph_a, graph_b, 20, 20, seed=8)
    spec = ALGORITHMS[algorithm]

    def cell():
        return run_algorithm(
            spec, graph_a, graph_b, workload.queries_a, workload.queries_b,
            bench_config.iterations,
            memory_budget=bench_config.memory_budget,
            deadline=bench_config.deadline,
            dataset="EE",
        )

    record = benchmark(cell)
    assert record.ok, record.note


def test_fig4_full_series(benchmark, bench_config, capsys):
    """The complete Figure 4 sweep over |V_B| fractions on EE."""
    records = benchmark.pedantic(
        fig4_time_vs_nb,
        args=(bench_config,),
        kwargs={"dataset": "EE", "algorithms": FAST_ALGORITHMS},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(
            render_records(
                records, column_key="n_b", metric="time",
                title="Figure 4 (time vs |V_B|)",
            )
        )
