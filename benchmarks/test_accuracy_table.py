"""§5.2.3 accuracy table — ||S_k - S||_F for GSim+/GSim vs GSVD ranks.

Regenerates the paper's accuracy table on the scaled HP dataset and checks
its three findings: (1) GSVD error exceeds GSim+'s at every rank, (2) the
GSim+ and GSim errors are identical (Theorem 3.1), (3) error decays with k.
"""

from __future__ import annotations

from repro.experiments.tables import accuracy_table, render_accuracy_table


def test_accuracy_table(benchmark, capsys):
    """Regenerate and validate the accuracy table (k = 4..20, r = 5/10/50)."""
    table = benchmark.pedantic(
        accuracy_table,
        kwargs=dict(
            k_values=(4, 8, 12, 16, 20),
            ranks=(5, 10, 50),
            reference_iterations=100,
            dataset="HP",
            scale="tiny",
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_accuracy_table(table))
        print(f"max |GSim+ - GSim| error gap: {table.max_equivalence_gap():.2e}")

    # Finding 2 of §5.2.3: identical errors at every iteration.
    assert table.max_equivalence_gap() < 1e-9
    # Finding 1: GSVD consistently above GSim+ regardless of rank.
    for rank, errors in table.gsvd_errors.items():
        for ours, theirs in zip(table.gsim_plus_errors, errors):
            assert theirs >= ours - 1e-9, f"GSVD r={rank} beat the exact method"
    # Finding 3: error decays as k grows.
    assert table.gsim_plus_errors[-1] < table.gsim_plus_errors[0]
