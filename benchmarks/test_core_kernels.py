"""Micro-benchmarks of the kernels Theorem 4.1's analysis is built on.

Not a paper figure, but the numbers behind GSim+'s complexity claims: the
factored iteration step, the Gram-trick Frobenius norm, and the query
block extraction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GSimPlus, LowRankFactors
from repro.graphs import load_dataset_pair


@pytest.fixture(scope="module")
def pair():
    return load_dataset_pair("EE", scale="tiny", seed=7)


def test_factored_step(benchmark, pair):
    """One U_k/V_k doubling step (lines 3-5 of Algorithm 1) at width 64."""
    graph_a, graph_b = pair
    solver = GSimPlus(graph_a, graph_b, rank_cap="none")
    state = None
    for state in solver.iterate(6):
        pass
    factors = state.factors
    benchmark(solver._step_factors, factors)


def test_gram_frobenius_norm(benchmark, pair):
    """||U V^T||_F via the Gram trick (never materialises the product)."""
    graph_a, graph_b = pair
    rng = np.random.default_rng(0)
    factors = LowRankFactors(
        rng.standard_normal((graph_a.num_nodes, 128)),
        rng.standard_normal((graph_b.num_nodes, 128)),
    )
    result = benchmark(factors.frobenius_norm)
    assert result > 0


def test_query_block_extraction(benchmark, pair):
    """Line 6 of Algorithm 1: the |Q_A| x |Q_B| block from the factors."""
    graph_a, graph_b = pair
    rng = np.random.default_rng(0)
    factors = LowRankFactors(
        rng.standard_normal((graph_a.num_nodes, 128)),
        rng.standard_normal((graph_b.num_nodes, 128)),
    )
    rows = np.arange(min(50, graph_a.num_nodes))
    cols = np.arange(min(50, graph_b.num_nodes))
    block = benchmark(factors.query_block, rows, cols)
    assert block.shape == (rows.size, cols.size)


def test_dense_gsim_step_for_contrast(benchmark, pair):
    """The dense update GSim pays per iteration, for comparison."""
    from repro.baselines.gsim import _step

    graph_a, graph_b = pair
    similarity = np.ones((graph_a.num_nodes, graph_b.num_nodes))
    benchmark(_step, graph_a, graph_b, similarity)
