"""Exact-vs-compressed accuracy/speed curves for factor recompression.

Standalone script (not a pytest-benchmark suite): sweeps the
recompression tolerance and the precision policy over the bench dataset
pairs and writes one JSON document of curves —

* factor width after K iterations (the ``2^k``-schedule vs numerical
  rank),
* median iterate wall time and factor bytes,
* max / mean absolute similarity error against the exact float64 run,
* the Theorem 4.2 spectral bound for the same K, as the reference line.

Run via ``make bench-compression`` (pins BLAS threads, writes
``results/BENCH_compression.json``) or directly::

    PYTHONPATH=src python benchmarks/compression_sweep.py [output.json]

The JSON is committed next to the other bench artifacts so accuracy
regressions in the recompression path show up in review diffs.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.error_bound import error_bound
from repro.core.gsim_plus import GSimPlus
from repro.graphs import load_dataset_pair

DATASETS = ("HP", "EE")
ITERATIONS = 8
TOLERANCES = (1e-10, 1e-8, 1e-6, 1e-4, 1e-2)
REPEATS = 5


def _run(graph_a, graph_b, queries_a, queries_b, **solver_kwargs):
    """One measured solve: (result, median seconds over REPEATS)."""
    timings = []
    result = None
    for _ in range(REPEATS):
        solver = GSimPlus(graph_a, graph_b, rank_cap="qr-compress", **solver_kwargs)
        start = time.perf_counter()
        result = solver.run(ITERATIONS, queries_a=queries_a, queries_b=queries_b)
        timings.append(time.perf_counter() - start)
    return result, statistics.median(timings)


def bound_check(dataset: str) -> dict:
    """Theorem 4.2 validation on a reduced companion pair.

    The full-spectrum bound needs ``n_A * n_B <= 4000``, far below the
    bench pairs, so G_A is reduced to its highest-degree induced
    subgraph (hubs keep the walk structure alive through K iterations,
    unlike a random node sample) and the recompressed error is measured
    on that same pair — error and bound stay comparable.
    """
    full_a, graph_b = load_dataset_pair(dataset, scale="tiny", seed=7)
    size = max(2, 4000 // graph_b.num_nodes)
    degrees = (
        np.asarray(full_a.adjacency.sum(axis=1)).ravel()
        + np.asarray(full_a.adjacency.sum(axis=0)).ravel()
    )
    hubs = sorted(int(node) for node in np.argsort(-degrees)[:size])
    graph_a = full_a.subgraph(hubs)
    queries_a = np.arange(graph_a.num_nodes)
    queries_b = np.arange(graph_b.num_nodes)
    # Theorem 4.2 needs an even iteration count; ITERATIONS is even.
    bound = error_bound(graph_a, graph_b, ITERATIONS)
    exact, _ = _run(graph_a, graph_b, queries_a, queries_b)
    checks = []
    for tol in TOLERANCES:
        result, _ = _run(
            graph_a, graph_b, queries_a, queries_b, recompress_tol=tol
        )
        max_error = float(
            np.abs(
                np.asarray(result.similarity, dtype=np.float64)
                - exact.similarity
            ).max()
        )
        checks.append(
            {
                "tolerance": tol,
                "max_error": max_error,
                "within_bound": bool(max_error <= bound),
            }
        )
    return {
        "n_a": graph_a.num_nodes,
        "n_b": graph_b.num_nodes,
        "theorem_4_2_bound": bound,
        "checks": checks,
    }


def sweep_dataset(dataset: str) -> dict:
    graph_a, graph_b = load_dataset_pair(dataset, scale="tiny", seed=7)
    queries_a = np.arange(min(30, graph_a.num_nodes))
    queries_b = np.arange(min(30, graph_b.num_nodes))
    exact, exact_seconds = _run(graph_a, graph_b, queries_a, queries_b)

    def _point(result, seconds, label):
        error = np.abs(
            np.asarray(result.similarity, dtype=np.float64) - exact.similarity
        )
        return {
            "label": label,
            "precision": result.precision,
            "final_width": result.final_width,
            "seconds_median": seconds,
            "max_error": float(error.max()),
            "mean_error": float(error.mean()),
            "truncation": (
                result.truncation.to_dict()
                if result.truncation is not None
                else None
            ),
        }

    points = [_point(exact, exact_seconds, "exact-float64")]
    for tol in TOLERANCES:
        result, seconds = _run(
            graph_a, graph_b, queries_a, queries_b, recompress_tol=tol
        )
        points.append(_point(result, seconds, f"recompress-{tol:.0e}"))
    result, seconds = _run(
        graph_a, graph_b, queries_a, queries_b,
        recompress_tol=1e-6, precision="float32",
    )
    points.append(_point(result, seconds, "recompress-1e-06-float32"))
    return {
        "dataset": dataset,
        "n_a": graph_a.num_nodes,
        "n_b": graph_b.num_nodes,
        "iterations": ITERATIONS,
        "doubling_width": 2**ITERATIONS,
        "points": points,
        "bound_check": bound_check(dataset),
    }


def main(argv: list[str]) -> int:
    output = Path(argv[1]) if len(argv) > 1 else Path("results/BENCH_compression.json")
    document = {
        "schema": "bench-compression-v1",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "repeats": REPEATS,
        "datasets": [sweep_dataset(dataset) for dataset in DATASETS],
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    for sweep in document["datasets"]:
        check = sweep["bound_check"]
        print(
            f"{sweep['dataset']}: doubling_width={sweep['doubling_width']} "
            f"bound={check['theorem_4_2_bound']:.3e} "
            f"(on {check['n_a']}x{check['n_b']} companion)"
        )
        for point in sweep["points"]:
            print(
                f"  {point['label']:>26}  width={point['final_width']:>4}  "
                f"t={point['seconds_median'] * 1e3:7.2f}ms  "
                f"max_err={point['max_error']:.3e}"
            )
        if not all(entry["within_bound"] for entry in check["checks"]):
            print("  WARNING: recompressed error exceeded the Theorem 4.2 bound")
    print(f"curves written to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
