"""Thread-vs-process backend timing and out-of-core RSS comparison.

Standalone script (not a pytest-benchmark suite) with two halves:

* **GIL-bound kernel timing** — the top-k scan over precomputed GSim+
  factors with a tiny ``block_rows``, so per-row Python work (argpartition,
  heap candidates) dominates and shard payloads are tiny (a k-heap per
  shard).  Measured serial, with 2 worker threads, and with 2 worker
  processes, in interleaved rounds so host noise hits every variant
  equally.  When ``/dev/shm`` exists, factor spills go through it, making
  descriptor shipping an in-memory transport.  On a multi-core host the
  thread variant plateaus at the GIL while processes scale with cores;
  on a single-core host the expected signature is parity (GIL handoff
  and IPC overheads are both small and neither backend can physically
  overlap shards) — ``machine_info.cpu_count`` records which regime
  produced the committed numbers.
* **Resident-set comparison** — the same blocked SpMM workload run in
  two fresh child processes over the same converted multi-million-edge
  artifact: one materialises the CSR arrays on the heap, one keeps them
  mmap-backed and drops clean pages (``release_pages``) after every
  block.  Peak-RSS deltas over the post-import baseline come from
  :class:`repro.runtime.ResourceMonitor` (``/proc/self/status``).

The output is pytest-benchmark-shaped JSON (``benchmarks[].fullname`` +
``stats``) so ``scripts/bench_gate.py`` can gate it; the RSS section
rides along under ``memory``.  Run via ``make bench-scale`` (pins BLAS
threads, writes ``results/BENCH_scale.json``) or directly::

    PYTHONPATH=src python benchmarks/bench_scale.py [output.json]
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

FULLNAME = "benchmarks/bench_scale.py::{name}"

# Timing half: factors from a synthetic rmat pair, then a scan whose
# per-shard result is a k-heap (tiny pickle payload either way).
TIMING_SCALE_A = 15
TIMING_SCALE_B = 13
TIMING_EDGES_A = 240_000
TIMING_EDGES_B = 72_000
TIMING_ITERATIONS = 4
TIMING_BLOCK_ROWS = 2
TIMING_K = 100
ROUNDS = 9

# RSS half: a multi-million-edge synthetic graph, converted once and
# shared by both children.
RSS_SCALE = 21  # 2**21 nodes
RSS_EDGES = 8_000_000
RSS_SEED = 99
RSS_BLOCK_NNZ = 1 << 18  # ~3 MiB of data+indices per block
RSS_DENSE_WIDTH = 1
RSS_PASSES = 2


def _stats(samples: list[float]) -> dict:
    ordered = sorted(samples)
    n = len(ordered)
    median = statistics.median(ordered)
    q1 = ordered[max(0, (n - 1) // 4)]
    q3 = ordered[min(n - 1, (3 * (n - 1)) // 4)]
    return {
        "min": ordered[0],
        "max": ordered[-1],
        "mean": statistics.fmean(ordered),
        "median": median,
        "stddev": statistics.pstdev(ordered) if n > 1 else 0.0,
        "iqr": q3 - q1,
        "ops": (1.0 / median) if median > 0 else 0.0,
        "rounds": n,
    }


def _bench_entry(name: str, samples: list[float], **extra) -> dict:
    return {
        "name": name,
        "fullname": FULLNAME.format(name=name),
        "stats": _stats(samples),
        "extra_info": extra,
    }


# ---------------------------------------------------------------------------
# timing half
# ---------------------------------------------------------------------------


def run_timing() -> list[dict]:
    from repro.core.topk import _factors_for, scan_top_pairs
    from repro.graphs.generators import rmat_graph
    from repro.runtime import WorkerPool

    print("building factors for the scan kernel ...", file=sys.stderr)
    graph_a = rmat_graph(TIMING_SCALE_A, TIMING_EDGES_A, seed=31, name="bench-A")
    graph_b = rmat_graph(TIMING_SCALE_B, TIMING_EDGES_B, seed=32, name="bench-B")
    factors = _factors_for(graph_a, graph_b, TIMING_ITERATIONS)

    def one(pool) -> float:
        start = time.perf_counter()
        scan_top_pairs(
            factors,
            k=TIMING_K,
            block_rows=TIMING_BLOCK_ROWS,
            max_workers=pool,
        )
        return time.perf_counter() - start

    variants = {
        "topk_scan_serial": None,
        "topk_scan_thread_workers2": WorkerPool(max_workers=2, backend="thread"),
        "topk_scan_process_workers2": WorkerPool(max_workers=2, backend="process"),
    }
    samples: dict[str, list[float]] = {name: [] for name in variants}
    try:
        for pool in variants.values():
            one(pool)  # warm-up: primes the process pool and page cache
        # Interleave rounds so host-level noise (frequency scaling,
        # neighbours) is shared across variants instead of biasing
        # whichever one ran last.
        for _ in range(ROUNDS):
            for name, pool in variants.items():
                samples[name].append(one(pool))
    finally:
        for pool in variants.values():
            if pool is not None:
                pool.shutdown()

    entries = []
    for name, pool in variants.items():
        entries.append(
            _bench_entry(
                name,
                samples[name],
                backend=pool.backend if pool is not None else "serial",
                workers=pool.max_workers if pool is not None else 1,
                rows=int(factors.shape[0]),
                cols=int(factors.shape[1]),
                width=int(factors.width),
                block_rows=TIMING_BLOCK_ROWS,
            )
        )
        print(
            f"{name}: median {statistics.median(samples[name]):.3f}s "
            f"over {ROUNDS} interleaved rounds",
            file=sys.stderr,
        )
    return entries


# ---------------------------------------------------------------------------
# RSS half (parent orchestration + --child worker)
# ---------------------------------------------------------------------------


def child_main(mode: str, root: str) -> int:
    """Fresh-process workload: blocked SpMM over the converted artifact.

    Both modes run the identical nnz-bounded blocked SpMM over zero-copy
    CSR views (scipy row slicing would heap-copy each block); the only
    difference is where the arrays live — the heap, or the mapping with
    clean pages dropped after every block.
    """
    from repro.graphs import MmapCSRGraph
    from repro.runtime import Metrics, ResourceMonitor
    from repro.runtime.procpool import csr_from_arrays

    monitor = ResourceMonitor(Metrics())
    baseline = monitor.sample()["process.rss_bytes"]

    graph = MmapCSRGraph(root)
    indptr = graph.adjacency.indptr
    indices = graph.adjacency.indices
    data = graph.adjacency.data
    if mode == "inmem":
        # Same arrays, materialised on the heap: the in-memory footprint
        # the mmap representation is being compared against.  Copy in
        # chunks and drop the clean mapped pages as we go, so the peak
        # reflects heap residency rather than the copy transient.
        def materialise(array):
            out = np.empty(array.shape, array.dtype)
            step = max(1, (32 << 20) // array.itemsize)
            for lo in range(0, array.shape[0], step):
                out[lo : lo + step] = array[lo : lo + step]
                graph.release_pages()
            return out

        indptr, indices, data = (
            materialise(indptr),
            materialise(indices),
            materialise(data),
        )

    n = graph.num_nodes
    # Row blocks bounded by stored entries, not row count: power-law
    # graphs concentrate most of the nnz in the hub rows, and a bounded
    # working set is the point of the out-of-core path.
    bounds = np.searchsorted(
        indptr, np.arange(0, indptr[-1] + RSS_BLOCK_NNZ, RSS_BLOCK_NNZ)
    )
    bounds = np.unique(np.clip(bounds, 0, n))
    if not bounds.size or bounds[-1] != n:
        bounds = np.append(bounds, n)

    rng = np.random.default_rng(7)
    dense = rng.standard_normal((n, RSS_DENSE_WIDTH))
    checksum = 0.0
    for _ in range(RSS_PASSES):
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            start, stop = int(indptr[lo]), int(indptr[hi])
            block = csr_from_arrays(
                indptr[lo : hi + 1] - indptr[lo],
                indices[start:stop],
                data[start:stop],
                (int(hi - lo), n),
            )
            checksum += float((block @ dense).sum())
            if mode == "mmap":
                graph.release_pages()
            monitor.sample()

    final = monitor.sample()
    print(
        json.dumps(
            {
                "mode": mode,
                "baseline_rss_bytes": baseline,
                "peak_rss_bytes": final["process.peak_rss_bytes"],
                "peak_delta_bytes": final["process.peak_rss_bytes"] - baseline,
                "checksum": checksum,
            }
        )
    )
    return 0


def run_rss(script: Path) -> dict:
    from repro.graphs import MmapCSRGraph
    from repro.graphs.generators import rmat_graph

    results = {}
    # Keep the artifact on disk even when factor spills use /dev/shm:
    # the RSS comparison is about paging against a disk-backed file.
    scratch_dir = "/var/tmp" if os.path.isdir("/var/tmp") else None
    with tempfile.TemporaryDirectory(
        prefix="bench-scale-", dir=scratch_dir
    ) as tmp:
        root = Path(tmp) / "artifact"
        print(
            f"generating rmat graph (2**{RSS_SCALE} nodes, "
            f"{RSS_EDGES} edges) ...",
            file=sys.stderr,
        )
        graph = rmat_graph(RSS_SCALE, RSS_EDGES, seed=RSS_SEED, name="rss-bench")
        MmapCSRGraph.from_graph(graph, root)
        del graph
        for mode in ("inmem", "mmap"):
            proc = subprocess.run(
                [sys.executable, str(script), "--child", mode, str(root)],
                capture_output=True,
                text=True,
                check=True,
            )
            results[mode] = json.loads(proc.stdout)
            print(
                f"rss[{mode}]: peak delta "
                f"{results[mode]['peak_delta_bytes'] / 2**20:.1f} MiB",
                file=sys.stderr,
            )
    if results["inmem"]["checksum"] != results["mmap"]["checksum"]:
        raise AssertionError(
            "in-memory and mmap workloads disagree: "
            f"{results['inmem']['checksum']} vs {results['mmap']['checksum']}"
        )
    return results


def main(argv: list[str]) -> int:
    if len(argv) >= 3 and argv[0] == "--child":
        return child_main(argv[1], argv[2])

    # Spill factor blocks through shared memory when the host offers it:
    # descriptor shipping then never touches a disk.
    if os.path.isdir("/dev/shm") and os.access("/dev/shm", os.W_OK):
        tempfile.tempdir = "/dev/shm"

    out = Path(argv[0]) if argv else Path("results/BENCH_scale.json")
    script = Path(__file__).resolve()

    entries = run_timing()
    rss = run_rss(script)
    for mode in ("inmem", "mmap"):
        entries.append(
            _bench_entry(
                f"rss_{mode}_peak_delta_bytes",
                [float(rss[mode]["peak_delta_bytes"])],
                unit="bytes",
            )
        )

    cpu_count = os.cpu_count() or 1
    document = {
        "machine_info": {
            "node": platform.node(),
            "processor": platform.processor(),
            "python_version": platform.python_version(),
            "cpu_count": cpu_count,
            "note": (
                "single-core host: thread and process backends measure at "
                "parity on the GIL-bound scan (neither can overlap shards); "
                "with >1 core the thread variant plateaus at the GIL while "
                "the process variant scales"
            )
            if cpu_count == 1
            else "multi-core host",
        },
        "config": {
            "timing": {
                "iterations": TIMING_ITERATIONS,
                "block_rows": TIMING_BLOCK_ROWS,
                "k": TIMING_K,
                "rounds": ROUNDS,
            },
            "rss": {
                "scale": RSS_SCALE,
                "edges": RSS_EDGES,
                "block_nnz": RSS_BLOCK_NNZ,
                "passes": RSS_PASSES,
            },
        },
        "memory": rss,
        "benchmarks": entries,
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
