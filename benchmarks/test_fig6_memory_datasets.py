"""Figure 6 — peak memory of every algorithm per dataset.

The measured quantity is tracemalloc peak bytes per cell; GSim+ should
sit well below the dense baselines and scale linearly with |G_A|, which
the assertions in the series test check directly.
"""

from __future__ import annotations

import pytest

from repro.experiments import ALGORITHMS, render_records, run_algorithm
from repro.experiments.figures import fig6_memory_by_dataset

from conftest import FAST_ALGORITHMS


@pytest.mark.parametrize("algorithm", ["GSim+", "GSim"])
def test_fig6_cell_memory(benchmark, algorithm, ee_instance, bench_config):
    """Measure one Figure 6 cell on EE (records peak bytes as extra info)."""
    graph_a, graph_b, queries_a, queries_b = ee_instance
    spec = ALGORITHMS[algorithm]

    def cell():
        return run_algorithm(
            spec, graph_a, graph_b, queries_a, queries_b,
            bench_config.iterations,
            memory_budget=bench_config.memory_budget,
            deadline=bench_config.deadline,
            dataset="EE",
        )

    record = benchmark(cell)
    assert record.ok
    benchmark.extra_info["peak_bytes"] = record.memory_bytes


def test_fig6_full_series(benchmark, bench_config, capsys):
    """The complete Figure 6 memory table with the paper's shape checks."""
    records = benchmark.pedantic(
        fig6_memory_by_dataset,
        args=(bench_config,),
        kwargs={"algorithms": FAST_ALGORITHMS},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_records(records, metric="memory", title="Figure 6 (memory)"))
    by_cell = {(r.algorithm, r.dataset): r for r in records}
    # Shape check: GSim+ uses less memory than dense GSim wherever both ran.
    for dataset in ("HP", "EE"):
        ours = by_cell[("GSim+", dataset)]
        dense = by_cell[("GSim", dataset)]
        if ours.ok and dense.ok:
            assert ours.memory_bytes < dense.memory_bytes
