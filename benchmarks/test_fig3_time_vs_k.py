"""Figure 3 — time versus iteration count k.

The paper sweeps k = 2..10 and shows GSim+ growing mildly while the dense
and per-pair baselines blow up.  Each benchmark times one (algorithm, k)
cell on the scaled EE dataset; the series test prints the full table.
"""

from __future__ import annotations

import pytest

from repro.experiments import ALGORITHMS, render_records, run_algorithm
from repro.experiments.figures import fig3_time_vs_k

from conftest import FAST_ALGORITHMS


@pytest.mark.parametrize("k", [2, 6, 10])
@pytest.mark.parametrize("algorithm", ["GSim+", "GSim"])
def test_fig3_cell(benchmark, algorithm, k, ee_instance, bench_config):
    """One Figure 3 cell: `algorithm` at iteration count `k` on EE."""
    graph_a, graph_b, queries_a, queries_b = ee_instance
    spec = ALGORITHMS[algorithm]

    def cell():
        return run_algorithm(
            spec, graph_a, graph_b, queries_a, queries_b, k,
            memory_budget=bench_config.memory_budget,
            deadline=bench_config.deadline,
            dataset="EE",
        )

    record = benchmark(cell)
    assert record.ok, record.note


def test_fig3_full_series(benchmark, bench_config, capsys):
    """The complete Figure 3 sweep (k = 2..10) on EE."""
    records = benchmark.pedantic(
        fig3_time_vs_k,
        args=(bench_config,),
        kwargs={"dataset": "EE", "algorithms": FAST_ALGORITHMS},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(
            render_records(
                records, column_key="k", metric="time", title="Figure 3 (time vs k)"
            )
        )
