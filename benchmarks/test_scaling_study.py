"""Scalability benchmark — GSim+ time versus graph size.

The quantitative backing for the paper's §5.2.1 claim that "GSim+ time
rises in proportion to the size |G_A|" (and, by Theorem 4.1, for the
billion-edge extrapolation): a geometric sweep of R-MAT graphs is timed
and the log-log exponent of time against edges is fitted.  Near 1 means
linear scaling.
"""

from __future__ import annotations

from repro.experiments.scaling import scaling_study


def test_gsim_plus_scaling_exponent(benchmark, capsys):
    """Fit the time-vs-edges exponent over a 16x edge range."""
    study = benchmark.pedantic(
        scaling_study,
        kwargs=dict(
            scales=(9, 10, 11, 12, 13),
            edges_per_node=12.0,
            iterations=7,
            query_size=100,
            sample_size=256,
            seed=7,
            repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\nGSim+ scaling study (R-MAT, k=7):")
        for point in study.points:
            print(
                f"  n={point.nodes:>6,}  m={point.edges:>9,}  "
                f"time={point.seconds * 1e3:8.2f} ms"
            )
        print(f"  fitted log-log exponent: {study.exponent:.3f} (1.0 = linear)")
    # The paper's claim, with slack for constant overheads at small sizes.
    assert study.is_near_linear(tolerance=0.5), study.exponent
