"""Benchmarks for the parallel execution engine (PR: worker pools).

An R-MAT pair sized so the blocked top-k scan dominates (n_A + n_B ≈
20k nodes): the factors are prebuilt once, so every benchmark times only
the kernel under study.

Three comparisons land in ``results/BENCH_core.json``:

* **legacy vs vectorised selection** — the pre-worker-pool scan loops
  (full ``np.argsort`` block sorts + per-entry Python heap pushes, and
  per-row full sorts for query rankings) against the
  ``np.argpartition``-based replacements.  This is the algorithmic win;
  it holds on a single core.
* **serial vs ``max_workers`` ∈ {2, 4}** — the same scan through
  :class:`repro.runtime.WorkerPool`.  Thread scaling only materialises
  on multi-core hosts; on a single-CPU runner these entries document
  the (small) sharding overhead instead.  Results are asserted
  equivalent in every case.
* **factor step serial vs sharded** — the row-sharded SpMM doubling
  step.

Run via ``make bench`` (pinned BLAS thread env) to refresh the JSON.
"""

from __future__ import annotations

import heapq

import numpy as np
import pytest

from repro.core.embeddings import LowRankFactors
from repro.core.gsim_plus import GSimPlus
from repro.core.topk import _row_top_k, scan_top_pairs
from repro.graphs.generators import rmat_graph

K_PAIRS = 100
K_PER_QUERY = 10
BLOCK_ROWS = 1024


@pytest.fixture(scope="module")
def pair():
    graph_a = rmat_graph(14, 131_072, seed=7, name="rmat-A")   # n_A = 16384
    graph_b = rmat_graph(11, 8_192, seed=8, name="rmat-B")     # n_B = 2048
    return graph_a, graph_b


@pytest.fixture(scope="module")
def factors(pair) -> LowRankFactors:
    """Width-8 factors (3 doubling steps), built once for every scan."""
    graph_a, graph_b = pair
    solver = GSimPlus(graph_a, graph_b, rank_cap="qr-compress")
    state = None
    for state in solver.iterate(3):
        pass
    assert state is not None and state.factors is not None
    return state.factors


def _legacy_top_k_pairs(factors: LowRankFactors, k: int, block_rows: int):
    """The pre-PR ``top_k_pairs`` scan loop, verbatim: full stable argsort
    to seed the heap, then per-entry Python ``heappushpop`` displacement."""
    n_a, n_b = factors.shape
    heap: list[tuple[float, int, int]] = []
    v_t = factors.v.T
    for start in range(0, n_a, block_rows):
        stop = min(start + block_rows, n_a)
        block = factors.u[start:stop] @ v_t
        if len(heap) < k:
            flat = np.argsort(-block, axis=None, kind="stable")[:k]
            for index in flat:
                row, col = divmod(int(index), n_b)
                entry = (float(block[row, col]), start + row, col)
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                else:
                    heapq.heappushpop(heap, entry)
            continue
        threshold = heap[0][0]
        rows, cols = np.nonzero(block > threshold)
        for row, col in zip(rows, cols):
            entry = (float(block[row, col]), start + int(row), int(col))
            if entry[0] > heap[0][0]:
                heapq.heappushpop(heap, entry)
    return sorted(heap, key=lambda item: (-item[0], item[1], item[2]))


def _scores(pairs) -> np.ndarray:
    return np.sort([p.score if hasattr(p, "score") else p[0] for p in pairs])


# ----------------------------------------------------------------------
# Global top-k scan
# ----------------------------------------------------------------------
def test_scan_legacy_fullsort(benchmark, factors):
    result = benchmark.pedantic(
        _legacy_top_k_pairs, args=(factors, K_PAIRS, BLOCK_ROWS),
        rounds=3, warmup_rounds=1,
    )
    assert len(result) == K_PAIRS


def test_scan_vectorized_serial(benchmark, factors):
    result = benchmark.pedantic(
        scan_top_pairs, args=(factors, K_PAIRS),
        kwargs={"block_rows": BLOCK_ROWS, "max_workers": 1},
        rounds=3, warmup_rounds=1,
    )
    assert len(result) == K_PAIRS
    legacy = _legacy_top_k_pairs(factors, K_PAIRS, BLOCK_ROWS)
    assert np.allclose(_scores(result), _scores(legacy))


@pytest.mark.parametrize("workers", [2, 4])
def test_scan_vectorized_workers(benchmark, factors, workers):
    result = benchmark.pedantic(
        scan_top_pairs, args=(factors, K_PAIRS),
        kwargs={"block_rows": BLOCK_ROWS, "max_workers": workers},
        rounds=3, warmup_rounds=1,
    )
    assert result == scan_top_pairs(
        factors, K_PAIRS, block_rows=BLOCK_ROWS, max_workers=1
    )


# ----------------------------------------------------------------------
# Per-query ranking selection (legacy per-row full sort vs argpartition)
# ----------------------------------------------------------------------
def _rank_rows_legacy(block: np.ndarray, k: int):
    return [np.argsort(-block[i], kind="stable")[:k] for i in range(block.shape[0])]


def _rank_rows_vectorized(block: np.ndarray, k: int):
    return [_row_top_k(block[i], k) for i in range(block.shape[0])]


@pytest.fixture(scope="module")
def query_block(factors) -> np.ndarray:
    rows = np.arange(0, factors.shape[0], 4)  # 4096 query rows
    return factors.u[rows] @ factors.v.T


def test_query_ranking_legacy_argsort(benchmark, query_block):
    result = benchmark.pedantic(
        _rank_rows_legacy, args=(query_block, K_PER_QUERY),
        rounds=3, warmup_rounds=1,
    )
    assert len(result) == query_block.shape[0]


def test_query_ranking_argpartition(benchmark, query_block):
    result = benchmark.pedantic(
        _rank_rows_vectorized, args=(query_block, K_PER_QUERY),
        rounds=3, warmup_rounds=1,
    )
    legacy = _rank_rows_legacy(query_block, K_PER_QUERY)
    assert all(np.array_equal(got, want) for got, want in zip(result, legacy))


# ----------------------------------------------------------------------
# Factor doubling step
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 4])
def test_factor_step_workers(benchmark, pair, workers):
    graph_a, graph_b = pair
    solver = GSimPlus(graph_a, graph_b, rank_cap="qr-compress", max_workers=workers)
    base = LowRankFactors(
        np.ones((graph_a.num_nodes, 8)), np.ones((graph_b.num_nodes, 8))
    )
    result = benchmark.pedantic(
        solver._step_factors, args=(base,), rounds=3, warmup_rounds=1
    )
    assert result.width == 16
