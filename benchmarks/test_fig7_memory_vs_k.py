"""Figure 7 — peak memory versus iteration count k on EE.

GSim+'s factor width doubles with k until the rank cap, so its memory
rises geometrically then plateaus; GSim's dense iterate is flat (and huge).
"""

from __future__ import annotations

import pytest

from repro.experiments import ALGORITHMS, render_records, run_algorithm
from repro.experiments.figures import fig7_memory_vs_k

from conftest import FAST_ALGORITHMS


@pytest.mark.parametrize("k", [2, 6, 10])
def test_fig7_gsim_plus_cell(benchmark, k, ee_instance, bench_config):
    """GSim+ memory at iteration count `k` on EE."""
    graph_a, graph_b, queries_a, queries_b = ee_instance
    spec = ALGORITHMS["GSim+"]

    def cell():
        return run_algorithm(
            spec, graph_a, graph_b, queries_a, queries_b, k,
            memory_budget=bench_config.memory_budget,
            deadline=bench_config.deadline,
            dataset="EE",
        )

    record = benchmark(cell)
    assert record.ok
    benchmark.extra_info["peak_bytes"] = record.memory_bytes


def test_fig7_full_series(benchmark, bench_config, capsys):
    """The complete Figure 7 memory-vs-k table on EE."""
    records = benchmark.pedantic(
        fig7_memory_vs_k,
        args=(bench_config,),
        kwargs={"dataset": "EE", "algorithms": FAST_ALGORITHMS},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(
            render_records(
                records, column_key="k", metric="memory",
                title="Figure 7 (memory vs k)",
            )
        )
    plus = [r for r in records if r.algorithm == "GSim+" and r.ok]
    # Memory grows with k while the factor width doubles.
    assert plus[-1].memory_bytes >= plus[0].memory_bytes
