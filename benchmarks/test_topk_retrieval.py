"""Benchmarks for the top-k retrieval extension.

Not a paper figure: these quantify the retrieval primitive the paper's
title implies — serving rankings from the precomputed factors versus
materialising the dense similarity and sorting it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.gsim import gsim
from repro.core import GSimPlus, top_k_for_queries, top_k_pairs
from repro.graphs import load_dataset_pair


@pytest.fixture(scope="module")
def pair():
    return load_dataset_pair("EE", scale="tiny", seed=7)


def test_topk_pairs_factored(benchmark, pair):
    """Global top-10 pairs from the factored representation."""
    graph_a, graph_b = pair
    result = benchmark(top_k_pairs, graph_a, graph_b, 10, 6)
    assert len(result) == 10


def test_topk_dense_contrast(benchmark, pair):
    """The dense alternative: full GSim matrix, then argsort."""
    graph_a, graph_b = pair

    def dense_topk():
        full = gsim(graph_a, graph_b, iterations=6).similarity
        order = np.argsort(full, axis=None)[::-1][:10]
        return [divmod(int(i), graph_b.num_nodes) for i in order]

    result = benchmark(dense_topk)
    assert len(result) == 10


def test_per_query_retrieval(benchmark, pair):
    """Per-node rankings for 20 query nodes."""
    graph_a, graph_b = pair
    queries = list(range(20))
    result = benchmark(top_k_for_queries, graph_a, graph_b, queries, 5, 6)
    assert len(result) == 20


def test_query_block_from_prebuilt_factors(benchmark, pair):
    """Serving a 50x50 block from already-built factors (the index case)."""
    graph_a, graph_b = pair
    solver = GSimPlus(graph_a, graph_b, rank_cap="qr-compress")
    state = None
    for state in solver.iterate(6):
        pass
    factors = state.factors
    rows = np.arange(50)
    cols = np.arange(min(50, graph_b.num_nodes))

    block = benchmark(factors.query_block, rows, cols)
    assert block.shape == (rows.size, cols.size)
