"""Benchmarks for the evolving-graph session layer.

Quantifies the recompute-on-write trade-off: a cached query is a slender
dense product (microseconds); a post-update query pays one full GSim+
refresh (milliseconds at this scale).
"""

from __future__ import annotations

import pytest

from repro.dynamic import DynamicGraph, SimilaritySession
from repro.graphs import erdos_renyi_graph, random_node_sample


@pytest.fixture(scope="module")
def session_parts():
    base = erdos_renyi_graph(400, 2400, seed=1)
    target = random_node_sample(base, 80, seed=2)
    source = DynamicGraph(base.num_nodes)
    source.add_edges([(s, d) for s, d, _ in base.edges()])
    sink = DynamicGraph(target.num_nodes)
    sink.add_edges([(s, d) for s, d, _ in target.edges()])
    return source, sink


def test_cached_query(benchmark, session_parts):
    """Query latency when the factors are warm (the common case)."""
    source, sink = session_parts
    session = SimilaritySession(source, sink, iterations=7)
    session.query([0], [0])  # warm the cache

    block = benchmark(session.query, [1, 2, 3], [0, 1, 2])
    assert block.shape == (3, 3)


def test_query_after_update(benchmark, session_parts):
    """Query latency when every query is preceded by a graph update."""
    source, sink = session_parts
    session = SimilaritySession(source, sink, iterations=7)
    state = {"flip": True}

    def update_then_query():
        if state["flip"]:
            source.add_edge(0, 5)
        else:
            source.remove_edge(0, 5)
        state["flip"] = not state["flip"]
        return session.query([1], [1])

    benchmark(update_then_query)
    assert session.stats.recomputes >= 1


def test_refresh_cost(benchmark, session_parts):
    """One full factor recomputation (the write-path cost)."""
    source, sink = session_parts
    session = SimilaritySession(source, sink, iterations=7)
    benchmark(session.refresh)
