"""Figure 2 — wall-clock time of every algorithm per dataset.

Benchmarks the per-algorithm query time on each scaled dataset; one run of
the full driver prints the paper's Figure 2 series (including the OOM /
>1day cells for the dense and per-pair baselines).
"""

from __future__ import annotations

import pytest

from repro.experiments import ALGORITHMS, render_records, run_algorithm
from repro.experiments.figures import fig2_time_by_dataset

from conftest import FAST_ALGORITHMS


@pytest.mark.parametrize("algorithm", FAST_ALGORITHMS)
@pytest.mark.parametrize("dataset", ["hp", "ee"])
def test_fig2_cell(benchmark, algorithm, dataset, hp_instance, ee_instance, bench_config):
    """One Figure 2 cell: `algorithm` on the scaled `dataset`."""
    instance = hp_instance if dataset == "hp" else ee_instance
    graph_a, graph_b, queries_a, queries_b = instance
    spec = ALGORITHMS[algorithm]

    def cell():
        return run_algorithm(
            spec, graph_a, graph_b, queries_a, queries_b,
            bench_config.iterations,
            memory_budget=bench_config.memory_budget,
            deadline=bench_config.deadline,
            dataset=dataset.upper(),
        )

    record = benchmark(cell)
    assert record.ok, record.note


def test_fig2_full_series(benchmark, bench_config, capsys):
    """The complete Figure 2 table across all five datasets."""
    records = benchmark.pedantic(
        fig2_time_by_dataset,
        args=(bench_config,),
        kwargs={"algorithms": FAST_ALGORITHMS},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_records(records, metric="time", title="Figure 2 (time)"))
