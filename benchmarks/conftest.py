"""Shared fixtures for the benchmark suite.

Benchmarks run the same drivers as the figures at the ``tiny`` scale with
short deadlines; their purpose is to regenerate the paper's series (who
wins, by what factor) quickly and repeatably, not to stress this machine.
Pass ``--benchmark-only`` to run them; each prints the table it backs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import Deadline, ExperimentConfig, MemoryBudget
from repro.graphs import load_dataset_pair
from repro.workloads import make_workload

# Algorithms cheap enough to benchmark per-cell at tiny scale.
FAST_ALGORITHMS = ("GSim+", "GSVD", "GSim", "SS-BC*")


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Figure-driver configuration used by every benchmark."""
    return ExperimentConfig(
        scale="tiny",
        iterations=10,
        seed=7,
        memory_budget=MemoryBudget(),
        deadline=Deadline(limit_seconds=5.0),
    )


@pytest.fixture(scope="session")
def hp_instance():
    """The scaled HP pair plus a fixed query workload."""
    graph_a, graph_b = load_dataset_pair("HP", scale="tiny", seed=7)
    workload = make_workload(graph_a, graph_b, 20, 20, seed=8)
    return graph_a, graph_b, workload.queries_a, workload.queries_b


@pytest.fixture(scope="session")
def ee_instance():
    """The scaled EE pair plus a fixed query workload."""
    graph_a, graph_b = load_dataset_pair("EE", scale="tiny", seed=7)
    workload = make_workload(graph_a, graph_b, 20, 20, seed=8)
    return graph_a, graph_b, workload.queries_a, workload.queries_b


@pytest.fixture(scope="session")
def queries(hp_instance) -> tuple[np.ndarray, np.ndarray]:
    _, _, queries_a, queries_b = hp_instance
    return queries_a, queries_b
