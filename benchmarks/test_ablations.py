"""Ablation benchmarks for the design choices DESIGN.md §5 calls out."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    ablation_gsvd_rank,
    ablation_normalization,
    ablation_query_extraction,
    ablation_rank_cap,
    ablation_rolesim_matching,
)
from repro.graphs import load_dataset_pair


@pytest.fixture(scope="module")
def pair():
    return load_dataset_pair("HP", scale="tiny", seed=7)


def _print_rows(capsys, title, rows):
    with capsys.disabled():
        print(f"\n{title}")
        for row in rows:
            print(f"  {row.variant:<26} {row.seconds * 1e3:8.2f} ms  {row.detail}")


def test_ablation_rank_cap(benchmark, pair, capsys):
    """Dense fallback vs QR compression vs unbounded width at k=12."""
    rows = benchmark.pedantic(
        ablation_rank_cap, args=pair, kwargs={"iterations": 12}, rounds=1, iterations=1
    )
    _print_rows(capsys, "rank-cap ablation", rows)
    assert {r.variant for r in rows} == {"dense", "qr-compress", "none"}


def test_ablation_normalization(benchmark, pair, capsys):
    """Block vs global normalisation of the extracted query block."""
    rows = benchmark.pedantic(
        ablation_normalization, args=pair, kwargs={"iterations": 8},
        rounds=1, iterations=1,
    )
    _print_rows(capsys, "normalisation ablation", rows)
    cosine = float(rows[-1].detail.split("cosine=")[1])
    assert cosine > 0.999


def test_ablation_query_extraction(benchmark, pair, capsys):
    """Algorithm 1's late factored extraction vs materialise-then-slice."""
    rows = benchmark.pedantic(
        ablation_query_extraction, args=pair,
        kwargs={"iterations": 8, "query_size": 20}, rounds=1, iterations=1,
    )
    _print_rows(capsys, "query-extraction ablation", rows)
    assert len(rows) == 2


def test_ablation_gsvd_rank(benchmark, pair, capsys):
    """GSVD accuracy/time trade-off across its fixed rank r."""
    rows = benchmark.pedantic(
        ablation_gsvd_rank, args=pair,
        kwargs={"iterations": 10, "ranks": (5, 10, 50)}, rounds=1, iterations=1,
    )
    _print_rows(capsys, "GSVD rank ablation", rows)
    errors = [float(r.detail.split("err=")[1]) for r in rows]
    assert errors[-1] <= errors[0] + 1e-9


def test_ablation_rolesim_matching(benchmark, pair, capsys):
    """Greedy vs exact Hungarian matching inside RoleSim (small subgraph)."""
    graph_a, _ = pair
    small = graph_a.subgraph(range(60))
    rows = benchmark.pedantic(
        ablation_rolesim_matching, args=(small,), kwargs={"iterations": 2},
        rounds=1, iterations=1,
    )
    _print_rows(capsys, "RoleSim matching ablation", rows)
    assert rows[0].variant == "greedy"


def test_ablation_sampling_strategy(benchmark, pair, capsys):
    """Uniform vs BFS vs forest-fire G_B sampling (DESIGN.md §5)."""
    from repro.experiments.ablations import ablation_sampling_strategy

    graph_a, _ = pair
    rows = benchmark.pedantic(
        ablation_sampling_strategy, args=(graph_a,),
        kwargs={"sample_size": 60, "iterations": 6}, rounds=1, iterations=1,
    )
    _print_rows(capsys, "G_B sampling ablation", rows)
    assert len(rows) == 3
