"""Process-pool worker bootstrap: pin BLAS thread pools before numpy loads.

This module deliberately lives *outside* the ``repro`` package and imports
nothing but the standard library.  ``repro``'s package ``__init__`` pulls
in numpy and scipy, and OpenBLAS/MKL read their thread-count environment
variables once, at library load — so a spawn-started pool worker must set
the variables from a module whose import does **not** drag numpy in.
:class:`repro.runtime.WorkerPool` passes :func:`initialize` as the
``ProcessPoolExecutor`` initializer; unpickling it in the child imports
only this file, the environment gets pinned, and the first task's imports
then load a BLAS that honours the pin.

With a ``fork`` start method the child inherits the parent's already
-initialised BLAS, so the pin only covers libraries loaded lazily after
the fork; hard pinning there means pinning the parent (the Makefile's
``BENCH_ENV`` and CI both do).  Either way the *effective* thread count is
probed in-worker and reported back, so metrics record the truth rather
than the intent.
"""

from __future__ import annotations

import os

# The environment knobs every BLAS/OpenMP runtime in the wild honours —
# the same set the CI workflow and `make bench` pin.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def initialize(threads: int) -> None:
    """Pool-worker initializer: pin every known BLAS pool to ``threads``."""
    value = str(int(threads))
    for name in BLAS_ENV_VARS:
        os.environ[name] = value


def effective_blas_threads() -> int:
    """Best-effort probe of the BLAS thread count active in this process.

    Prefers ``threadpoolctl`` when it is installed (it asks the loaded
    libraries directly); otherwise falls back to the strictest pinned
    environment variable, then to ``os.cpu_count()`` — the default most
    BLAS builds use when nothing is pinned.
    """
    try:  # pragma: no cover - threadpoolctl is optional
        from threadpoolctl import threadpool_info

        counts = [
            int(info["num_threads"])
            for info in threadpool_info()
            if info.get("user_api") in ("blas", "openmp")
        ]
        if counts:
            return max(counts)
    except Exception:
        pass
    pinned = [
        int(os.environ[name])
        for name in BLAS_ENV_VARS
        if os.environ.get(name, "").isdigit()
    ]
    if pinned:
        return min(pinned)
    return os.cpu_count() or 1
