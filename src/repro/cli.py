"""Command-line entry point: regenerate any figure or table of the paper.

Usage (installed as ``gsimplus`` or via ``python -m repro.cli``)::

    gsimplus fig2 --scale tiny
    gsimplus fig3 --dataset EE --scale small
    gsimplus accuracy --scale tiny
    gsimplus all --scale tiny
    gsimplus fig2 --scale tiny --metrics out.json   # dump runtime metrics
    gsimplus spec exp.json --trace trace.json --trace-summary

``--metrics PATH`` (every subcommand) writes the run's
:class:`repro.runtime.Metrics` counter/timer/histogram tree as JSON —
for experiment commands the per-cell metric snapshots are merged into one
tree; for ``topk``/``sim`` the run executes under a fresh
:class:`repro.runtime.ExecutionContext` whose snapshot is dumped; for
``accuracy``/``bound``/``datasets`` the command's wall time is recorded
under ``cli.*`` timers.

``--trace PATH`` (figures, ``all``, ``spec``, ``topk``, ``sim``) records
a hierarchical span trace of the run and writes Chrome ``trace_event``
JSON — open it in Perfetto or ``chrome://tracing`` to see iterate →
shard → top-k nesting; ``--trace-summary`` prints the per-span-name
total/self-time hot-path table instead of (or as well as) the file.
``--trace`` and ``--metrics`` compose in one run.

``--telemetry-dir DIR`` (same subcommands as ``--trace``) opens a
:class:`repro.runtime.TelemetrySession`: a background flusher exports
the run's metrics to ``DIR/metrics.prom`` (Prometheus text format) and
``DIR/metrics.jsonl`` (append-only time-series) every
``--flush-interval`` seconds with resource gauges (RSS, CPU, GC,
threads) sampled on the same cadence, retrieval calls slower than
``--slow-query-ms`` land in ``DIR/slow_queries.jsonl``, and any
``--slo`` objectives (repeatable, e.g.
``--slo 'p99(index.query_seconds) < 50ms'``) are evaluated at the end
into ``DIR/slo_report.json``.  A violated objective sets exit code 3.
``--slo`` also works without ``--telemetry-dir`` (report printed only).

All observability outputs — ``--metrics``, ``--trace``, telemetry — are
flushed on failure paths too: a run that raises or is cancelled
mid-sweep still writes its partial snapshots, so post-mortems have data.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Sequence

from repro.experiments.figures import (
    fig2_time_by_dataset,
    fig3_time_vs_k,
    fig4_time_vs_nb,
    fig5_time_vs_queries,
    fig6_memory_by_dataset,
    fig7_memory_vs_k,
    fig8_memory_vs_queries,
)
from repro.experiments.guards import Deadline, MemoryBudget
from repro.experiments.report import render_records
from repro.experiments.runner import ExperimentConfig
from repro.experiments.tables import accuracy_table, render_accuracy_table

__all__ = ["main"]

_FIGURES: dict[str, tuple[Callable, str, str, str]] = {
    # name -> (driver, sweep column, metric, description)
    "fig2": (fig2_time_by_dataset, "dataset", "time", "time by dataset"),
    "fig3": (fig3_time_vs_k, "k", "time", "time vs iterations k"),
    "fig4": (fig4_time_vs_nb, "n_b", "time", "time vs |V_B|"),
    "fig5": (fig5_time_vs_queries, "q_a", "time", "time vs query size"),
    "fig6": (fig6_memory_by_dataset, "dataset", "memory", "memory by dataset"),
    "fig7": (fig7_memory_vs_k, "k", "memory", "memory vs iterations k"),
    "fig8": (fig8_memory_vs_queries, "q_a", "memory", "memory vs query size"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gsimplus",
        description="Regenerate the figures and tables of the GSim+ paper "
        "(EDBT 2024) on simulated, scale-reduced datasets.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def _add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scale",
            default="tiny",
            choices=("tiny", "small", "medium"),
            help="dataset scale profile (default: tiny)",
        )
        sub.add_argument(
            "--seed", type=int, default=7, help="random seed (default: 7)"
        )
        sub.add_argument(
            "--iterations",
            "-k",
            type=int,
            default=None,
            help="iterations K (default: a per-scale value keeping 2^K "
            "below the scaled |V_B|, as in the paper's regime)",
        )
        sub.add_argument(
            "--algorithms",
            default=None,
            help="comma-separated competitor subset, e.g. 'GSim+,GSim' "
            "(default: all six)",
        )
        sub.add_argument(
            "--deadline",
            type=float,
            default=20.0,
            help="per-cell wall-clock budget in seconds (default: 20)",
        )
        sub.add_argument(
            "--memory-budget-mib",
            type=float,
            default=256.0,
            help="per-cell memory budget in MiB (default: 256)",
        )

    def _add_resilience(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--retries",
            type=int,
            default=0,
            metavar="N",
            help="retry transient failures up to N extra times with "
            "backoff; cells that keep failing are quarantined as "
            "structured ERROR records (default: 0 — fail fast)",
        )
        sub.add_argument(
            "--checkpoint-dir",
            default=None,
            metavar="DIR",
            help="persist progress under DIR (a run journal for sweeps, "
            "iteration snapshots for factor builds) so an interrupted "
            "run can be resumed with --resume",
        )
        sub.add_argument(
            "--resume",
            action="store_true",
            help="resume from the state in --checkpoint-dir: completed "
            "sweep cells are replayed, interrupted factor builds restart "
            "from their last valid snapshot",
        )

    def _add_metrics(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--metrics",
            default=None,
            metavar="PATH",
            help="write the run's counter/timer/histogram tree as JSON to "
            "this path",
        )

    def _add_trace(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="record a hierarchical span trace and write Chrome "
            "trace_event JSON to this path (open in Perfetto or "
            "chrome://tracing)",
        )
        sub.add_argument(
            "--trace-summary",
            action="store_true",
            help="print a per-span-name total/self-time table after the run",
        )

    def _add_telemetry(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--telemetry-dir",
            default=None,
            metavar="DIR",
            help="export operational telemetry under DIR during the run: "
            "metrics.prom (Prometheus text format) + metrics.jsonl "
            "(append-only time-series) flushed periodically with process "
            "resource gauges, and slow_queries.jsonl for retrieval calls "
            "over the --slow-query-ms threshold",
        )
        sub.add_argument(
            "--flush-interval",
            type=float,
            default=5.0,
            metavar="SEC",
            help="telemetry flush cadence in seconds (default: 5)",
        )
        sub.add_argument(
            "--slow-query-ms",
            type=float,
            default=100.0,
            metavar="MS",
            help="latency threshold for the slow-query log in "
            "milliseconds (default: 100)",
        )
        sub.add_argument(
            "--slo",
            action="append",
            default=None,
            metavar="SPEC",
            help="declare a service-level objective evaluated against the "
            "run's final metrics, e.g. 'p99(index.query_seconds) < 50ms' "
            "or 'error_rate(index.query) < 0.1%%'; repeatable; a "
            "violation sets exit code 3",
        )

    def _add_precision(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--precision",
            default="float64",
            choices=("float64", "float32"),
            help="factor dtype for GSim+: float64 is the exact default, "
            "float32 halves memory bandwidth on the SpMM / scan hot "
            "loops (default: float64)",
        )
        sub.add_argument(
            "--recompress-tol",
            type=float,
            default=None,
            metavar="TOL",
            help="enable rank-bounded factor recompression between "
            "doubling steps at relative Frobenius tolerance TOL (e.g. "
            "1e-8); width is then bounded by numerical rank instead of "
            "2^k (default: off — exact doubling)",
        )

    def _add_workers(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="worker threads for sharded kernels and independent "
            "sweep cells (default: 1 — fully serial; results are "
            "identical for every N)",
        )
        sub.add_argument(
            "--backend",
            choices=("thread", "process"),
            default="thread",
            help="worker backend for the sharded kernels: 'thread' "
            "(default) shares memory, 'process' ships (path, row-range) "
            "shard descriptors to pool processes — GIL-free compute for "
            "mmap-converted graphs; results are bit-identical either way",
        )

    for name, (_, _, _, description) in _FIGURES.items():
        sub = subparsers.add_parser(name, help=f"Figure {name[3:]}: {description}")
        _add_common(sub)
        _add_metrics(sub)
        _add_trace(sub)
        _add_telemetry(sub)
        _add_resilience(sub)
        _add_workers(sub)
        _add_precision(sub)
        if name in ("fig3", "fig4", "fig5", "fig7", "fig8"):
            sub.add_argument("--dataset", default="EE", help="dataset key")

    accuracy = subparsers.add_parser(
        "accuracy", help="§5.2.3 accuracy table (GSim+/GSim vs GSVD ranks)"
    )
    _add_common(accuracy)
    _add_metrics(accuracy)
    accuracy.add_argument("--dataset", default="HP", help="dataset key")

    bound = subparsers.add_parser(
        "bound", help="Theorem 4.2 validation: measured error vs spectral bound"
    )
    _add_common(bound)
    _add_metrics(bound)
    bound.add_argument("--dataset", default="HP", help="dataset key")

    everything = subparsers.add_parser(
        "all", help="regenerate every figure and the accuracy table"
    )
    _add_common(everything)
    _add_metrics(everything)
    _add_trace(everything)
    _add_telemetry(everything)
    _add_resilience(everything)
    _add_workers(everything)
    _add_precision(everything)

    topk = subparsers.add_parser(
        "topk", help="retrieve the k most similar cross-graph pairs"
    )
    _add_common(topk)
    _add_metrics(topk)
    _add_trace(topk)
    _add_telemetry(topk)
    _add_workers(topk)
    _add_precision(topk)
    topk.add_argument("--dataset", default="HP", help="dataset key")
    topk.add_argument("--top", type=int, default=10, help="number of pairs")

    datasets = subparsers.add_parser(
        "datasets", help="show the simulated dataset registry and statistics"
    )
    datasets.add_argument(
        "--scale", default="tiny", choices=("tiny", "small", "medium"),
        help="profile whose realised statistics to measure",
    )
    datasets.add_argument("--seed", type=int, default=7)
    _add_metrics(datasets)
    datasets_sub = datasets.add_subparsers(
        dest="datasets_command", required=False,
        metavar="{convert}",
    )
    convert = datasets_sub.add_parser(
        "convert",
        help="convert an edge-list file into an out-of-core mmap-CSR "
        "artifact directory (atomic, checksummed, crash-resumable)",
    )
    convert.add_argument("edge_list", help="edge-list file (src dst [weight])")
    convert.add_argument("out_dir", help="artifact directory to create")
    convert_mode = convert.add_mutually_exclusive_group()
    convert_mode.add_argument(
        "--strict", dest="mode", action="store_const", const="strict",
        help="raise on any malformed line (default)",
    )
    convert_mode.add_argument(
        "--lenient", dest="mode", action="store_const", const="lenient",
        help="skip malformed lines with one counted warning",
    )
    convert.set_defaults(mode="strict")
    convert.add_argument(
        "--comment", default="#", metavar="PREFIX",
        help="comment-line prefix (default: '#')",
    )
    convert.add_argument(
        "--name", default=None, help="graph name recorded in the manifest"
    )
    convert.add_argument(
        "--no-resume", action="store_true",
        help="discard any partial progress instead of resuming it",
    )

    sim = subparsers.add_parser(
        "sim", help="compute GSim+ similarities between two edge-list files"
    )
    sim.add_argument("graph_a", help="edge-list file for G_A")
    sim.add_argument("graph_b", help="edge-list file for G_B")
    sim.add_argument(
        "--iterations", "-k", type=int, default=10, help="iterations K"
    )
    sim.add_argument(
        "--queries-a", default=None,
        help="comma-separated G_A node ids (default: all nodes)",
    )
    sim.add_argument(
        "--queries-b", default=None,
        help="comma-separated G_B node ids (default: all nodes)",
    )
    sim.add_argument(
        "--top", type=int, default=None,
        help="instead of the block, print the top-N pairs",
    )
    sim.add_argument(
        "--relabel", action="store_true",
        help="accept arbitrary node tokens (relabelled to 0..n-1)",
    )
    sim.add_argument(
        "--mmap-dir", default=None, metavar="DIR",
        help="operate out-of-core: convert each edge list into an "
        "mmap-CSR artifact under DIR (reused on later runs; a graph "
        "argument that already names an artifact directory is mapped "
        "directly) and compute from the memory maps; incompatible with "
        "--relabel (streaming conversion needs integer node ids)",
    )
    sim.add_argument(
        "--output", default=None, help="write the block as CSV to this path"
    )
    _add_metrics(sim)
    _add_trace(sim)
    _add_telemetry(sim)
    _add_resilience(sim)
    _add_workers(sim)
    _add_precision(sim)

    live = subparsers.add_parser(
        "live",
        help="replay a seeded mutation stream against a live similarity "
        "session: background rebuilds, atomic generation swaps, and a "
        "block/serve_stale/shed serving policy",
    )
    live.add_argument("--dataset", default="HP", help="dataset key")
    live.add_argument(
        "--scale",
        default="tiny",
        choices=("tiny", "small", "medium"),
        help="dataset scale profile (default: tiny)",
    )
    live.add_argument(
        "--seed", type=int, default=7, help="random seed (default: 7)"
    )
    live.add_argument(
        "--iterations", "-k", type=int, default=6, help="iterations K"
    )
    live.add_argument(
        "--policy",
        default="serve_stale",
        choices=("block", "serve_stale", "shed"),
        help="what queries do while a rebuild is pending "
        "(default: serve_stale)",
    )
    live.add_argument(
        "--mutations",
        type=int,
        default=60,
        metavar="N",
        help="edge mutations to replay (default: 60)",
    )
    live.add_argument(
        "--queries",
        type=int,
        default=120,
        metavar="N",
        help="queries to interleave with the stream (default: 120)",
    )
    live.add_argument(
        "--max-version-lag",
        type=int,
        default=None,
        metavar="N",
        help="staleness budget: max graph versions a served generation "
        "may lag (default: unbounded)",
    )
    live.add_argument(
        "--max-age-seconds",
        type=float,
        default=None,
        metavar="SEC",
        help="staleness budget: max wall-clock age of a stale generation",
    )
    live.add_argument(
        "--max-edge-delta",
        type=int,
        default=None,
        metavar="N",
        help="staleness budget: max edge mutations since the served "
        "generation was built",
    )
    live.add_argument(
        "--eager",
        action="store_true",
        help="enqueue rebuilds at write time instead of first-query time",
    )
    live.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="checkpoint rebuilds under DIR so killed builds resume",
    )
    _add_metrics(live)
    _add_trace(live)
    _add_telemetry(live)
    _add_workers(live)
    _add_precision(live)

    spec = subparsers.add_parser(
        "spec", help="run a declarative experiment from a JSON spec file"
    )
    _add_metrics(spec)
    _add_trace(spec)
    _add_telemetry(spec)
    spec.add_argument("spec_path", help="path to the JSON experiment spec")
    spec.add_argument(
        "--metric", default="time", choices=("time", "memory"),
        help="metric to tabulate (default: time)",
    )
    spec.add_argument(
        "--export-csv", default=None, help="also write the records to this CSV"
    )
    _add_resilience(spec)
    _add_workers(spec)
    _add_precision(spec)
    return parser


def _resilience(args: argparse.Namespace, journal_name: str):
    """``(journal, retry_policy)`` from the --retries/--checkpoint-dir/
    --resume flags; each is ``None`` when the feature is off."""
    from repro.runtime.resilience import RetryPolicy

    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        raise SystemExit(2)
    journal = None
    if args.checkpoint_dir:
        from pathlib import Path

        from repro.experiments.journal import RunJournal

        journal = RunJournal(
            Path(args.checkpoint_dir) / f"{journal_name}-journal.jsonl",
            resume=args.resume,
        )
    retry_policy = (
        RetryPolicy(max_attempts=args.retries + 1) if args.retries > 0 else None
    )
    return journal, retry_policy


def _make_tracer(args: argparse.Namespace):
    """A live :class:`repro.runtime.Tracer` when --trace/--trace-summary
    was given, ``None`` otherwise (the traced code then sees the no-op
    ``NULL_TRACER`` and pays nothing)."""
    if getattr(args, "trace", None) or getattr(args, "trace_summary", False):
        from repro.runtime import Tracer

        return Tracer()
    return None


class _CliTelemetry:
    """The --telemetry-dir/--slo lifecycle for one CLI run.

    Owns a live :class:`repro.runtime.Metrics` sink (``self.metrics``) —
    for experiment commands the per-cell snapshots are merged into it as
    cells finish, for ``topk``/``sim`` it is the run context's own sink —
    plus the optional :class:`repro.runtime.TelemetrySession` exporting
    it.  :meth:`close` is failure-safe and idempotent; it returns the
    exit-code contribution (3 on a violated SLO).
    """

    def __init__(self, args: argparse.Namespace, metrics=None, source=None):
        from repro.runtime import Metrics, SLObjective

        self.args = args
        self.metrics = metrics if metrics is not None else Metrics()
        self.source = source if source is not None else self.metrics.snapshot
        self.session = None
        self.slow_queries = None
        self._closed = False
        try:
            self.objectives = [
                SLObjective.parse(raw)
                for raw in (getattr(args, "slo", None) or ())
            ]
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            raise SystemExit(2) from None
        if getattr(args, "telemetry_dir", None):
            from repro.runtime import TelemetrySession

            self.session = TelemetrySession(
                args.telemetry_dir,
                self.metrics,
                source=self.source,
                interval_seconds=args.flush_interval,
                slow_query_threshold=args.slow_query_ms / 1000.0,
                objectives=self.objectives,
            ).start()
            self.slow_queries = self.session.slow_queries

    def close(self) -> int:
        """Final flush + SLO verdicts; safe to call on failure paths."""
        if self._closed:
            return 0
        self._closed = True
        reports = None
        if self.session is not None:
            reports = self.session.close()
            print(f"telemetry written to {self.session.directory}")
        elif self.objectives:
            from repro.runtime import SLOTracker

            reports = SLOTracker(self.objectives).evaluate(self.source())
        if reports:
            from repro.runtime import render_slo_report

            print(render_slo_report(reports))
            if any(not report.ok for report in reports):
                print("error: SLO violated", file=sys.stderr)
                return 3
        return 0


def _emit_partial(
    args: argparse.Namespace,
    tracer,
    telemetry: "_CliTelemetry | None",
    exc: BaseException,
    metrics_tree: dict | None = None,
) -> None:
    """Best-effort --metrics/--trace/telemetry flush on a failure path.

    An interrupted or crashed run still leaves partial snapshots on
    disk for the post-mortem: the metrics tree travels on structured
    budget failures (``exc.metrics``), the trace holds every span
    completed so far, and the telemetry session takes a final flush.
    The exception is re-raised by the caller; nothing here may raise.
    """
    if metrics_tree is None:
        metrics_tree = getattr(exc, "metrics", None)
    if metrics_tree is None and telemetry is not None:
        try:
            metrics_tree = telemetry.source()
        except Exception:
            metrics_tree = None
    try:
        _finish(args, tracer, metrics_tree)
    except Exception:
        pass
    if telemetry is not None:
        try:
            telemetry.close()
        except Exception:
            pass


def _finish(
    args: argparse.Namespace, tracer=None, metrics_tree: dict | None = None
) -> int:
    """Emit the --metrics / --trace / --trace-summary outputs.

    All three compose in one run; the exit code is non-zero when any
    requested artifact could not be written.
    """
    code = 0
    if getattr(args, "metrics", None) and metrics_tree is not None:
        code = max(code, _write_metrics(args.metrics, metrics_tree))
    if tracer is not None:
        if getattr(args, "trace", None):
            try:
                tracer.write_chrome_trace(args.trace)
            except OSError as exc:
                print(
                    f"error: cannot write trace to {args.trace}: {exc}",
                    file=sys.stderr,
                )
                code = max(code, 1)
            else:
                print(
                    f"trace written to {args.trace} "
                    f"({len(tracer.spans())} spans; open in Perfetto)"
                )
        if getattr(args, "trace_summary", False):
            from repro.runtime import render_trace_summary

            print(render_trace_summary(tracer))
    return code


def _run_figure(
    name: str,
    args: argparse.Namespace,
    journal=None,
    retry_policy=None,
    tracer=None,
    telemetry: "_CliTelemetry | None" = None,
) -> tuple[str, list]:
    if journal is None and retry_policy is None:
        journal, retry_policy = _resilience(args, name)
    driver, column, metric, description = _FIGURES[name]
    guards = dict(
        memory_budget=MemoryBudget(int(args.memory_budget_mib * 1024 * 1024)),
        deadline=Deadline(limit_seconds=args.deadline),
        journal=journal,
        retry_policy=retry_policy,
        max_workers=getattr(args, "workers", 1),
        backend=getattr(args, "backend", "thread"),
        tracer=tracer,
        precision=getattr(args, "precision", "float64"),
        recompress_tol=getattr(args, "recompress_tol", None),
        metrics_sink=telemetry.metrics if telemetry is not None else None,
        slow_queries=telemetry.slow_queries if telemetry is not None else None,
    )
    if args.iterations is None:
        config = ExperimentConfig.for_scale(args.scale, seed=args.seed, **guards)
    else:
        config = ExperimentConfig(
            scale=args.scale, iterations=args.iterations, seed=args.seed, **guards
        )
    kwargs = {}
    if hasattr(args, "dataset") and name not in ("fig2", "fig6"):
        kwargs["dataset"] = args.dataset
    if args.algorithms:
        kwargs["algorithms"] = tuple(
            token.strip() for token in args.algorithms.split(",") if token.strip()
        )
    hits_before = journal.hits if journal is not None else 0
    records = driver(config, **kwargs)
    title = f"Figure {name[3:]} — {description} (scale={args.scale})"
    rendered = render_records(records, column_key=column, metric=metric, title=title)
    if journal is not None:
        replayed = journal.hits - hits_before
        rendered += (
            f"\n[{replayed}/{len(records)} cells replayed from "
            f"{journal.path}]"
        )
    return rendered, records


def _merged_record_metrics(records: list) -> dict:
    """Fold every cell's metric snapshot into one counter/timer tree."""
    from repro.runtime import Metrics

    merged = Metrics()
    for record in records:
        if getattr(record, "metrics", None):
            merged.merge_snapshot(record.metrics)
    return merged.snapshot()


def _write_metrics(path: str, tree: dict) -> int:
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(tree, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as exc:
        print(f"error: cannot write metrics to {path}: {exc}", file=sys.stderr)
        return 1
    print(f"metrics written to {path}")
    return 0


def _run_live(args: argparse.Namespace) -> int:
    """The ``live`` subcommand: a seeded writer/reader replay against a
    lifecycle-managed session, reporting how the chosen policy behaved."""
    import numpy as np

    from repro.dynamic import DynamicGraph, SimilaritySession, StalenessBudget
    from repro.graphs import load_dataset_pair
    from repro.runtime import ExecutionContext, IndexUnavailableError

    base_a, base_b = load_dataset_pair(
        args.dataset, scale=args.scale, seed=args.seed
    )
    graph_a = DynamicGraph(base_a.num_nodes)
    graph_a.add_edges([(s, d) for s, d, _ in base_a.edges()])
    graph_b = DynamicGraph(base_b.num_nodes)
    graph_b.add_edges([(s, d) for s, d, _ in base_b.edges()])

    budget = None
    if (
        args.max_version_lag is not None
        or args.max_age_seconds is not None
        or args.max_edge_delta is not None
    ):
        budget = StalenessBudget(
            max_version_lag=args.max_version_lag,
            max_age_seconds=args.max_age_seconds,
            max_edge_delta=args.max_edge_delta,
        )
    tracer = _make_tracer(args)
    telemetry = _telemetry_for(args)
    context = ExecutionContext(
        tracer=tracer,
        metrics=telemetry.metrics if telemetry is not None else None,
        slow_queries=telemetry.slow_queries if telemetry is not None else None,
    )
    checkpoint_dir = None
    if args.checkpoint_dir:
        from pathlib import Path

        checkpoint_dir = Path(args.checkpoint_dir)

    rng = np.random.default_rng(args.seed)
    served = shed = 0
    try:
        with SimilaritySession(
            graph_a,
            graph_b,
            iterations=args.iterations,
            context=context,
            policy=args.policy,
            staleness_budget=budget,
            eager_rebuild=args.eager,
            checkpoint_dir=checkpoint_dir,
            max_workers=args.workers,
            precision=args.precision,
            recompress_tol=args.recompress_tol,
        ) as session:
            print(f"G_A = {graph_a}")
            print(f"G_B = {graph_b}")
            session.refresh()  # generation 1, built before the stream
            total = args.mutations + args.queries
            plan = rng.permutation(
                [True] * args.mutations + [False] * args.queries
            )
            for is_mutation in plan:
                if is_mutation:
                    while True:
                        src = int(rng.integers(graph_a.num_nodes))
                        dst = int(rng.integers(graph_a.num_nodes))
                        if src != dst and not graph_a.has_edge(src, dst):
                            break
                    graph_a.add_edge(src, dst)
                else:
                    node = int(rng.integers(graph_a.num_nodes))
                    try:
                        info = session.query_info([node], [0])
                    except IndexUnavailableError:
                        shed += 1
                    else:
                        served += 1
                        del info
            # Settle: one final synchronous rebuild so the closing state
            # is fresh and the chain is fully installed.
            session.refresh()
            stats = session.stats
            health = session.health()
            print(
                f"\nreplayed {total} events "
                f"({args.mutations} mutations, {args.queries} queries) "
                f"under policy={args.policy!r}"
            )
            print(
                f"  served {served} queries ({stats.stale_served} stale), "
                f"shed {shed}"
            )
            print(
                f"  {stats.recomputes} rebuilds installed, "
                f"{health['generations_built']} generations built, "
                f"live generation {health['live_generation']} "
                f"(fingerprint {health['live_fingerprint'][:12]})"
            )
            print(
                f"  breaker {health['breaker']}, "
                f"degraded={health['degraded']}, "
                f"rejected mutations: {graph_a.rejected_mutations}"
            )
    except BaseException as exc:
        _emit_partial(args, tracer, telemetry, exc, context.snapshot())
        raise
    slo_code = telemetry.close() if telemetry is not None else 0
    return max(slo_code, _finish(
        args, tracer, context.snapshot() if args.metrics else None
    ))


def _telemetry_for(args: argparse.Namespace, metrics=None, source=None):
    """A started :class:`_CliTelemetry` when --telemetry-dir or --slo was
    given, ``None`` otherwise (runs then pay nothing)."""
    if getattr(args, "telemetry_dir", None) or getattr(args, "slo", None):
        return _CliTelemetry(args, metrics=metrics, source=source)
    return None


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command in _FIGURES:
        tracer = _make_tracer(args)
        telemetry = _telemetry_for(args)
        try:
            rendered, records = _run_figure(
                args.command, args, tracer=tracer, telemetry=telemetry
            )
        except BaseException as exc:
            _emit_partial(args, tracer, telemetry, exc)
            raise
        print(rendered)
        slo_code = telemetry.close() if telemetry is not None else 0
        return max(slo_code, _finish(
            args, tracer,
            _merged_record_metrics(records) if args.metrics else None,
        ))
    if args.command == "accuracy":
        from repro.runtime import Metrics

        metrics = Metrics()
        with metrics.time("cli.accuracy"):
            table = accuracy_table(
                dataset=args.dataset, scale=args.scale, seed=args.seed
            )
        print(render_accuracy_table(table))
        print(
            f"max |GSim+ err - GSim err| = {table.max_equivalence_gap():.3e} "
            "(Theorem 3.1 predicts 0)"
        )
        return _finish(args, None, metrics.snapshot() if args.metrics else None)
    if args.command == "bound":
        from repro.experiments.tables import error_bound_table, render_error_bound_table
        from repro.runtime import Metrics

        metrics = Metrics()
        with metrics.time("cli.bound"):
            table = error_bound_table(dataset=args.dataset, seed=args.seed)
        print(render_error_bound_table(table))
        return _finish(args, None, metrics.snapshot() if args.metrics else None)
    if args.command == "all":
        journal, retry_policy = _resilience(args, "all")
        tracer = _make_tracer(args)
        telemetry = _telemetry_for(args)
        all_records: list = []
        try:
            for name in _FIGURES:
                rendered, records = _run_figure(
                    name, args, journal=journal, retry_policy=retry_policy,
                    tracer=tracer, telemetry=telemetry,
                )
                print(rendered)
                print()
                all_records.extend(records)
            table = accuracy_table(scale=args.scale, seed=args.seed)
        except BaseException as exc:
            _emit_partial(
                args, tracer, telemetry, exc,
                _merged_record_metrics(all_records) if args.metrics else None,
            )
            raise
        print(render_accuracy_table(table))
        slo_code = telemetry.close() if telemetry is not None else 0
        return max(slo_code, _finish(
            args, tracer,
            _merged_record_metrics(all_records) if args.metrics else None,
        ))
    if args.command == "topk":
        from repro.core import top_k_pairs
        from repro.graphs import load_dataset_pair
        from repro.runtime import ExecutionContext

        graph_a, graph_b = load_dataset_pair(
            args.dataset, scale=args.scale, seed=args.seed
        )
        iterations = args.iterations
        if iterations is None:
            iterations = ExperimentConfig.for_scale(args.scale).iterations
        tracer = _make_tracer(args)
        telemetry = _telemetry_for(args)
        context = ExecutionContext(
            tracer=tracer,
            metrics=telemetry.metrics if telemetry is not None else None,
            slow_queries=(
                telemetry.slow_queries if telemetry is not None else None
            ),
        )
        try:
            pairs = top_k_pairs(
                graph_a, graph_b, args.top, iterations=iterations,
                context=context, max_workers=args.workers,
                backend=args.backend,
                precision=args.precision, recompress_tol=args.recompress_tol,
            )
        except BaseException as exc:
            _emit_partial(args, tracer, telemetry, exc, context.snapshot())
            raise
        print(f"top-{args.top} pairs on {graph_a.name} (K={iterations}):")
        for pair in pairs:
            print(
                f"  G_A {pair.node_a:>7}  ~  G_B {pair.node_b:>6}"
                f"   score {pair.score:.5f}"
            )
        slo_code = telemetry.close() if telemetry is not None else 0
        return max(slo_code, _finish(
            args, tracer, context.snapshot() if args.metrics else None
        ))
    if args.command == "sim":
        import numpy as np

        from repro.core import top_k_pairs
        from repro.core.gsim_plus import gsim_plus
        from repro.graphs import read_edge_list
        from repro.runtime import ExecutionContext

        from repro.runtime.resilience import CheckpointManager, RetryPolicy

        checkpoints = None
        if args.checkpoint_dir:
            from pathlib import Path

            checkpoints = CheckpointManager(
                Path(args.checkpoint_dir), prefix="sim"
            )
        elif args.resume:
            print("error: --resume requires --checkpoint-dir", file=sys.stderr)
            return 2
        retry_policy = (
            RetryPolicy(max_attempts=args.retries + 1)
            if args.retries > 0
            else None
        )

        if args.mmap_dir is not None and args.relabel:
            print(
                "error: --mmap-dir is incompatible with --relabel "
                "(streaming conversion needs integer node ids)",
                file=sys.stderr,
            )
            return 2

        def _load_graph(source: str) -> "object":
            if args.mmap_dir is None:
                return read_edge_list(source, relabel=args.relabel)
            from pathlib import Path

            from repro.graphs import MmapCSRGraph, convert_edge_list

            path = Path(source)
            if (path / "manifest.json").exists():
                return MmapCSRGraph(path)
            return convert_edge_list(path, Path(args.mmap_dir) / path.stem)

        graph_a = _load_graph(args.graph_a)
        graph_b = _load_graph(args.graph_b)
        print(f"G_A = {graph_a}")
        print(f"G_B = {graph_b}")
        tracer = _make_tracer(args)
        telemetry = _telemetry_for(args)
        context = ExecutionContext(
            tracer=tracer,
            metrics=telemetry.metrics if telemetry is not None else None,
            slow_queries=(
                telemetry.slow_queries if telemetry is not None else None
            ),
        )
        if args.top is not None:
            def _top_pairs():
                return top_k_pairs(
                    graph_a, graph_b, args.top, iterations=args.iterations,
                    context=context, max_workers=args.workers,
                    backend=args.backend,
                    precision=args.precision,
                    recompress_tol=args.recompress_tol,
                )

            try:
                if retry_policy is not None:
                    pairs = retry_policy.call(_top_pairs, what="sim topk")
                else:
                    pairs = _top_pairs()
            except BaseException as exc:
                _emit_partial(args, tracer, telemetry, exc, context.snapshot())
                raise
            for pair in pairs:
                print(f"  {pair.node_a}\t{pair.node_b}\t{pair.score:.6f}")
            slo_code = telemetry.close() if telemetry is not None else 0
            return max(slo_code, _finish(
                args, tracer, context.snapshot() if args.metrics else None
            ))

        def _parse_queries(raw: str | None) -> list[int] | None:
            if raw is None:
                return None
            return [int(token) for token in raw.split(",") if token.strip()]

        def _compute(resume_from):
            return gsim_plus(
                graph_a,
                graph_b,
                iterations=args.iterations,
                queries_a=_parse_queries(args.queries_a),
                queries_b=_parse_queries(args.queries_b),
                normalization="global",
                context=context,
                checkpoints=checkpoints,
                resume_from=resume_from,
                max_workers=args.workers,
                backend=args.backend,
                precision=args.precision,
                recompress_tol=args.recompress_tol,
            )

        resume_from = {"manager": checkpoints if args.resume else None}
        try:
            if retry_policy is not None:
                def _on_retry(attempt: int, exc: BaseException) -> None:
                    # A failed attempt may still have snapshotted progress;
                    # pick up from the last valid checkpoint rather than
                    # iteration zero.
                    resume_from["manager"] = checkpoints

                result = retry_policy.call(
                    lambda: _compute(resume_from["manager"]),
                    what="sim",
                    on_retry=_on_retry,
                )
            else:
                result = _compute(resume_from["manager"])
        except BaseException as exc:
            _emit_partial(args, tracer, telemetry, exc, context.snapshot())
            raise
        if args.output:
            np.savetxt(args.output, result.similarity, delimiter=",", fmt="%.8g")
            print(f"{result.similarity.shape} block written to {args.output}")
        else:
            with np.printoptions(precision=4, suppress=True, threshold=400):
                print(result.similarity)
        slo_code = telemetry.close() if telemetry is not None else 0
        return max(slo_code, _finish(
            args, tracer, context.snapshot() if args.metrics else None
        ))
    if args.command == "live":
        return _run_live(args)
    if args.command == "spec":
        from repro.experiments.export import write_csv
        from repro.experiments.spec import ExperimentSpec, run_spec

        journal, retry_policy = _resilience(args, "spec")
        tracer = _make_tracer(args)
        spec = ExperimentSpec.from_json(args.spec_path)
        if args.precision != "float64" or args.recompress_tol is not None:
            # CLI flags override the spec file's precision policy.
            import dataclasses

            overrides = {}
            if args.precision != "float64":
                overrides["precision"] = args.precision
            if args.recompress_tol is not None:
                overrides["recompress_tol"] = args.recompress_tol
            spec = dataclasses.replace(spec, **overrides)
        telemetry = _telemetry_for(args)
        try:
            records = run_spec(
                spec, journal=journal, retry_policy=retry_policy,
                max_workers=args.workers, tracer=tracer,
                metrics_sink=telemetry.metrics if telemetry is not None else None,
                slow_queries=(
                    telemetry.slow_queries if telemetry is not None else None
                ),
            )
        except BaseException as exc:
            _emit_partial(args, tracer, telemetry, exc)
            raise
        if journal is not None:
            print(
                f"[{journal.hits}/{len(records)} cells replayed from "
                f"{journal.path}]"
            )
        column = "dataset" if spec.sweep_axis is None else {
            "iterations": "k",
            "query_size": "q_a",
            "sample_size": "n_b",
        }[spec.sweep_axis]
        print(
            render_records(
                records, column_key=column, metric=args.metric, title=spec.name
            )
        )
        if args.export_csv:
            write_csv(records, args.export_csv)
            print(f"records written to {args.export_csv}")
        slo_code = telemetry.close() if telemetry is not None else 0
        return max(slo_code, _finish(
            args, tracer,
            _merged_record_metrics(records) if args.metrics else None,
        ))
    if args.command == "datasets":
        if getattr(args, "datasets_command", None) == "convert":
            from pathlib import Path

            from repro.graphs import convert_edge_list

            out_dir = Path(args.out_dir)
            graph = convert_edge_list(
                Path(args.edge_list),
                out_dir,
                mode=args.mode,
                comment=args.comment,
                name=args.name,
                resume=not args.no_resume,
            )
            on_disk = sum(
                item.stat().st_size for item in out_dir.iterdir()
                if item.is_file()
            )
            print(f"converted {args.edge_list} -> {out_dir}")
            print(
                f"  {graph.name}: {graph.num_nodes:,} nodes, "
                f"{graph.num_edges:,} edges, {on_disk:,} bytes on disk "
                f"({graph.resident_bytes():,} resident)"
            )
            return 0
        from repro.experiments.report import render_table
        from repro.graphs import DATASETS, degree_statistics, load_dataset
        from repro.runtime import Metrics

        metrics = Metrics()
        rows = []
        for key in sorted(DATASETS):
            spec = DATASETS[key]
            with metrics.time("cli.datasets"):
                graph = load_dataset(key, scale=args.scale, seed=args.seed)
                stats = degree_statistics(graph)
            rows.append(
                [
                    key,
                    f"{spec.paper_nodes:,}",
                    f"{spec.paper_edges:,}",
                    f"{spec.edge_ratio:.1f}",
                    f"{graph.num_nodes:,}",
                    f"{graph.num_edges:,}",
                    f"{graph.average_degree:.1f}",
                    f"{stats.gini:.2f}",
                ]
            )
        print(
            render_table(
                [
                    "key", "paper n", "paper m", "paper m/n",
                    f"{args.scale} n", f"{args.scale} m", "m/n", "gini",
                ],
                rows,
                title=f"Simulated dataset registry (scale={args.scale})",
            )
        )
        return _finish(args, None, metrics.snapshot() if args.metrics else None)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
