"""Resource guards — deterministic stand-ins for the paper's failures.

The paper's evaluation reports two failure modes on its 256 GB testbed:
algorithms that *crash* (GSim/GSVD/RSim exhausting memory on the larger
graphs) and algorithms that *fail to yield results within one day*
(NED, RSim at larger k).  Reproducing those by actually exhausting this
container's RAM or spending a day per cell would be wasteful and flaky, so
the harness predicts resource usage with the Table 1 cost models
(:mod:`repro.core.complexity`) *before* launching a run:

* a predicted working set above :class:`MemoryBudget` raises
  :class:`MemoryBudgetExceeded` → recorded as ``OOM``;
* a predicted runtime above :class:`Deadline` raises
  :class:`DeadlineExceeded` → recorded as ``TIMEOUT``.

Runs that pass the prediction gate execute for real under an armed
:class:`repro.runtime.ExecutionContext` (live deadline + memory ledger)
and are measured with :class:`repro.utils.timing.Stopwatch` / tracemalloc.
DESIGN.md §4 records this substitution.

This module is now a façade: the guard implementations live in
:mod:`repro.runtime` (one enforcement layer shared by the experiments
harness and the library's compute loops); the historical names are
re-exported here so experiment code and tests keep importing from
``repro.experiments.guards``.
"""

from __future__ import annotations

from repro.runtime import (
    Deadline,
    DeadlineExceeded,
    MemoryBudget,
    MemoryBudgetExceeded,
    WallClockDeadline,
)

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "WallClockDeadline",
]
