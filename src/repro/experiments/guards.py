"""Resource guards — deterministic stand-ins for the paper's failures.

The paper's evaluation reports two failure modes on its 256 GB testbed:
algorithms that *crash* (GSim/GSVD/RSim exhausting memory on the larger
graphs) and algorithms that *fail to yield results within one day*
(NED, RSim at larger k).  Reproducing those by actually exhausting this
container's RAM or spending a day per cell would be wasteful and flaky, so
the harness predicts resource usage with the Table 1 cost models
(:mod:`repro.core.complexity`) *before* launching a run:

* a predicted working set above :class:`MemoryBudget` raises
  :class:`MemoryBudgetExceeded` → recorded as ``OOM``;
* a predicted runtime above :class:`Deadline` raises
  :class:`DeadlineExceeded` → recorded as ``TIMEOUT``.

Runs that pass the prediction gate execute for real and are measured with
:class:`repro.utils.timing.Stopwatch` / tracemalloc.  DESIGN.md §4 records
this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.deadline import DeadlineExceeded, WallClockDeadline
from repro.utils.memory import format_bytes

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "WallClockDeadline",
]


class MemoryBudgetExceeded(RuntimeError):
    """Predicted working set exceeds the experiment's memory budget."""


@dataclass(frozen=True)
class MemoryBudget:
    """A byte ceiling for one experiment cell.

    The default of 256 MiB is calibrated so that, on the ``small`` scale
    profile, the dense baselines survive the scaled HP and EE datasets but
    crash on WT/UK/IT — the same survival pattern as the paper's Figure 6
    at full scale (where the wall sits between EE's 21 GB and WT's 192 GB
    dense similarity matrix).
    """

    limit_bytes: int = 256 * 1024 * 1024

    def check(self, predicted_bytes: float, what: str) -> None:
        """Raise :class:`MemoryBudgetExceeded` when over budget."""
        if predicted_bytes > self.limit_bytes:
            raise MemoryBudgetExceeded(
                f"{what}: predicted {format_bytes(predicted_bytes)} exceeds "
                f"budget {format_bytes(self.limit_bytes)}"
            )

    def allows(self, predicted_bytes: float) -> bool:
        """Non-raising variant of :meth:`check`."""
        return predicted_bytes <= self.limit_bytes


@dataclass(frozen=True)
class Deadline:
    """A wall-clock ceiling for one experiment cell.

    ``limit_seconds`` plays the role of the paper's "one day"; the default
    of 20 s keeps full figure regeneration to minutes on this hardware
    while preserving which algorithms do and do not finish.

    Enforcement is two-stage.  The *predictive* stage
    (:meth:`check_predicted`) vetoes a run outright only when the cost
    model predicts at least ``predictive_factor`` times the budget —
    cost models are worst-case, so borderline cells still get attempted.
    Attempted cells run under a cooperative
    :class:`repro.utils.deadline.WallClockDeadline` armed via :meth:`arm`,
    which stops them at the real limit.
    """

    limit_seconds: float = 20.0
    predictive_factor: float = 30.0

    def check_predicted(self, predicted_seconds: float, what: str) -> None:
        """Raise :class:`DeadlineExceeded` for clearly hopeless cells."""
        ceiling = self.limit_seconds * self.predictive_factor
        if predicted_seconds > ceiling:
            raise DeadlineExceeded(
                f"{what}: predicted {predicted_seconds:.1f}s exceeds "
                f"{ceiling:.0f}s ({self.predictive_factor:.0f}x the "
                f"{self.limit_seconds:.1f}s budget)"
            )

    def arm(self) -> WallClockDeadline:
        """Start a cooperative wall-clock deadline for one run."""
        return WallClockDeadline(self.limit_seconds)

    def allows(self, predicted_seconds: float) -> bool:
        """Whether the predictive stage would let this cell run."""
        return predicted_seconds <= self.limit_seconds * self.predictive_factor
