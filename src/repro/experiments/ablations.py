"""Ablations of the design choices DESIGN.md §5 calls out.

Each ablation returns a list of ``(variant, seconds, extra)`` rows that the
corresponding benchmark prints:

* :func:`ablation_rank_cap` — GSim+ with the paper's dense fallback vs the
  lossless QR compression vs unbounded factor growth.
* :func:`ablation_normalization` — normalise once at the end (Eq. 6) vs
  per-iteration scalar rescaling overhead.
* :func:`ablation_query_extraction` — Algorithm 1's late row extraction vs
  materialising the full matrix then slicing.
* :func:`ablation_gsvd_rank` — GSVD's speed/accuracy trade-off across r.
* :func:`ablation_rolesim_matching` — greedy vs exact Hungarian matching.
* :func:`ablation_sampling_strategy` — uniform vs BFS vs forest-fire
  construction of ``G_B``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import frobenius_error
from repro.baselines.gsim import gsim
from repro.baselines.gsvd import gsvd
from repro.baselines.rolesim import rolesim
from repro.core.gsim_plus import gsim_plus
from repro.graphs.graph import Graph
from repro.utils.timing import time_call

__all__ = [
    "AblationRow",
    "ablation_gsvd_rank",
    "ablation_normalization",
    "ablation_query_extraction",
    "ablation_rank_cap",
    "ablation_rolesim_matching",
    "ablation_sampling_strategy",
]


@dataclass(frozen=True)
class AblationRow:
    """One measured variant of a design-choice ablation."""

    variant: str
    seconds: float
    detail: str = ""


def ablation_rank_cap(
    graph_a: Graph, graph_b: Graph, iterations: int = 12
) -> list[AblationRow]:
    """Compare the three rank-cap behaviours at an iteration count deep
    enough that ``2^k`` passes ``min(n_A, n_B)``.

    All three must produce the same similarity (exactness); they differ in
    time/memory once the cap engages.
    """
    reference = None
    rows = []
    for mode in ("dense", "qr-compress", "none"):
        result, seconds = time_call(
            gsim_plus, graph_a, graph_b, iterations=iterations, rank_cap=mode
        )
        if reference is None:
            reference = result.similarity
            drift = 0.0
        else:
            drift = frobenius_error(result.similarity, reference)
        rows.append(
            AblationRow(
                variant=mode,
                seconds=seconds,
                detail=f"width={result.final_width} drift={drift:.2e}",
            )
        )
    return rows


def ablation_normalization(
    graph_a: Graph, graph_b: Graph, iterations: int = 8
) -> list[AblationRow]:
    """Block vs global normalisation of the extracted query block.

    Both cost the same asymptotically; the row records the similarity
    drift between the two conventions on a random query workload.
    """
    rng = np.random.default_rng(5)
    queries_a = np.sort(
        rng.choice(graph_a.num_nodes, size=min(32, graph_a.num_nodes), replace=False)
    )
    queries_b = np.sort(
        rng.choice(graph_b.num_nodes, size=min(32, graph_b.num_nodes), replace=False)
    )
    rows = []
    results = {}
    for mode in ("block", "global"):
        result, seconds = time_call(
            gsim_plus,
            graph_a,
            graph_b,
            iterations=iterations,
            queries_a=queries_a,
            queries_b=queries_b,
            normalization=mode,
        )
        results[mode] = result.similarity
        rows.append(AblationRow(variant=mode, seconds=seconds))
    # The two conventions agree up to a positive scalar; record the angle.
    block, global_ = results["block"], results["global"]
    cosine = float(
        np.sum(block * global_)
        / (np.linalg.norm(block) * np.linalg.norm(global_))
    )
    rows.append(
        AblationRow(variant="agreement", seconds=0.0, detail=f"cosine={cosine:.6f}")
    )
    return rows


def ablation_query_extraction(
    graph_a: Graph, graph_b: Graph, iterations: int = 8, query_size: int = 32
) -> list[AblationRow]:
    """Late factored extraction (Algorithm 1) vs full materialisation.

    Demonstrates the |Q_A||Q_B| term in Theorem 4.1 replacing the naive
    n_A n_B one.
    """
    rng = np.random.default_rng(6)
    queries_a = np.sort(
        rng.choice(
            graph_a.num_nodes, size=min(query_size, graph_a.num_nodes), replace=False
        )
    )
    queries_b = np.sort(
        rng.choice(
            graph_b.num_nodes, size=min(query_size, graph_b.num_nodes), replace=False
        )
    )

    def _late() -> np.ndarray:
        return gsim_plus(
            graph_a,
            graph_b,
            iterations=iterations,
            queries_a=queries_a,
            queries_b=queries_b,
        ).similarity

    def _full_then_slice() -> np.ndarray:
        full = gsim(graph_a, graph_b, iterations=iterations).similarity
        block = full[np.ix_(queries_a, queries_b)]
        return block / np.linalg.norm(block)

    late_block, late_seconds = time_call(_late)
    naive_block, naive_seconds = time_call(_full_then_slice)
    drift = frobenius_error(late_block, naive_block)
    return [
        AblationRow("factored-late-extraction", late_seconds, f"drift={drift:.2e}"),
        AblationRow("materialise-then-slice", naive_seconds),
    ]


def ablation_gsvd_rank(
    graph_a: Graph,
    graph_b: Graph,
    iterations: int = 10,
    ranks: tuple[int, ...] = (5, 10, 50),
) -> list[AblationRow]:
    """GSVD's fixed rank r: time and error both rise/fall with r."""
    reference = gsim(graph_a, graph_b, iterations=iterations).similarity
    rows = []
    for rank in ranks:
        result, seconds = time_call(
            gsvd, graph_a, graph_b, iterations=iterations, rank=rank
        )
        error = frobenius_error(result.similarity_matrix(), reference)
        rows.append(
            AblationRow(variant=f"r={rank}", seconds=seconds, detail=f"err={error:.3e}")
        )
    return rows


def ablation_rolesim_matching(
    graph: Graph, iterations: int = 3
) -> list[AblationRow]:
    """Greedy vs exact Hungarian neighbour matching inside RoleSim."""
    rows = []
    results = {}
    for strategy in ("greedy", "exact"):
        result, seconds = time_call(
            rolesim, graph, iterations=iterations, matching=strategy
        )
        results[strategy] = result.similarity
        rows.append(AblationRow(variant=strategy, seconds=seconds))
    gap = float(np.abs(results["greedy"] - results["exact"]).max())
    rows.append(
        AblationRow(variant="max-entry-gap", seconds=0.0, detail=f"{gap:.3e}")
    )
    return rows


def ablation_sampling_strategy(
    graph: Graph, sample_size: int = 64, iterations: int = 6, seed: int = 5
) -> list[AblationRow]:
    """How the G_B sampling strategy shapes the similarity problem.

    The paper samples G_B uniformly; BFS and forest-fire samples keep more
    of the local structure.  Each row reports the sampled subgraph's edge
    retention and the GSim+ run time — structure-preserving samples carry
    more edges, hence denser iterations.
    """
    from repro.graphs.sampling import bfs_sample, forest_fire_sample, random_node_sample

    samplers = [
        ("random-node", random_node_sample),
        ("bfs", bfs_sample),
        ("forest-fire", forest_fire_sample),
    ]
    rows = []
    for name, sampler in samplers:
        subgraph = sampler(graph, sample_size, seed=seed)
        result, seconds = time_call(
            gsim_plus, graph, subgraph, iterations=iterations
        )
        del result
        rows.append(
            AblationRow(
                variant=name,
                seconds=seconds,
                detail=f"sample_edges={subgraph.num_edges}",
            )
        )
    return rows
