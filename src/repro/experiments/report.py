"""Plain-text rendering of experiment results.

The paper presents its evaluation as log-scale line plots; in a terminal
library the equivalent deliverable is an aligned table whose rows are the
plot series.  ``render_records`` pivots a list of
:class:`repro.experiments.runner.RunRecord` into such a table, showing
measured seconds / memory for OK cells and ``OOM`` / ``>1day`` markers for
vetoed ones — the textual twin of the paper's missing data points.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.runner import Outcome, RunRecord
from repro.utils.memory import format_bytes

__all__ = ["render_records", "render_table"]

_FAIL_LABELS = {
    Outcome.OOM: "OOM",
    Outcome.TIMEOUT: ">1day",
    Outcome.ERROR: "ERR",
}


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[str]], title: str = ""
) -> str:
    """Render an aligned monospace table.

    >>> print(render_table(["a", "b"], [["1", "22"]]))
    a | b
    --+---
    1 | 22
    """
    materialised = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in materialised:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format_seconds(value: float) -> str:
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _cell(record: RunRecord, metric: str) -> str:
    if record.outcome is not Outcome.OK:
        return _FAIL_LABELS[record.outcome]
    if metric == "time":
        assert record.seconds is not None
        return _format_seconds(record.seconds)
    if metric == "memory":
        assert record.memory_bytes is not None
        return format_bytes(record.memory_bytes)
    raise ValueError(f"unknown metric {metric!r}")


def render_records(
    records: Iterable[RunRecord],
    column_key: str = "dataset",
    metric: str = "time",
    title: str = "",
) -> str:
    """Pivot records into an ``algorithm x column_key`` table.

    Parameters
    ----------
    column_key:
        ``"dataset"`` or the name of an entry in ``record.params`` (e.g.
        ``"k"``, ``"n_b"``, ``"q_a"``) to use as the sweep axis.
    metric:
        ``"time"`` or ``"memory"``.
    """
    record_list = list(records)
    algorithms: list[str] = []
    columns: list[str] = []
    cells: dict[tuple[str, str], str] = {}
    for record in record_list:
        if column_key == "dataset":
            column = record.dataset
        else:
            column = str(record.params.get(column_key, "?"))
        if record.algorithm not in algorithms:
            algorithms.append(record.algorithm)
        if column not in columns:
            columns.append(column)
        cells[(record.algorithm, column)] = _cell(record, metric)
    headers = ["algorithm"] + columns
    rows = [
        [name] + [cells.get((name, column), "-") for column in columns]
        for name in algorithms
    ]
    return render_table(headers, rows, title=title)
