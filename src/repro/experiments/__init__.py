"""Experiment harness regenerating every figure and table of the paper.

* :mod:`repro.experiments.guards` — resource guards turning the paper's
  "crashed" / "did not finish within one day" outcomes into deterministic,
  recorded events.
* :mod:`repro.experiments.runner` — the algorithm registry and the
  measured-run machinery shared by all drivers.
* :mod:`repro.experiments.figures` — drivers for Figures 2-8.
* :mod:`repro.experiments.tables` — the §5.2.3 accuracy table.
* :mod:`repro.experiments.ablations` — design-choice ablations from
  DESIGN.md §5.
* :mod:`repro.experiments.journal` — the persistent run journal making
  long sweeps resumable cell by cell.
* :mod:`repro.experiments.report` — plain-text rendering of result tables.
"""

from repro.experiments.guards import (
    Deadline,
    DeadlineExceeded,
    MemoryBudget,
    MemoryBudgetExceeded,
)
from repro.experiments.journal import RunJournal
from repro.experiments.report import render_records, render_table
from repro.experiments.runner import (
    ALGORITHMS,
    AlgorithmSpec,
    ExperimentConfig,
    Outcome,
    RunRecord,
    cell_key,
    run_algorithm,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "Deadline",
    "DeadlineExceeded",
    "ExperimentConfig",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "Outcome",
    "RunJournal",
    "RunRecord",
    "cell_key",
    "render_records",
    "render_table",
    "run_algorithm",
]
