"""Algorithm registry and measured-run machinery.

Every experiment driver goes through :func:`run_algorithm`:

1. the instance parameters are fed to the algorithm's Table 1 cost model;
2. the memory/time guards may veto the run (recorded as OOM / TIMEOUT,
   mirroring the paper's crash / did-not-finish outcomes);
3. otherwise the algorithm executes for real under a stopwatch and a
   tracemalloc tracker, and the measurement is recorded.

The :data:`ALGORITHMS` registry holds one :class:`AlgorithmSpec` per
competitor with a uniform call signature
``run(graph_a, graph_b, queries_a, queries_b, iterations, context) ->
ndarray``.  Measured runs execute under one
:class:`repro.runtime.ExecutionContext` per cell — armed wall-clock
deadline, live memory ledger, and a metrics sink whose snapshot is stored
on the resulting :class:`RunRecord`.
"""

from __future__ import annotations

import enum
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.baselines.gsim import gsim_partial
from repro.baselines.gsvd import gsvd
from repro.baselines.ned import TreeSizeLimitExceeded, ned_query
from repro.baselines.rolesim import rolesim_query
from repro.baselines.structsim import structsim_query
from repro.core.complexity import InstanceParams, predict_cost
from repro.core.gsim_plus import gsim_plus
from repro.experiments.guards import (
    Deadline,
    DeadlineExceeded,
    MemoryBudget,
    MemoryBudgetExceeded,
)
from repro.graphs.graph import Graph
from repro.runtime import BudgetExceeded, ExecutionContext
from repro.runtime.parallel import WorkerPool
from repro.runtime.resilience import RetryPolicy
from repro.runtime.trace import NULL_TRACER, NullTracer, Tracer
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.journal import RunJournal
    from repro.runtime.metrics import Metrics
    from repro.runtime.telemetry import SlowQueryLog

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "CellTask",
    "ExperimentConfig",
    "Outcome",
    "RunRecord",
    "run_algorithm",
    "run_cells",
]

RunFn = Callable[
    [Graph, Graph, np.ndarray, np.ndarray, int, "ExecutionContext | None"],
    np.ndarray,
]


class Outcome(enum.Enum):
    """Terminal state of one experiment cell."""

    OK = "ok"
    OOM = "oom"
    TIMEOUT = "timeout"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered competitor.

    Attributes
    ----------
    name:
        Display name used in figures (matches the paper's labels).
    run:
        Uniform entry point returning the query-block scores.
    cost_model:
        Key into :data:`repro.core.complexity.COST_MODELS`.
    units_per_second:
        Calibration constant converting the model's dominant-term operation
        count into predicted seconds on this hardware.  Vectorised NumPy
        kernels sustain ~1e8 units/s; per-pair Python loops far less.
        Used only by the predictive time gate — measured runs report real
        wall clock.
    working_set_factor:
        Multiplier on the model's space estimate accounting for temporaries
        (e.g. GSim holds S, the updated S, and one product at once).
    """

    name: str
    run: RunFn
    cost_model: str
    units_per_second: float
    working_set_factor: float = 1.0


@dataclass
class RunRecord:
    """Measurement (or vetoed prediction) for one cell of a figure."""

    algorithm: str
    dataset: str
    outcome: Outcome
    seconds: float | None = None
    memory_bytes: float | None = None
    predicted_seconds: float | None = None
    predicted_bytes: float | None = None
    params: dict[str, object] = field(default_factory=dict)
    note: str = ""
    metrics: dict | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """True when the cell executed and was measured."""
        return self.outcome is Outcome.OK

    def to_dict(self) -> dict:
        """A JSON-serialisable form (used by the run journal)."""
        data = asdict(self)
        data["outcome"] = self.outcome.value
        return data

    @classmethod
    def from_dict(cls, raw: dict) -> "RunRecord":
        """Inverse of :meth:`to_dict`."""
        data = dict(raw)
        data["outcome"] = Outcome(data["outcome"])
        return cls(**data)


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for a figure/table driver.

    ``retry_policy`` and ``journal`` opt a sweep into the resilience
    layer: transient per-cell failures are retried (and quarantined as
    structured ERROR records when they keep failing), and completed cells
    are journalled after every cell so an interrupted sweep can be
    re-run executing only the missing cells.

    ``max_workers`` parallelises the *cells* of a sweep (each cell keeps
    its own :class:`repro.runtime.ExecutionContext`); cells are
    independent, so records come back identical to a serial sweep except
    for timings — and per-cell memory, which is reported from the
    context's memory ledger instead of tracemalloc when cells run
    concurrently (tracemalloc is process-global and cannot attribute
    allocations to a cell).

    ``tracer`` threads a :class:`repro.runtime.Tracer` through the sweep:
    one ``sweep.run`` root span, one ``sweep.cell`` span per cell
    (attributes: cell key, algorithm, dataset, outcome, attempts, journal
    replay) stitched under the root even when cells run on worker
    threads, and the per-cell contexts inherit the tracer so solver and
    shard spans nest inside their cell.

    ``metrics_sink`` is a live aggregation target for operational
    telemetry: every finished cell's metric snapshot is merged into it
    as the cell completes, so a
    :class:`repro.runtime.telemetry.PeriodicFlusher` watching the sink
    exports sweep progress at cell granularity instead of only at the
    end.  ``slow_queries`` rides the per-cell contexts the same way, so
    retrieval calls inside cells land in one shared slow-query ring.
    Both are observation-only: results are bit-identical with or without
    them.
    """

    scale: str = "small"
    iterations: int = 10
    seed: int = 7
    memory_budget: MemoryBudget = field(default_factory=MemoryBudget)
    deadline: Deadline = field(default_factory=Deadline)
    retry_policy: RetryPolicy | None = None
    journal: "RunJournal | None" = None
    max_workers: int = 1
    tracer: "Tracer | None" = None
    precision: str = "float64"
    recompress_tol: float | None = None
    metrics_sink: "Metrics | None" = None
    slow_queries: "SlowQueryLog | None" = None
    backend: str = "thread"
    solver_workers: int | None = None

    def solver_options(self) -> dict[str, object]:
        """Non-default GSim+ solver knobs, for :func:`run_algorithm`.

        Defaults map to an empty dict so journal cell keys (and
        measured behaviour) are unchanged for existing sweeps.

        ``backend``/``solver_workers`` parallelise the SpMM *inside* each
        GSim+ cell (``max_workers`` parallelises across cells, which must
        stay on threads — cell closures are not picklable).  Results are
        bit-identical either way, so journal keys are again only extended
        for non-default values.
        """
        options: dict[str, object] = {}
        if self.precision != "float64":
            options["precision"] = self.precision
        if self.recompress_tol is not None:
            options["recompress_tol"] = self.recompress_tol
        if self.backend != "thread":
            options["backend"] = self.backend
        if self.solver_workers is not None:
            options["max_workers"] = self.solver_workers
        return options

    # k per profile such that 2^k stays well below the scaled |V_B|
    # (paper regime: 2^10 = 1024 << |V_B| = 10,000).  Past that point
    # GSim+ correctly reverts to dense GSim and the speed gap closes by
    # design, so shape comparisons use the factored regime.
    _SCALE_ITERATIONS = {"tiny": 5, "small": 7, "medium": 9, "paper": 10}

    @classmethod
    def for_scale(cls, scale: str, seed: int = 7, **overrides) -> "ExperimentConfig":
        """Config whose iteration count keeps 2^k below the scaled |V_B|."""
        if scale not in cls._SCALE_ITERATIONS:
            raise KeyError(
                f"unknown scale {scale!r}; choose from {sorted(cls._SCALE_ITERATIONS)}"
            )
        return cls(
            scale=scale,
            iterations=cls._SCALE_ITERATIONS[scale],
            seed=seed,
            **overrides,
        )


# ----------------------------------------------------------------------
# Uniform adapters
# ----------------------------------------------------------------------
def _run_gsim_plus(
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray,
    queries_b: np.ndarray,
    iterations: int,
    context: ExecutionContext | None = None,
    **solver_options,
) -> np.ndarray:
    return gsim_plus(
        graph_a,
        graph_b,
        iterations=iterations,
        queries_a=queries_a,
        queries_b=queries_b,
        context=context,
        **solver_options,
    ).similarity


def _run_gsvd(
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray,
    queries_b: np.ndarray,
    iterations: int,
    context: ExecutionContext | None = None,
    **_solver_options,
) -> np.ndarray:
    result = gsvd(graph_a, graph_b, iterations=iterations, rank=10, context=context)
    return result.query_block(queries_a, queries_b)


def _run_gsim(
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray,
    queries_b: np.ndarray,
    iterations: int,
    context: ExecutionContext | None = None,
    **_solver_options,
) -> np.ndarray:
    return gsim_partial(
        graph_a, graph_b, queries_a, queries_b, iterations=iterations, context=context
    ).similarity


def _run_structsim(
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray,
    queries_b: np.ndarray,
    iterations: int,
    context: ExecutionContext | None = None,
    **_solver_options,
) -> np.ndarray:
    return structsim_query(
        graph_a, graph_b, queries_a, queries_b, levels=iterations, context=context
    )


def _run_ned(
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray,
    queries_b: np.ndarray,
    iterations: int,
    context: ExecutionContext | None = None,
    **_solver_options,
) -> np.ndarray:
    # NED's tree depth plays the role of k; depth 3 already explodes on
    # non-trivial graphs (the point the paper makes), so cap it there and
    # let the cooperative deadline / tree-size limit catch the blow-ups.
    depth = min(iterations, 3)
    return ned_query(
        graph_a, graph_b, queries_a, queries_b, depth=depth,
        size_limit=500_000, context=context,
    )


def _run_rolesim(
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray,
    queries_b: np.ndarray,
    iterations: int,
    context: ExecutionContext | None = None,
    **_solver_options,
) -> np.ndarray:
    # RoleSim converges within a handful of iterations; cap at 3 so the
    # all-pairs loops get a fighting chance on the smallest profile.
    return rolesim_query(
        graph_a, graph_b, queries_a, queries_b,
        iterations=min(iterations, 3), context=context,
    )


ALGORITHMS: dict[str, AlgorithmSpec] = {
    "GSim+": AlgorithmSpec(
        name="GSim+",
        run=_run_gsim_plus,
        cost_model="gsim+",
        units_per_second=2.0e8,
        working_set_factor=2.0,  # U_k plus the doubled U_{k+1}.
    ),
    "GSVD": AlgorithmSpec(
        name="GSVD",
        run=_run_gsvd,
        cost_model="gsvd",
        units_per_second=1.0e8,
        # Table 1 charges GSVD Θ(n_A n_B) space with the same dense working
        # set as GSim — the paper shows both crashing on WT and larger.
        working_set_factor=3.0,
    ),
    "GSim": AlgorithmSpec(
        name="GSim",
        run=_run_gsim,
        cost_model="gsim",
        units_per_second=2.0e8,
        working_set_factor=3.0,  # S, the update, and one product temporary.
    ),
    "SS-BC*": AlgorithmSpec(
        name="SS-BC*",
        run=_run_structsim,
        cost_model="ss-bc",
        units_per_second=3.0e6,
        working_set_factor=1.0,
    ),
    "NED": AlgorithmSpec(
        name="NED",
        run=_run_ned,
        cost_model="ned",
        units_per_second=4.0e7,
        working_set_factor=1.0,
    ),
    "RSim": AlgorithmSpec(
        name="RSim",
        run=_run_rolesim,
        cost_model="rsim",
        units_per_second=1.0e6,
        working_set_factor=2.0,  # previous + updated all-pairs matrices.
    ),
}


def instance_params(
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray,
    queries_b: np.ndarray,
    iterations: int,
) -> InstanceParams:
    """Collect the Table 1 model inputs for one instance."""
    combined_nodes = graph_a.num_nodes + graph_b.num_nodes
    combined_edges = graph_a.num_edges + graph_b.num_edges
    d_avg = max(1.0, combined_edges / max(combined_nodes, 1))
    d_max = max(graph_a.max_degree(), graph_b.max_degree(), 1)
    # NED's L (average nodes per tree level) grows like d_avg^level; use
    # the level-2 width as the representative L the cubic term sees.
    tree_level_width = max(2.0, d_avg**2)
    return InstanceParams(
        n_a=graph_a.num_nodes,
        n_b=graph_b.num_nodes,
        m_a=graph_a.num_edges,
        m_b=graph_b.num_edges,
        q_a=int(queries_a.size),
        q_b=int(queries_b.size),
        iterations=iterations,
        d_avg=d_avg,
        d_max=int(d_max),
        tree_level_width=tree_level_width,
    )


def cell_key(algorithm: str, dataset: str, params: dict[str, object]) -> str:
    """The canonical identity of one sweep cell (for the run journal).

    Folds in every instance parameter the runner records (graph sizes,
    query sizes, iteration count), so sweeping any axis — k, |V_B|, |Q|
    — yields distinct keys while a re-run of the same sweep maps onto
    the same ones.
    """
    rendered = ",".join(f"{key}={params[key]}" for key in sorted(params))
    return f"{algorithm}|{dataset}|{rendered}"


def run_algorithm(
    spec: AlgorithmSpec,
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray,
    queries_b: np.ndarray,
    iterations: int,
    memory_budget: MemoryBudget | None = None,
    deadline: Deadline | None = None,
    dataset: str = "",
    retry_policy: RetryPolicy | None = None,
    journal: "RunJournal | None" = None,
    track_memory: bool = True,
    tracer: "Tracer | NullTracer | None" = None,
    trace_parent=None,
    solver_options: dict[str, object] | None = None,
    metrics_sink: "Metrics | None" = None,
    slow_queries: "SlowQueryLog | None" = None,
) -> RunRecord:
    """Gate, execute, and measure one experiment cell.

    ``solver_options`` carries non-default solver knobs (currently
    GSim+'s ``precision`` / ``recompress_tol``); they fold into the
    journal cell key so a float32 or recompressed sweep never replays a
    float64 cell, while default runs keep their historical keys.

    Never raises for resource vetoes — those come back as OOM/TIMEOUT
    records, exactly like the crossed-out cells in the paper's figures.
    Attempted cells run under an :class:`repro.runtime.ExecutionContext`
    carrying the armed deadline and a live memory ledger; the context's
    metric snapshot (including partial metrics from interrupted runs) is
    stored on the record.

    With a ``retry_policy``, transient failures (I/O hiccups, injected
    faults) are retried with backoff; a cell that keeps failing is
    *quarantined* as a structured ERROR record rather than aborting the
    sweep.  With a ``journal``, an already-journalled cell is replayed
    without executing and every finished cell is persisted immediately,
    making multi-hour sweeps resumable cell by cell.

    ``track_memory=False`` skips the tracemalloc tracker (which is
    process-global, so concurrent cells would see each other's
    allocations) and reports the cell's memory from its context's
    memory-ledger peak instead; :func:`run_cells` sets this
    automatically when the sweep runs on a worker pool.

    With a ``tracer``, the whole cell — journal replays, every retry
    attempt, and quarantine — runs inside one ``sweep.cell`` span
    (attributes: cell key, algorithm, dataset, outcome, attempts,
    ``replayed``); ``trace_parent`` stitches it under the submitting
    sweep's root span when cells execute on worker threads.  A
    quarantined cell additionally logs a ``sweep.quarantined`` event.

    ``metrics_sink`` receives the finished cell's metric snapshot via
    :meth:`Metrics.merge_snapshot` (replayed cells included), so a
    telemetry flusher watching the sink sees the sweep advance cell by
    cell; ``slow_queries`` is handed to the cell's execution context so
    retrieval latencies inside the cell feed one shared slow-query ring.
    """
    memory_budget = memory_budget or MemoryBudget()
    deadline = deadline or Deadline()
    dataset = dataset or graph_a.name
    tracer = tracer if tracer is not None else NULL_TRACER
    params = instance_params(graph_a, graph_b, queries_a, queries_b, iterations)
    record_params: dict[str, object] = {
        "n_a": params.n_a,
        "n_b": params.n_b,
        "m_a": params.m_a,
        "m_b": params.m_b,
        "q_a": params.q_a,
        "q_b": params.q_b,
        "k": iterations,
    }
    if solver_options:
        record_params.update(solver_options)
    key = cell_key(spec.name, dataset, record_params)
    with tracer.span("sweep.cell", parent=trace_parent) as cell_span:
        cell_span.set_attribute("cell", key)
        cell_span.set_attribute("algorithm", spec.name)
        cell_span.set_attribute("dataset", dataset)
        if journal is not None:
            replayed = journal.get(key)
            if replayed is not None:
                cell_span.set_attribute("replayed", True)
                cell_span.set_attribute("outcome", replayed.outcome.value)
                if metrics_sink is not None and replayed.metrics:
                    metrics_sink.merge_snapshot(replayed.metrics)
                return replayed

        max_attempts = retry_policy.max_attempts if retry_policy is not None else 1
        record: RunRecord | None = None
        for attempt in range(1, max_attempts + 1):
            try:
                record = _execute_cell(
                    spec, graph_a, graph_b, queries_a, queries_b, iterations,
                    memory_budget, deadline, dataset, params, record_params,
                    track_memory=track_memory, tracer=tracer,
                    solver_options=solver_options, slow_queries=slow_queries,
                )
            except Exception as exc:
                if retry_policy is None or not retry_policy.is_transient(exc):
                    raise
                if attempt >= max_attempts:
                    record = RunRecord(
                        algorithm=spec.name,
                        dataset=dataset,
                        outcome=Outcome.ERROR,
                        params=dict(record_params),
                        note=f"quarantined after {attempt} attempts: {exc}",
                        attempts=attempt,
                    )
                    tracer.event(
                        "sweep.quarantined",
                        severity="error",
                        span=cell_span,
                        cell=key,
                        attempts=attempt,
                        error=str(exc),
                    )
                    break
                time.sleep(retry_policy.delay(attempt))
                continue
            record.attempts = attempt
            break
        assert record is not None
        cell_span.set_attribute("outcome", record.outcome.value)
        cell_span.set_attribute("attempts", record.attempts)
        if journal is not None:
            journal.record(key, record)
        if metrics_sink is not None and record.metrics:
            metrics_sink.merge_snapshot(record.metrics)
        return record


def _execute_cell(
    spec: AlgorithmSpec,
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray,
    queries_b: np.ndarray,
    iterations: int,
    memory_budget: MemoryBudget,
    deadline: Deadline,
    dataset: str,
    params: InstanceParams,
    record_params: dict[str, object],
    track_memory: bool = True,
    tracer: "Tracer | NullTracer | None" = None,
    solver_options: dict[str, object] | None = None,
    slow_queries: "SlowQueryLog | None" = None,
) -> RunRecord:
    """One gated, measured attempt (structured vetoes become records)."""
    solver_options = solver_options or {}
    time_units, space_bytes = predict_cost(spec.cost_model, params)
    predicted_seconds = time_units / spec.units_per_second
    predicted_bytes = space_bytes * spec.working_set_factor
    record = RunRecord(
        algorithm=spec.name,
        dataset=dataset,
        outcome=Outcome.OK,
        predicted_seconds=predicted_seconds,
        predicted_bytes=predicted_bytes,
        params=dict(record_params),
    )
    try:
        memory_budget.check(predicted_bytes, spec.name)
        deadline.check_predicted(predicted_seconds, spec.name)
    except MemoryBudgetExceeded as exc:
        record.outcome = Outcome.OOM
        record.note = str(exc)
        return record
    except DeadlineExceeded as exc:
        record.outcome = Outcome.TIMEOUT
        record.note = str(exc)
        return record

    stopwatch = Stopwatch()
    context = ExecutionContext(
        deadline=deadline.arm(), memory=memory_budget.ledger(), tracer=tracer,
        slow_queries=slow_queries,
    )
    tracker: MemoryTracker | None = None
    try:
        if track_memory:
            with MemoryTracker() as tracker:
                with stopwatch:
                    spec.run(
                        graph_a, graph_b, queries_a, queries_b, iterations,
                        context, **solver_options,
                    )
        else:
            with stopwatch:
                spec.run(
                    graph_a, graph_b, queries_a, queries_b, iterations,
                    context, **solver_options,
                )
    except DeadlineExceeded as exc:
        record.outcome = Outcome.TIMEOUT
        record.note = str(exc)
        record.metrics = exc.metrics or context.snapshot()
        return record
    except MemoryBudgetExceeded as exc:
        # The live ledger caught a working set the predictive model missed
        # (e.g. GSim+'s dense rank-cap fallback).
        record.outcome = Outcome.OOM
        record.note = str(exc)
        record.metrics = exc.metrics or context.snapshot()
        return record
    except TreeSizeLimitExceeded as exc:
        # NED's k-adjacent trees blew past their cap — the paper reports
        # this as NED being "unresponsive".
        record.outcome = Outcome.TIMEOUT
        record.note = str(exc)
        record.metrics = context.snapshot()
        return record
    except BudgetExceeded as exc:
        # Remaining structured interruptions (e.g. cancellation).
        record.outcome = Outcome.ERROR
        record.note = str(exc)
        record.metrics = exc.metrics or context.snapshot()
        return record
    except MemoryError as exc:  # pragma: no cover - defensive
        record.outcome = Outcome.OOM
        record.note = str(exc)
        record.metrics = context.snapshot()
        return record
    except ZeroDivisionError as exc:
        # Degenerate instance (e.g. an edgeless G_B sample): the similarity
        # iterate collapsed.  Record rather than crash the whole figure.
        record.outcome = Outcome.ERROR
        record.note = str(exc)
        record.metrics = context.snapshot()
        return record
    record.seconds = stopwatch.elapsed
    if tracker is not None:
        record.memory_bytes = float(tracker.peak_bytes)
    elif context.memory is not None:
        # Ledger peak: the charged working set, not allocator truth — but
        # attributable to this cell even with other cells in flight.
        record.memory_bytes = float(context.memory.peak_bytes)
    record.metrics = context.snapshot()
    return record


@dataclass(frozen=True)
class CellTask:
    """One independent cell of a sweep, ready to hand to :func:`run_cells`."""

    spec: AlgorithmSpec
    graph_a: Graph
    graph_b: Graph
    queries_a: np.ndarray
    queries_b: np.ndarray
    iterations: int
    dataset: str = ""


def run_cells(
    tasks: "list[CellTask]", config: ExperimentConfig
) -> list[RunRecord]:
    """Run a sweep's independent cells, serially or on a worker pool.

    Each cell goes through :func:`run_algorithm` unchanged — predictive
    gating, per-cell retry/quarantine, and journal replay/persist all
    compose with the pool (the journal is lock-protected).  Records come
    back in task order for every ``config.max_workers``, and algorithm
    *results* are identical to a serial sweep because cells share no
    state.  Measurements are measurements, though: timings shift with
    CPU contention, memory is ledger- instead of tracemalloc-reported,
    and — because tracemalloc itself slows allocation-heavy Python loops
    severalfold — a cell sitting near the wall-clock limit can TIMEOUT
    in a (tracked) serial sweep yet finish in an (untracked) parallel
    one.  Predictive vetoes (``>1day`` / predicted-OOM) never vary.
    """
    pool = WorkerPool.resolve(config.max_workers)
    track_memory = pool.serial or len(tasks) <= 1
    tracer = config.tracer if config.tracer is not None else NULL_TRACER

    with tracer.span("sweep.run") as root:
        root.set_attribute("cells", len(tasks))
        root.set_attribute("max_workers", pool.max_workers)

        # Precision / recompression are GSim+ knobs; baseline cells keep
        # their historical keys (and behaviour) in mixed sweeps.
        solver_options = config.solver_options()

        def _run(task: CellTask) -> RunRecord:
            cell_options = solver_options if task.spec.name == "GSim+" else None
            return run_algorithm(
                task.spec,
                task.graph_a,
                task.graph_b,
                task.queries_a,
                task.queries_b,
                task.iterations,
                memory_budget=config.memory_budget,
                deadline=config.deadline,
                dataset=task.dataset,
                retry_policy=config.retry_policy,
                journal=config.journal,
                track_memory=track_memory,
                tracer=tracer,
                trace_parent=root,
                solver_options=cell_options,
                metrics_sink=config.metrics_sink,
                slow_queries=config.slow_queries,
            )

        return pool.map(_run, tasks, what="sweep cells")
