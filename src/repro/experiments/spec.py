"""Declarative experiment specifications.

A reproduction harness should let a reviewer run *their* variation of an
experiment without writing code.  An :class:`ExperimentSpec` is a plain
JSON-serialisable description — datasets, algorithms, sweep axis, guard
budgets — that :func:`run_spec` expands into measured
:class:`repro.experiments.runner.RunRecord` cells.

Example spec (``my_experiment.json``)::

    {
      "name": "gsimplus-vs-gsim-on-communication-graphs",
      "datasets": ["EE", "WT"],
      "algorithms": ["GSim+", "GSim"],
      "scale": "tiny",
      "iterations": 5,
      "query_size": 20,
      "sweep": {"axis": "iterations", "values": [2, 4, 6]},
      "memory_budget_mib": 256,
      "deadline_seconds": 10
    }

Run it with ``gsimplus spec my_experiment.json`` or::

    from repro.experiments.spec import ExperimentSpec, run_spec
    records = run_spec(ExperimentSpec.from_json(path))
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from typing import TYPE_CHECKING

from repro.experiments.guards import Deadline, MemoryBudget
from repro.experiments.runner import (
    ALGORITHMS,
    CellTask,
    ExperimentConfig,
    RunRecord,
    run_cells,
)
from repro.graphs.datasets import DATASETS, load_dataset_pair
from repro.workloads.queries import make_workload

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.experiments.journal import RunJournal
    from repro.runtime.resilience import RetryPolicy
    from repro.runtime.trace import Tracer

__all__ = ["ExperimentSpec", "run_spec"]

_SWEEP_AXES = ("iterations", "query_size", "sample_size")


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment: what to run, on what, within what budget."""

    name: str
    datasets: tuple[str, ...]
    algorithms: tuple[str, ...]
    scale: str = "tiny"
    iterations: int = 5
    query_size: int = 20
    sample_size: int | None = None
    seed: int = 7
    sweep_axis: str | None = None
    sweep_values: tuple[int, ...] = field(default_factory=tuple)
    memory_budget_mib: float = 256.0
    deadline_seconds: float = 20.0
    precision: str = "float64"
    recompress_tol: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec needs a name")
        if self.precision not in ("float64", "float32"):
            raise ValueError(
                f"precision must be 'float64' or 'float32', got {self.precision!r}"
            )
        if self.recompress_tol is not None and not (0.0 < self.recompress_tol < 1.0):
            raise ValueError(
                f"recompress_tol must lie in (0, 1), got {self.recompress_tol!r}"
            )
        if not self.datasets:
            raise ValueError("spec needs at least one dataset")
        unknown_datasets = [d for d in self.datasets if d.upper() not in DATASETS]
        if unknown_datasets:
            raise ValueError(f"unknown datasets: {unknown_datasets}")
        unknown_algorithms = [a for a in self.algorithms if a not in ALGORITHMS]
        if unknown_algorithms:
            raise ValueError(f"unknown algorithms: {unknown_algorithms}")
        if self.sweep_axis is not None:
            if self.sweep_axis not in _SWEEP_AXES:
                raise ValueError(
                    f"sweep axis must be one of {_SWEEP_AXES}, got {self.sweep_axis!r}"
                )
            if not self.sweep_values:
                raise ValueError("a sweep needs values")

    # ------------------------------------------------------------------
    # (De)serialisation
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: dict) -> "ExperimentSpec":
        """Build a spec from parsed JSON (unknown keys rejected)."""
        data = dict(raw)
        sweep = data.pop("sweep", None)
        kwargs = dict(
            name=data.pop("name", ""),
            datasets=tuple(data.pop("datasets", ())),
            algorithms=tuple(data.pop("algorithms", ())),
        )
        for key in (
            "scale", "iterations", "query_size", "sample_size", "seed",
            "memory_budget_mib", "deadline_seconds", "precision",
            "recompress_tol",
        ):
            if key in data:
                kwargs[key] = data.pop(key)
        if data:
            raise ValueError(f"unknown spec keys: {sorted(data)}")
        if sweep is not None:
            kwargs["sweep_axis"] = sweep.get("axis")
            kwargs["sweep_values"] = tuple(sweep.get("values", ()))
        return cls(**kwargs)

    @classmethod
    def from_json(cls, path: str | Path) -> "ExperimentSpec":
        """Load a spec from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def variations(self) -> list[dict[str, int]]:
        """The parameter overrides the sweep expands to (one = no sweep)."""
        if self.sweep_axis is None:
            return [{}]
        return [{self.sweep_axis: value} for value in self.sweep_values]


def run_spec(
    spec: ExperimentSpec,
    journal: "RunJournal | None" = None,
    retry_policy: "RetryPolicy | None" = None,
    max_workers: int = 1,
    tracer: "Tracer | None" = None,
    metrics_sink=None,
    slow_queries=None,
) -> list[RunRecord]:
    """Expand and execute a spec; returns one record per cell.

    Cell order: dataset-major, then sweep value, then algorithm — the
    order the text report groups most readably (and the order records
    come back in for every ``max_workers``).

    ``journal`` makes the run resumable cell by cell (completed cells are
    replayed, the rest executed and persisted immediately);
    ``retry_policy`` retries transient per-cell failures and quarantines
    cells that keep failing; ``max_workers > 1`` executes independent
    cells concurrently; ``tracer`` records per-cell spans, and
    ``metrics_sink`` / ``slow_queries`` thread operational telemetry
    through the cells (see
    :class:`repro.experiments.runner.ExperimentConfig`).
    """
    config = ExperimentConfig(
        scale=spec.scale,
        iterations=spec.iterations,
        seed=spec.seed,
        memory_budget=MemoryBudget(int(spec.memory_budget_mib * 1024 * 1024)),
        deadline=Deadline(limit_seconds=spec.deadline_seconds),
        retry_policy=retry_policy,
        journal=journal,
        max_workers=max_workers,
        tracer=tracer,
        precision=spec.precision,
        recompress_tol=spec.recompress_tol,
        metrics_sink=metrics_sink,
        slow_queries=slow_queries,
    )
    tasks: list[CellTask] = []
    for dataset in spec.datasets:
        for overrides in spec.variations():
            iterations = overrides.get("iterations", spec.iterations)
            query_size = overrides.get("query_size", spec.query_size)
            sample_size = overrides.get("sample_size", spec.sample_size)
            graph_a, graph_b = load_dataset_pair(
                dataset, scale=spec.scale, seed=spec.seed, sample_size=sample_size
            )
            workload = make_workload(
                graph_a, graph_b, query_size, query_size, seed=spec.seed + 1
            )
            for algorithm in spec.algorithms:
                tasks.append(
                    CellTask(
                        ALGORITHMS[algorithm],
                        graph_a,
                        graph_b,
                        workload.queries_a,
                        workload.queries_b,
                        iterations,
                        dataset=dataset.upper(),
                    )
                )
    return run_cells(tasks, config)
