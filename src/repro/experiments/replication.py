"""Multi-seed replication of experiment cells.

Single-seed measurements can mislead (a lucky graph draw, a cold BLAS);
reproduction-grade numbers come with dispersion.  ``replicate_cell``
reruns one (algorithm, dataset, parameters) cell across seeds — fresh
graph, sample, and workload each time — and summarises the successful
runs, keeping count of the failure outcomes separately (a cell that OOMs
under every seed is a *robust* crash, which is itself a finding).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.guards import Deadline, MemoryBudget
from repro.experiments.runner import ALGORITHMS, Outcome, RunRecord, run_algorithm
from repro.graphs.datasets import load_dataset_pair
from repro.workloads.queries import make_workload
from repro.utils.validation import check_positive_integer

__all__ = ["CellSummary", "replicate_cell", "summarize_records"]


@dataclass(frozen=True)
class CellSummary:
    """Dispersion summary of one replicated cell."""

    algorithm: str
    dataset: str
    replicates: int
    ok_count: int
    outcome_counts: dict[str, int]
    mean_seconds: float | None
    std_seconds: float | None
    mean_memory_bytes: float | None

    @property
    def robust(self) -> bool:
        """All replicates agreed on one outcome (all OK or all one failure)."""
        return len(self.outcome_counts) == 1

    def relative_std(self) -> float | None:
        """Coefficient of variation of the timings (None without 2+ OKs)."""
        if (
            self.mean_seconds is None
            or self.std_seconds is None
            or self.mean_seconds == 0.0
        ):
            return None
        return self.std_seconds / self.mean_seconds


def summarize_records(records: list[RunRecord]) -> CellSummary:
    """Aggregate replicate records of one cell into a :class:`CellSummary`."""
    if not records:
        raise ValueError("no records to summarise")
    algorithms = {r.algorithm for r in records}
    datasets = {r.dataset for r in records}
    if len(algorithms) != 1 or len(datasets) != 1:
        raise ValueError("records mix algorithms or datasets; one cell only")
    outcome_counts: dict[str, int] = {}
    seconds = []
    memory = []
    for record in records:
        outcome_counts[record.outcome.value] = (
            outcome_counts.get(record.outcome.value, 0) + 1
        )
        if record.outcome is Outcome.OK:
            seconds.append(record.seconds)
            memory.append(record.memory_bytes)
    mean_seconds = std_seconds = mean_memory = None
    if seconds:
        mean_seconds = sum(seconds) / len(seconds)
        if len(seconds) > 1:
            variance = sum((s - mean_seconds) ** 2 for s in seconds) / (
                len(seconds) - 1
            )
            std_seconds = math.sqrt(variance)
        else:
            std_seconds = 0.0
        mean_memory = sum(memory) / len(memory)
    return CellSummary(
        algorithm=records[0].algorithm,
        dataset=records[0].dataset,
        replicates=len(records),
        ok_count=len(seconds),
        outcome_counts=outcome_counts,
        mean_seconds=mean_seconds,
        std_seconds=std_seconds,
        mean_memory_bytes=mean_memory,
    )


def replicate_cell(
    algorithm: str,
    dataset: str,
    scale: str = "tiny",
    iterations: int = 5,
    query_size: int = 20,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    memory_budget: MemoryBudget | None = None,
    deadline: Deadline | None = None,
) -> CellSummary:
    """Rerun one experiment cell across seeds and summarise.

    Each replicate regenerates the dataset pair and workload from its own
    seed, so the dispersion covers graph-draw variance, not just timer
    noise.
    """
    if algorithm not in ALGORITHMS:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        )
    check_positive_integer(len(seeds), "number of seeds")
    records = []
    for seed in seeds:
        graph_a, graph_b = load_dataset_pair(dataset, scale=scale, seed=seed)
        workload = make_workload(
            graph_a, graph_b, query_size, query_size, seed=seed + 1
        )
        records.append(
            run_algorithm(
                ALGORITHMS[algorithm],
                graph_a,
                graph_b,
                workload.queries_a,
                workload.queries_b,
                iterations,
                memory_budget=memory_budget,
                deadline=deadline,
                dataset=dataset,
            )
        )
    return summarize_records(records)
