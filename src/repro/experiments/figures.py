"""Drivers regenerating Figures 2-8 of the paper.

Each ``figN_*`` function returns the list of
:class:`repro.experiments.runner.RunRecord` backing that figure; calling
:func:`repro.experiments.report.render_records` on it prints the series
the paper plots.  The benchmark modules under ``benchmarks/`` time these
drivers, one per figure.

Scaling: the paper's query-set sizes (|Q| = 2,000, or 20,000 for Q_B on
the large graphs) are mapped per scale profile by ``_QUERY_TARGETS``,
clamped to the graph sizes.  Datasets come from the simulated registry
(:mod:`repro.graphs.datasets`).

Every driver builds its cell list up front and hands it to
:func:`repro.experiments.runner.run_cells`, so setting
``ExperimentConfig.max_workers > 1`` sweeps independent cells
concurrently without changing any record's outcome.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import (
    ALGORITHMS,
    AlgorithmSpec,
    CellTask,
    ExperimentConfig,
    RunRecord,
    run_cells,
)
from repro.graphs.datasets import load_dataset_pair
from repro.graphs.graph import Graph
from repro.graphs.sampling import random_node_sample
from repro.workloads.queries import make_workload

__all__ = [
    "fig2_time_by_dataset",
    "fig3_time_vs_k",
    "fig4_time_vs_nb",
    "fig5_time_vs_queries",
    "fig6_memory_by_dataset",
    "fig7_memory_vs_k",
    "fig8_memory_vs_queries",
]

# Scaled analogue of the paper's |Q| = 2,000 default.
_QUERY_TARGETS = {"tiny": 20, "small": 200, "medium": 1_000, "paper": 2_000}
# The paper uses a larger |Q_B| = 20,000 on WT/UK/IT.
_LARGE_DATASETS = ("WT", "UK", "IT")

_DEFAULT_DATASETS = ("HP", "EE", "WT", "UK", "IT")
_DEFAULT_ALGORITHMS = ("GSim+", "GSVD", "GSim", "SS-BC*", "NED", "RSim")


def _specs(names: tuple[str, ...] | list[str]) -> list[AlgorithmSpec]:
    unknown = [name for name in names if name not in ALGORITHMS]
    if unknown:
        raise KeyError(f"unknown algorithms {unknown}; choose from {sorted(ALGORITHMS)}")
    return [ALGORITHMS[name] for name in names]


def _query_sizes(dataset: str, scale: str) -> tuple[int, int]:
    base = _QUERY_TARGETS[scale]
    size_b = base * 10 if dataset in _LARGE_DATASETS else base
    return base, size_b


def _load_instance(
    dataset: str, config: ExperimentConfig
) -> tuple[Graph, Graph, np.ndarray, np.ndarray]:
    graph_a, graph_b = load_dataset_pair(dataset, scale=config.scale, seed=config.seed)
    size_a, size_b = _query_sizes(dataset, config.scale)
    workload = make_workload(
        graph_a, graph_b, size_a, size_b, seed=config.seed + 1
    )
    return graph_a, graph_b, workload.queries_a, workload.queries_b


# ----------------------------------------------------------------------
# Time figures
# ----------------------------------------------------------------------
def fig2_time_by_dataset(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = _DEFAULT_DATASETS,
    algorithms: tuple[str, ...] = _DEFAULT_ALGORITHMS,
) -> list[RunRecord]:
    """Figure 2 — wall-clock time of every algorithm on every dataset.

    Expected shape (paper §5.2.1): GSim+ fastest everywhere; GSim/GSVD
    fail on the large datasets; RSim/NED only survive the smallest.
    """
    config = config or ExperimentConfig()
    tasks = []
    for dataset in datasets:
        graph_a, graph_b, queries_a, queries_b = _load_instance(dataset, config)
        for spec in _specs(algorithms):
            tasks.append(
                CellTask(
                    spec, graph_a, graph_b, queries_a, queries_b,
                    config.iterations, dataset=dataset,
                )
            )
    return run_cells(tasks, config)


def fig3_time_vs_k(
    config: ExperimentConfig | None = None,
    dataset: str = "EE",
    k_values: tuple[int, ...] = (2, 4, 6, 8, 10),
    algorithms: tuple[str, ...] = _DEFAULT_ALGORITHMS,
) -> list[RunRecord]:
    """Figure 3 — time versus iteration count k (paper sweeps 2..10).

    GSim+ grows mildly with k; GSim/GSVD cost a dense-iterate update per
    extra k; NED blows up exponentially.
    """
    config = config or ExperimentConfig()
    graph_a, graph_b, queries_a, queries_b = _load_instance(dataset, config)
    tasks = [
        CellTask(spec, graph_a, graph_b, queries_a, queries_b, k, dataset=dataset)
        for k in k_values
        for spec in _specs(algorithms)
    ]
    return run_cells(tasks, config)


def fig4_time_vs_nb(
    config: ExperimentConfig | None = None,
    dataset: str = "EE",
    nb_fractions: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.8),
    algorithms: tuple[str, ...] = _DEFAULT_ALGORITHMS,
) -> list[RunRecord]:
    """Figure 4 — time versus |V_B| (the sampled subgraph's size).

    GSim+ and SS-BC* should be nearly flat; GSim/GSVD's dense iterate
    makes them superlinear in |V_B|.
    """
    config = config or ExperimentConfig()
    from repro.graphs.datasets import load_dataset  # local to avoid cycle

    graph_a = load_dataset(dataset, scale=config.scale, seed=config.seed)
    tasks = []
    for fraction in nb_fractions:
        size_b = max(16, int(graph_a.num_nodes * fraction))
        graph_b = random_node_sample(graph_a, size_b, seed=config.seed + 13)
        size_qa, size_qb = _query_sizes(dataset, config.scale)
        workload = make_workload(
            graph_a, graph_b, size_qa, size_qb, seed=config.seed + 1
        )
        for spec in _specs(algorithms):
            tasks.append(
                CellTask(
                    spec, graph_a, graph_b,
                    workload.queries_a, workload.queries_b,
                    config.iterations, dataset=dataset,
                )
            )
    return run_cells(tasks, config)


def fig5_time_vs_queries(
    config: ExperimentConfig | None = None,
    dataset: str = "EE",
    query_sizes: tuple[int, ...] = (25, 50, 100, 200, 400),
    algorithms: tuple[str, ...] = _DEFAULT_ALGORITHMS,
) -> list[RunRecord]:
    """Figure 5 — time versus query-set size (|Q_A| = |Q_B| swept together).

    SS-BC* scales with |Q_A| x |Q_B| (one single-pair query per pair);
    GSim+ only pays the final block product.
    """
    config = config or ExperimentConfig()
    graph_a, graph_b, _, _ = _load_instance(dataset, config)
    tasks = []
    for size in query_sizes:
        workload = make_workload(graph_a, graph_b, size, size, seed=config.seed + 1)
        for spec in _specs(algorithms):
            tasks.append(
                CellTask(
                    spec, graph_a, graph_b,
                    workload.queries_a, workload.queries_b,
                    config.iterations, dataset=dataset,
                )
            )
    return run_cells(tasks, config)


# ----------------------------------------------------------------------
# Memory figures
# ----------------------------------------------------------------------
def fig6_memory_by_dataset(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = _DEFAULT_DATASETS,
    algorithms: tuple[str, ...] = _DEFAULT_ALGORITHMS,
) -> list[RunRecord]:
    """Figure 6 — peak memory of every algorithm on every dataset.

    Same cells as Figure 2 (the runner records both metrics per run);
    GSim+ should sit 1-2 orders below GSim/GSVD and scale linearly in
    |G_A|.
    """
    return fig2_time_by_dataset(config, datasets=datasets, algorithms=algorithms)


def fig7_memory_vs_k(
    config: ExperimentConfig | None = None,
    dataset: str = "EE",
    k_values: tuple[int, ...] = (2, 4, 6, 8, 10),
    algorithms: tuple[str, ...] = _DEFAULT_ALGORITHMS,
) -> list[RunRecord]:
    """Figure 7 — memory versus iteration count k (paper shows EE and WT)."""
    return fig3_time_vs_k(
        config, dataset=dataset, k_values=k_values, algorithms=algorithms
    )


def fig8_memory_vs_queries(
    config: ExperimentConfig | None = None,
    dataset: str = "EE",
    query_sizes: tuple[int, ...] = (25, 50, 100, 200, 400),
    algorithms: tuple[str, ...] = _DEFAULT_ALGORITHMS,
) -> list[RunRecord]:
    """Figure 8 — memory versus query-set size on EE (paper's choice)."""
    return fig5_time_vs_queries(
        config, dataset=dataset, query_sizes=query_sizes, algorithms=algorithms
    )
