"""The §5.2.3 accuracy table — error versus iteration count.

The paper measures ``||S_k - S||_F`` on HP for

* GSim+ / GSim (identical by Theorem 3.1 — the table prints one column),
* GSVD with fixed ranks r ∈ {5, 10, 50},

at k ∈ {4, 8, 12, 16, 20}, where the exact ``S`` is GSim run for 100
iterations ("float-precision ground truth").  :func:`accuracy_table`
regenerates those cells on a scaled dataset and
:func:`render_accuracy_table` prints them in the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.accuracy import frobenius_error
from repro.baselines.gsim import gsim
from repro.baselines.gsvd import gsvd
from repro.core.gsim_plus import GSimPlus
from repro.experiments.report import render_table
from repro.graphs.datasets import load_dataset_pair
from repro.graphs.graph import Graph

__all__ = [
    "AccuracyTable",
    "ErrorBoundTable",
    "accuracy_table",
    "error_bound_table",
    "render_accuracy_table",
    "render_error_bound_table",
]


@dataclass
class AccuracyTable:
    """Errors ``||S_k - S||_F`` per iteration count.

    Attributes
    ----------
    k_values:
        The iteration counts sampled (paper: 4, 8, 12, 16, 20).
    gsim_plus_errors:
        One error per k — identical for GSim+ and GSim (Theorem 3.1),
        which the experiment verifies rather than assumes.
    gsim_errors:
        The independently measured GSim errors (should match the above to
        float precision).
    gsvd_errors:
        Mapping rank r -> per-k errors.
    """

    k_values: list[int]
    gsim_plus_errors: list[float]
    gsim_errors: list[float]
    gsvd_errors: dict[int, list[float]] = field(default_factory=dict)

    def max_equivalence_gap(self) -> float:
        """Largest |GSim+ error − GSim error| across k (Theorem 3.1 check)."""
        return max(
            abs(a - b) for a, b in zip(self.gsim_plus_errors, self.gsim_errors)
        )


def accuracy_table(
    graph_a: Graph | None = None,
    graph_b: Graph | None = None,
    k_values: tuple[int, ...] = (4, 8, 12, 16, 20),
    ranks: tuple[int, ...] = (5, 10, 50),
    reference_iterations: int = 100,
    dataset: str = "HP",
    scale: str = "tiny",
    seed: int = 7,
) -> AccuracyTable:
    """Regenerate the accuracy table.

    Either pass a graph pair explicitly or let the driver load the scaled
    ``HP`` stand-in (the paper's choice; "other datasets are similar").
    """
    if (graph_a is None) != (graph_b is None):
        raise ValueError("pass both graphs or neither")
    if graph_a is None or graph_b is None:
        graph_a, graph_b = load_dataset_pair(dataset, scale=scale, seed=seed)
    max_k = max(k_values)
    # Ground truth: the paper's definition — GSim run deep enough for
    # float-precision convergence.
    reference = gsim(graph_a, graph_b, iterations=reference_iterations).similarity

    # GSim+ errors per iteration, read off one pass of the iterator.
    solver = GSimPlus(graph_a, graph_b)
    wanted = set(k_values)
    plus_errors: dict[int, float] = {}
    for state in solver.iterate(max_k):
        if state.k in wanted:
            plus_errors[state.k] = frobenius_error(
                state.similarity_matrix(), reference
            )

    # GSim errors from its own history.
    history = gsim(graph_a, graph_b, iterations=max_k, keep_history=True).iterates
    assert history is not None
    gsim_errors = [frobenius_error(history[k - 1], reference) for k in k_values]

    # GSVD errors per rank from its factor history.
    gsvd_errors: dict[int, list[float]] = {}
    for rank in ranks:
        run = gsvd(graph_a, graph_b, iterations=max_k, rank=rank, keep_history=True)
        assert run.iterates is not None
        per_k = []
        for k in k_values:
            u, sigma, v = run.iterates[k - 1]
            per_k.append(frobenius_error((u * sigma) @ v.T, reference))
        gsvd_errors[rank] = per_k

    return AccuracyTable(
        k_values=list(k_values),
        gsim_plus_errors=[plus_errors[k] for k in k_values],
        gsim_errors=gsim_errors,
        gsvd_errors=gsvd_errors,
    )


def render_accuracy_table(table: AccuracyTable) -> str:
    """Print the table in the paper's layout (one GSVD column per rank)."""
    headers = ["k", "GSim+ / GSim"] + [
        f"GSVD (r={rank})" for rank in sorted(table.gsvd_errors)
    ]
    rows = []
    for i, k in enumerate(table.k_values):
        row = [str(k), f"{table.gsim_plus_errors[i]:.5e}"]
        for rank in sorted(table.gsvd_errors):
            row.append(f"{table.gsvd_errors[rank][i]:.5e}")
        rows.append(row)
    return render_table(headers, rows, title="Accuracy: ||S_k - S||_F")


@dataclass
class ErrorBoundTable:
    """Theorem 4.2 validation: measured error vs the spectral bound."""

    k_values: list[int]
    actual_errors: list[float]
    bounds: list[float]
    contraction_ratio: float

    def holds_everywhere(self, slack: float = 1e-9) -> bool:
        """Whether the bound dominates the measured error at every k."""
        return all(
            actual <= bound + slack
            for actual, bound in zip(self.actual_errors, self.bounds)
        )


def error_bound_table(
    graph_a: Graph | None = None,
    graph_b: Graph | None = None,
    k_values: tuple[int, ...] = (2, 4, 6, 8, 10, 12),
    dataset: str = "HP",
    seed: int = 7,
    sample_size: int = 24,
) -> ErrorBoundTable:
    """Tabulate ||S_k - S||_F against the Theorem 4.2 bound.

    The bound needs the full eigendecomposition of the n_A*n_B Kronecker
    matrix, so the default instance is a *very* small sample of the HP
    stand-in (the theorem is instance-independent; the table validates the
    inequality and its geometric decay rate).
    """
    from repro.analysis.spectral import convergence_rate
    from repro.core.error_bound import error_bound, exact_similarity_spectral
    from repro.core.gsim_plus import GSimPlus as _Solver

    if (graph_a is None) != (graph_b is None):
        raise ValueError("pass both graphs or neither")
    if graph_a is None or graph_b is None:
        full, _ = load_dataset_pair(dataset, scale="tiny", seed=seed)
        graph_a = full.subgraph(range(min(sample_size * 3, full.num_nodes)))
        from repro.graphs.sampling import random_node_sample

        graph_b = random_node_sample(graph_a, sample_size, seed=seed + 1)
    bad = [k for k in k_values if k % 2 != 0]
    if bad:
        raise ValueError(f"Theorem 4.2 covers even k only; got {bad}")
    exact = exact_similarity_spectral(graph_a, graph_b)
    solver = _Solver(graph_a, graph_b)
    wanted = set(k_values)
    actual: dict[int, float] = {}
    for state in solver.iterate(max(k_values)):
        if state.k in wanted:
            actual[state.k] = frobenius_error(state.similarity_matrix(), exact)
    bounds = [error_bound(graph_a, graph_b, k) for k in k_values]
    return ErrorBoundTable(
        k_values=list(k_values),
        actual_errors=[actual[k] for k in k_values],
        bounds=bounds,
        contraction_ratio=convergence_rate(graph_a, graph_b),
    )


def render_error_bound_table(table: ErrorBoundTable) -> str:
    """Print actual vs bound per k plus the spectral contraction ratio."""
    headers = ["k", "||S_k - S||_F", "Theorem 4.2 bound", "bound holds"]
    rows = []
    for k, actual, bound in zip(table.k_values, table.actual_errors, table.bounds):
        rows.append(
            [str(k), f"{actual:.5e}", f"{bound:.5e}", "yes" if actual <= bound + 1e-9 else "NO"]
        )
    text = render_table(headers, rows, title="Theorem 4.2 error bound validation")
    return text + f"\ncontraction ratio |lambda2/lambda1| = {table.contraction_ratio:.4f}"
