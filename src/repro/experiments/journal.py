"""Persistent run journals: resumable sweeps, cell by cell.

A figure sweep is dozens of independent cells, each potentially minutes
long; losing a night's sweep to a crash in cell 37 is the experiment-
harness version of losing a factor build at iteration 9.  A
:class:`RunJournal` is an append-only JSONL file that records every
completed :class:`repro.experiments.runner.RunRecord` the moment it
finishes — flushed and fsynced per line, so partial results survive any
crash — and lets a re-run replay completed cells instead of re-executing
them.

Integrity matches the artifact layer: every line embeds a SHA-256
checksum of its own content.  On load, lines that fail the checksum or
do not parse (the classic torn final line of a killed process) are
counted and skipped with a warning — one bad line costs one cell, never
the journal.

Wire-up: hand a journal to :func:`repro.experiments.runner.run_algorithm`
(directly or via :attr:`ExperimentConfig.journal`) and cells whose key is
already journalled come back replayed; everything else runs and is
appended.  The CLI exposes this as ``--checkpoint-dir`` + ``--resume``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import warnings
from pathlib import Path

from repro.experiments.runner import RunRecord, cell_key

__all__ = ["RunJournal", "cell_key"]


def _line_checksum(entry: dict) -> str:
    blob = json.dumps(entry, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class RunJournal:
    """Append-only, checksummed JSONL journal of completed sweep cells.

    Parameters
    ----------
    path:
        The journal file.  Parent directories are created.
    resume:
        When True, existing entries are loaded and their cells will be
        replayed; when False (a fresh run), any existing journal is
        truncated.

    Attributes
    ----------
    hits:
        How many lookups were answered from the journal this run — the
        number of cells a resumed sweep did *not* re-execute.
    skipped_lines:
        Corrupt/torn lines dropped while loading.

    Examples
    --------
    >>> import tempfile
    >>> journal = RunJournal(Path(tempfile.mkdtemp()) / "journal.jsonl")
    >>> len(journal)
    0
    """

    def __init__(self, path: str | Path, resume: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._records: dict[str, RunRecord] = {}
        # Parallel sweeps journal from worker threads; the lock keeps the
        # append-file writes whole lines and the hit counter exact.
        self._lock = threading.Lock()
        self.hits = 0
        self.skipped_lines = 0
        if self.path.exists():
            if resume:
                self._load()
            else:
                self.path.unlink()

    def _load(self) -> None:
        for lineno, raw in enumerate(
            self.path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if not raw.strip():
                continue
            try:
                entry = json.loads(raw)
                stored = entry.pop("checksum")
                if _line_checksum(entry) != stored:
                    raise ValueError("checksum mismatch")
                record = RunRecord.from_dict(entry["record"])
                key = entry["key"]
            except (ValueError, KeyError, TypeError) as exc:
                self.skipped_lines += 1
                warnings.warn(
                    f"{self.path}:{lineno}: dropping corrupt journal line "
                    f"({exc})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            self._records[key] = record

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    @property
    def keys(self) -> list[str]:
        """Journalled cell keys, in insertion order."""
        return list(self._records)

    def get(self, key: str) -> RunRecord | None:
        """The journalled record for ``key``, counting a replay hit."""
        with self._lock:
            record = self._records.get(key)
            if record is not None:
                self.hits += 1
            return record

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, key: str, record: RunRecord) -> None:
        """Append one completed cell; flushed + fsynced immediately."""
        entry = {"key": key, "record": record.to_dict()}
        entry["checksum"] = _line_checksum(
            {"key": entry["key"], "record": entry["record"]}
        )
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            self._records[key] = record

    def __repr__(self) -> str:
        return (
            f"RunJournal({str(self.path)!r}, cells={len(self)}, "
            f"hits={self.hits})"
        )
