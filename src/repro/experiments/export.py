"""Export experiment records for external plotting/analysis.

The figure drivers return :class:`repro.experiments.runner.RunRecord`
lists; these helpers serialise them as CSV or JSON so the series can be
re-plotted (matplotlib, gnuplot, a notebook) without re-running anything.
Failure cells keep their outcome labels, mirroring the text reports.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, TextIO

from repro.experiments.runner import RunRecord

__all__ = ["records_to_csv", "records_to_json", "write_csv", "write_json"]

_FIELDS = [
    "algorithm",
    "dataset",
    "outcome",
    "seconds",
    "memory_bytes",
    "predicted_seconds",
    "predicted_bytes",
    "note",
]
_PARAM_FIELDS = ["n_a", "n_b", "m_a", "m_b", "q_a", "q_b", "k"]


def _record_row(record: RunRecord) -> dict[str, object]:
    row: dict[str, object] = {
        "algorithm": record.algorithm,
        "dataset": record.dataset,
        "outcome": record.outcome.value,
        "seconds": record.seconds,
        "memory_bytes": record.memory_bytes,
        "predicted_seconds": record.predicted_seconds,
        "predicted_bytes": record.predicted_bytes,
        "note": record.note,
    }
    for field in _PARAM_FIELDS:
        row[field] = record.params.get(field)
    return row


def records_to_csv(records: Iterable[RunRecord], handle: TextIO) -> None:
    """Write records as CSV to an open text handle."""
    writer = csv.DictWriter(handle, fieldnames=_FIELDS + _PARAM_FIELDS)
    writer.writeheader()
    for record in records:
        writer.writerow(_record_row(record))


def records_to_json(records: Iterable[RunRecord]) -> str:
    """Serialise records as a JSON array string."""
    return json.dumps([_record_row(r) for r in records], indent=2)


def write_csv(records: Iterable[RunRecord], path: str | Path) -> None:
    """Write records as a CSV file."""
    with Path(path).open("w", encoding="utf-8", newline="") as handle:
        records_to_csv(records, handle)


def write_json(records: Iterable[RunRecord], path: str | Path) -> None:
    """Write records as a JSON file."""
    Path(path).write_text(records_to_json(records), encoding="utf-8")
