"""Scalability study: measured scaling exponents for GSim+.

The paper's §5.2.1 claims "GSim+ time rises in proportion to the size
|G_A|", i.e. a log-log slope of ~1 against edges, as Theorem 4.1 predicts
(time ``O(l (m_A + m_B + |Q_A||Q_B|))`` is linear in edges at fixed ``l``
and query size).  This driver measures that slope directly on a geometric
sweep of synthetic graphs, providing the quantitative backing for the
"billion-scale" extrapolation a reduced-scale reproduction cannot run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gsim_plus import gsim_plus
from repro.graphs.generators import rmat_graph
from repro.graphs.sampling import random_node_sample
from repro.utils.rng import spawn_rngs
from repro.utils.timing import time_call
from repro.workloads.queries import make_workload

__all__ = ["ScalingPoint", "ScalingStudy", "fit_scaling_exponent", "scaling_study"]


@dataclass(frozen=True)
class ScalingPoint:
    """One measured point of the scaling curve."""

    nodes: int
    edges: int
    seconds: float


@dataclass(frozen=True)
class ScalingStudy:
    """A measured scaling curve plus its fitted log-log exponent."""

    points: tuple[ScalingPoint, ...]
    exponent: float

    def is_near_linear(self, tolerance: float = 0.5) -> bool:
        """Whether the fitted exponent is within ``tolerance`` of 1."""
        return abs(self.exponent - 1.0) <= tolerance


def fit_scaling_exponent(sizes: np.ndarray, seconds: np.ndarray) -> float:
    """Least-squares slope of ``log(seconds)`` against ``log(sizes)``.

    >>> import numpy as np
    >>> float(round(fit_scaling_exponent(
    ...     np.array([1e3, 1e4, 1e5]), np.array([0.01, 0.1, 1.0])), 3))
    1.0
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    seconds = np.asarray(seconds, dtype=np.float64)
    if sizes.size != seconds.size or sizes.size < 2:
        raise ValueError("need at least two matched (size, seconds) points")
    if (sizes <= 0).any() or (seconds <= 0).any():
        raise ValueError("sizes and seconds must be positive for a log-log fit")
    slope, _ = np.polyfit(np.log(sizes), np.log(seconds), 1)
    return float(slope)


def scaling_study(
    scales: tuple[int, ...] = (9, 10, 11, 12, 13),
    edges_per_node: float = 12.0,
    iterations: int = 7,
    query_size: int = 100,
    sample_size: int = 256,
    seed: int = 7,
    repeats: int = 3,
) -> ScalingStudy:
    """Measure GSim+ wall time on a geometric sweep of R-MAT graphs.

    Parameters
    ----------
    scales:
        R-MAT scales; graph ``i`` has ``2**scales[i]`` nodes.
    repeats:
        Each point is measured ``repeats`` times; the minimum is kept
        (standard practice: the minimum is the least noisy estimator of
        intrinsic cost).

    Returns
    -------
    ScalingStudy
        Points plus the fitted edges-vs-time exponent.
    """
    if len(scales) < 2:
        raise ValueError("need at least two scales to fit an exponent")
    points = []
    for index, scale in enumerate(scales):
        graph_rng, sample_rng, query_rng = spawn_rngs(seed + index, 3)
        nodes = 1 << scale
        graph_a = rmat_graph(scale, int(edges_per_node * nodes), seed=graph_rng)
        graph_b = random_node_sample(
            graph_a, min(sample_size, graph_a.num_nodes // 2), seed=sample_rng
        )
        workload = make_workload(
            graph_a, graph_b, query_size, query_size, seed=query_rng
        )
        best = np.inf
        for _ in range(repeats):
            _, seconds = time_call(
                gsim_plus,
                graph_a,
                graph_b,
                iterations=iterations,
                queries_a=workload.queries_a,
                queries_b=workload.queries_b,
            )
            best = min(best, seconds)
        points.append(
            ScalingPoint(nodes=graph_a.num_nodes, edges=graph_a.num_edges,
                         seconds=float(best))
        )
    exponent = fit_scaling_exponent(
        np.array([p.edges for p in points], dtype=np.float64),
        np.array([p.seconds for p in points], dtype=np.float64),
    )
    return ScalingStudy(points=tuple(points), exponent=exponent)
