"""CoSimRank — Rothe & Schütze (2014).

CoSimRank scores a node pair by the damped sum of inner products of their
personalised-PageRank vectors at every walk length::

    s(a, b) = sum_{k >= 0} c^k  < p_k(a), p_k(b) >

where ``p_0(a)`` is the indicator of ``a`` and ``p_{k+1} = P p_k`` with the
row-normalised adjacency ``P``.  In matrix form over all pairs::

    S = sum_k c^k (P^k)(P^k)^T      (single graph)
    S = sum_k c^k (P_A^k)(P_B^k)^T  (cross-graph variant)

The cross-graph form compares walk distributions of nodes in two
different graphs — CoSimRank's original paper uses it for bilingual
lexicon extraction, the same application family as GSim's synonym
extraction, which is why it earns a place in this reproduction.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.utils.validation import check_nonnegative_integer, check_probability

__all__ = ["cosimrank", "cosimrank_cross"]


def _row_normalized(adjacency: sp.csr_matrix) -> sp.csr_matrix:
    """``P`` with each nonzero row scaled to sum 1."""
    out_degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    scale = np.divide(
        1.0, out_degrees, out=np.zeros_like(out_degrees), where=out_degrees > 0
    )
    return (sp.diags(scale) @ adjacency).tocsr()


def cosimrank_cross(
    graph_a: Graph,
    graph_b: Graph,
    iterations: int = 10,
    damping: float = 0.8,
) -> np.ndarray:
    """Cross-graph CoSimRank: ``sum_k c^k (P_A^k)(P_B^k)^T``.

    Requires the two graphs to share a node-id alignment for the k = 0 term
    to be meaningful; with unrelated id spaces the result still measures
    walk-distribution overlap under the identity correspondence.

    Returns the ``n_A x n_B`` score matrix.
    """
    iterations = check_nonnegative_integer(iterations, "iterations")
    damping = check_probability(damping, "damping")
    n_a, n_b = graph_a.num_nodes, graph_b.num_nodes
    p_a = _row_normalized(graph_a.adjacency)
    p_b = _row_normalized(graph_b.adjacency)
    # walks_a[k] = P_A^k as dense columns of walk distributions.
    walk_a = np.eye(n_a)
    walk_b = np.eye(n_b)
    common = min(n_a, n_b)
    scores = np.zeros((n_a, n_b))
    scores[:common, :common] = np.eye(common)  # k = 0 term
    weight = 1.0
    for _ in range(iterations):
        walk_a = np.asarray(p_a @ walk_a)
        walk_b = np.asarray(p_b @ walk_b)
        weight *= damping
        # p_k(a) is row a of P^k; the inner product sums over the walk
        # *targets*, i.e. the shared column coordinates.
        scores += weight * (walk_a[:, :common] @ walk_b[:, :common].T)
        if weight < 1e-15:
            break
    return scores


def cosimrank(
    graph: Graph,
    iterations: int = 10,
    damping: float = 0.8,
) -> np.ndarray:
    """Single-graph CoSimRank: the cross variant with both sides equal.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph.from_edges(3, [(0, 1), (2, 1)])
    >>> s = cosimrank(g, iterations=4)
    >>> bool(s[0, 2] > 0)   # 0 and 2 walk to the same place
    True
    """
    return cosimrank_cross(graph, graph, iterations=iterations, damping=damping)
