"""HITS — Kleinberg (1999), the model GSim generalises.

The paper's Related Work notes "GSim is inspired by Kleinberg's HITS that
evaluates similarity from the graph dominant eigenvector".  Blondel et
al.'s original construction makes the connection exact: running GSim
between a graph ``G`` and the 2-node path ``1 -> 2`` yields, in the
converged similarity matrix's two columns, the hub and authority scores of
``G`` (up to normalisation).  The test suite verifies that reduction
against this standalone implementation.

The iteration is the classic mutual recursion::

    a <- A^T h / ||.||      (authorities are pointed at by good hubs)
    h <- A a   / ||.||      (hubs point at good authorities)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.validation import check_nonnegative_integer

__all__ = ["HITSResult", "hits"]


@dataclass(frozen=True)
class HITSResult:
    """Hub and authority score vectors (each 2-norm normalised)."""

    hubs: np.ndarray
    authorities: np.ndarray


def hits(graph: Graph, iterations: int = 50) -> HITSResult:
    """Run HITS power iteration on one graph.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph.from_edges(3, [(0, 2), (1, 2)])
    >>> result = hits(g)
    >>> int(np.argmax(result.authorities))   # node 2 is the authority
    2
    """
    iterations = check_nonnegative_integer(iterations, "iterations")
    n = graph.num_nodes
    if n == 0:
        return HITSResult(hubs=np.zeros(0), authorities=np.zeros(0))
    adjacency = graph.adjacency
    adjacency_t = graph.adjacency_t
    hubs = np.ones(n)
    authorities = np.ones(n)
    if iterations == 0:
        return HITSResult(hubs=hubs / np.sqrt(n), authorities=authorities / np.sqrt(n))
    for _ in range(iterations):
        authorities = adjacency_t @ hubs
        norm = np.linalg.norm(authorities)
        if norm == 0.0:
            # No edges feed any authority: the notion degenerates entirely.
            return HITSResult(hubs=np.zeros(n), authorities=np.zeros(n))
        authorities /= norm
        hubs = adjacency @ authorities
        norm = np.linalg.norm(hubs)
        if norm == 0.0:
            return HITSResult(hubs=np.zeros(n), authorities=np.zeros(n))
        hubs /= norm
    return HITSResult(hubs=hubs, authorities=authorities)
