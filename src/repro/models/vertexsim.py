"""VertexSim — Leicht, Holme & Newman (2006).

Two vertices are similar when their neighbours are similar, realised as a
Katz-style series over walk counts, normalised by degree and the dominant
eigenvalue::

    S = sum_{k >= 0} (alpha / lambda_1)^k  A^k    (then degree-normalised)

computed here through the truncated series (the closed form is a resolvent
``(I - alpha A / lambda_1)^{-1}``, which the truncated series converges to
for ``alpha < 1``).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from repro.graphs.graph import Graph
from repro.utils.validation import check_nonnegative_integer

__all__ = ["vertexsim"]


def _dominant_eigenvalue(graph: Graph) -> float:
    """``|lambda_1|`` of the (symmetrised) adjacency."""
    matrix = graph.to_undirected().adjacency
    n = matrix.shape[0]
    if n <= 2:
        values = np.linalg.eigvals(matrix.toarray())
        return float(np.abs(values).max(initial=0.0))
    try:
        values = spla.eigsh(matrix, k=1, which="LM", return_eigenvectors=False)
        return float(abs(values[0]))
    except (spla.ArpackNoConvergence, spla.ArpackError):  # pragma: no cover
        values = np.linalg.eigvals(matrix.toarray())
        return float(np.abs(values).max(initial=0.0))


def vertexsim(
    graph: Graph,
    alpha: float = 0.9,
    terms: int = 20,
) -> np.ndarray:
    """All-pairs VertexSim on one (symmetrised) graph.

    Parameters
    ----------
    alpha:
        Series damping in (0, 1); closer to 1 weighs long walks more.
    terms:
        Truncation length of the Katz series.

    Returns
    -------
    numpy.ndarray
        The ``n x n`` similarity matrix, degree-normalised
        (``D^-1 S D^-1`` with unit fallback for isolated nodes).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    terms = check_nonnegative_integer(terms, "terms")
    undirected = graph.to_undirected()
    n = undirected.num_nodes
    if n == 0:
        return np.zeros((0, 0))
    lambda1 = _dominant_eigenvalue(graph)
    adjacency = undirected.adjacency
    scores = np.eye(n)
    if lambda1 > 0:
        power = np.eye(n)
        factor = alpha / lambda1
        weight = 1.0
        for _ in range(terms):
            power = np.asarray(adjacency @ power)
            weight *= factor
            scores += weight * power
    degrees = np.maximum(undirected.out_degrees(), 1)
    inverse = 1.0 / degrees
    return inverse[:, None] * scores * inverse[None, :]
