"""SimRank — Jeh & Widom (2002).

``s(a, b)`` is 1 when ``a == b`` and otherwise the damped average
similarity of the in-neighbour pairs::

    s(a, b) = C / (|I(a)| |I(b)|) * sum_{i in I(a), j in I(b)} s(i, j)

In matrix form with the column-normalised adjacency ``P`` (``P[i, j] =
A[i, j] / indeg(j)``)::

    S_k = C * P^T S_{k-1} P,   then  diag(S_k) := 1,   S_0 = I

The paper's introduction contrasts SimRank's initialisation (identity:
only a node is similar to itself at step 0) with GSim's all-ones start,
and notes that SimRank scores nodes in disconnected components as 0 —
behaviour the tests pin down.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.utils.validation import check_nonnegative_integer, check_probability

__all__ = ["simrank"]


def _column_normalized(adjacency: sp.csr_matrix) -> sp.csr_matrix:
    """``P`` with each nonzero column scaled to sum 1."""
    in_degrees = np.asarray(adjacency.sum(axis=0)).ravel()
    scale = np.divide(
        1.0, in_degrees, out=np.zeros_like(in_degrees), where=in_degrees > 0
    )
    return (adjacency @ sp.diags(scale)).tocsr()


def simrank(
    graph: Graph,
    iterations: int = 10,
    damping: float = 0.8,
) -> np.ndarray:
    """All-pairs SimRank on one graph.

    Parameters
    ----------
    damping:
        The decay factor ``C`` in (0, 1); Jeh & Widom use 0.8.

    Returns
    -------
    numpy.ndarray
        The ``n x n`` SimRank matrix (diagonal exactly 1).

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph.from_edges(3, [(2, 0), (2, 1)])
    >>> s = simrank(g, iterations=5, damping=0.8)
    >>> float(s[0, 1])   # 0 and 1 share in-neighbour 2: similarity = C
    0.8
    """
    iterations = check_nonnegative_integer(iterations, "iterations")
    damping = check_probability(damping, "damping")
    n = graph.num_nodes
    if n == 0:
        return np.zeros((0, 0))
    p = _column_normalized(graph.adjacency)
    p_t = p.transpose().tocsr()
    similarity = np.eye(n)
    for _ in range(iterations):
        # P^T S P via two sparse-times-dense products:
        # (P^T ((P^T S)^T))^T = (P^T S) P.
        left = p_t @ similarity
        similarity = damping * (p_t @ left.T).T
        np.fill_diagonal(similarity, 1.0)
    return similarity
