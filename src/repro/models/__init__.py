"""Related similarity models from the paper's introduction.

The paper positions GSim among a family of link-based similarity measures
(§1: "VertexSim, GSim, SimRank, SimSem, CoSimRank, SimRank#").  This
subpackage implements the three classic ones so downstream users can
compare model behaviour on the same :class:`repro.graphs.Graph` substrate:

* :func:`simrank` — Jeh & Widom (2002): single-graph, in-neighbour
  recursion with a damping factor; zero across disconnected components
  (the contrast the paper's introduction draws with GSim).
* :func:`cosimrank` — Rothe & Schütze (2014): personalised-PageRank inner
  products; supports a documented *cross-graph* variant.
* :func:`vertexsim` — Leicht, Holme & Newman (2006): Katz-style series
  resolvent similarity on one graph.
* :func:`hits` — Kleinberg (1999): hub/authority scores; GSim against the
  2-node path reduces to HITS (verified by tests).
"""

from repro.models.cosimrank import cosimrank, cosimrank_cross
from repro.models.hits import HITSResult, hits
from repro.models.simrank import simrank
from repro.models.vertexsim import vertexsim

__all__ = [
    "HITSResult",
    "cosimrank",
    "cosimrank_cross",
    "hits",
    "simrank",
    "vertexsim",
]
