"""The GSimIndex: build once, persist, and serve retrievals.

Wraps the lower-level pieces (:class:`repro.core.gsim_plus.GSimPlus`,
:class:`repro.core.embeddings.LowRankFactors`,
:mod:`repro.core.serialization`, :mod:`repro.core.topk`) behind one
object with a stable on-disk format that records how the index was built
(iteration count, graph sizes, library version), so a served score can
always be traced back to its construction parameters.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.batch import BatchQueryEngine
from repro.core.embeddings import LowRankFactors, TruncationInfo
from repro.core.gsim_plus import GSimPlus
from repro.core.topk import ScoredPair, scan_top_pairs
from repro.graphs.graph import Graph
from repro.runtime import ExecutionContext, Metrics, WorkerPool
from repro.runtime.errors import CorruptArtifactError
from repro.runtime.trace import NULL_TRACER
from repro.runtime.resilience import (
    CheckpointManager,
    atomic_write,
    content_checksum,
)
from repro.utils.validation import check_positive_integer

__all__ = ["GSimIndex", "IndexMetadata"]

# v2 added ``build_metrics``; v3 added the precision policy and
# recompression provenance.  Older files load with the new fields
# defaulted (float64, no recompression).
_METADATA_VERSION = 3


@dataclass(frozen=True)
class IndexMetadata:
    """Provenance recorded alongside the factors."""

    n_a: int
    n_b: int
    m_a: int
    m_b: int
    iterations: int
    graph_a_name: str
    graph_b_name: str
    content_prior: bool
    metadata_version: int = _METADATA_VERSION
    build_metrics: dict | None = None
    precision: str = "float64"
    recompress_tol: float | None = None
    truncation: dict | None = None


class GSimIndex:
    """A built GSim+ similarity index over one graph pair.

    Construct with :meth:`build` (from graphs) or :meth:`load` (from
    disk).

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> a = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    >>> b = Graph.from_edges(3, [(0, 1), (1, 2)])
    >>> index = GSimIndex.build(a, b, iterations=6)
    >>> index.query([0, 1], [0]).shape
    (2, 1)
    >>> index.top_matches(0, k=2)[0].node_a
    0
    """

    def __init__(self, factors: LowRankFactors, metadata: IndexMetadata) -> None:
        self._factors = factors
        self._metadata = metadata
        self._engine = BatchQueryEngine(factors, normalization="global")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph_a: Graph,
        graph_b: Graph,
        iterations: int = 10,
        initial_factors: tuple[np.ndarray, np.ndarray] | None = None,
        context: ExecutionContext | None = None,
        checkpoints: CheckpointManager | str | Path | None = None,
        checkpoint_every: int = 1,
        resume_from: CheckpointManager | str | Path | None = None,
        recompress_tol: float | None = None,
        precision: str = "float64",
        max_workers: int | None = None,
        backend: str = "thread",
    ) -> "GSimIndex":
        """Iterate GSim+ (QR-compressed cap, so the result stays factored)
        and wrap the final factors.

        ``recompress_tol`` enables rank-bounded recompression between
        doubling steps and ``precision`` selects the factor dtype; both
        are recorded in the metadata so a served score can be traced back
        to its accuracy/precision envelope.

        Build-time counters (spmm calls, per-iteration widths, bytes held)
        are recorded in a fresh :class:`repro.runtime.ExecutionContext`
        when none is passed, and persisted in
        :attr:`IndexMetadata.build_metrics` either way — so a served score
        can be traced back to the run that produced the factors.

        ``checkpoints`` / ``checkpoint_every`` / ``resume_from`` forward
        to :meth:`GSimPlus.iterate`, so an interrupted multi-hour build
        restarts at its last snapshotted iteration instead of from
        scratch.  ``max_workers`` forwards to the solver's worker pool
        (row-sharded SpMM; results are bit-identical at every count) and
        ``backend`` selects thread or process workers — the process
        backend ships (path, row-range) shard descriptors, which lets a
        build over :class:`repro.graphs.mmap_csr.MmapCSRGraph` inputs
        run GIL-free without copying the graphs anywhere.
        """
        iterations = check_positive_integer(iterations, "iterations")
        if context is None:
            context = ExecutionContext(metrics=Metrics())
        solver = GSimPlus(
            graph_a,
            graph_b,
            rank_cap="qr-compress",
            initial_factors=initial_factors,
            recompress_tol=recompress_tol,
            precision=precision,
            max_workers=max_workers,
            backend=backend,
        )
        state = None
        with context.metrics.time("index.build"), context.tracer.span(
            "index.build", iterations=iterations
        ):
            for state in solver.iterate(
                iterations,
                context=context,
                checkpoints=checkpoints,
                checkpoint_every=checkpoint_every,
                resume_from=resume_from,
            ):
                pass
        assert state is not None and state.factors is not None
        metadata = IndexMetadata(
            n_a=graph_a.num_nodes,
            n_b=graph_b.num_nodes,
            m_a=graph_a.num_edges,
            m_b=graph_b.num_edges,
            iterations=iterations,
            graph_a_name=graph_a.name,
            graph_b_name=graph_b.name,
            content_prior=initial_factors is not None,
            build_metrics=context.metrics.snapshot(),
            precision=precision,
            recompress_tol=recompress_tol,
            truncation=(
                state.factors.truncation.to_dict()
                if state.factors.truncation is not None
                else None
            ),
        )
        return cls(state.factors, metadata)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Atomically write factors + metadata to one ``.npz``.

        The write goes to a sibling temp file published with
        ``os.replace`` and embeds a SHA-256 content checksum, so a crash
        mid-save never clobbers a good index and a garbled file is
        detected on load rather than served.
        """
        path = Path(path)
        content = {
            "u": self._factors.u,
            "v": self._factors.v,
            "log_scale": np.float64(self._factors.log_scale),
            "dtype": np.str_(self._factors.dtype.name),
            "metadata_json": json.dumps(asdict(self._metadata)),
        }
        digest = content_checksum(content)
        with atomic_write(path) as tmp:
            with open(tmp, "wb") as handle:
                np.savez_compressed(
                    handle,
                    u=content["u"],
                    v=content["v"],
                    log_scale=content["log_scale"],
                    dtype=content["dtype"],
                    metadata_json=np.str_(content["metadata_json"]),
                    checksum=np.str_(digest),
                )

    @classmethod
    def load(cls, path: str | Path) -> "GSimIndex":
        """Restore and verify an index written by :meth:`save`.

        Raises ``ValueError`` on missing arrays or a newer metadata
        version than this library understands, and
        :class:`repro.runtime.CorruptArtifactError` when the file is
        unreadable or fails its checksum — rebuild the index with
        :meth:`build` in that case.
        """
        path = Path(path)
        wanted = {"u", "v", "log_scale", "dtype", "metadata_json", "checksum"}
        try:
            with np.load(path, allow_pickle=False) as archive:
                arrays = {
                    name: archive[name].copy()
                    for name in archive.files
                    if name in wanted
                }
        except FileNotFoundError:
            raise
        except Exception as exc:  # truncated zip, bad CRC, bad header...
            raise CorruptArtifactError(
                f"cannot read GSimIndex file {path} ({exc}); the artifact "
                "is corrupt — rebuild it with GSimIndex.build",
                path=str(path),
            ) from exc
        missing = {"u", "v", "log_scale", "metadata_json"} - set(arrays)
        if missing:
            raise ValueError(
                f"{path} is not a GSimIndex file (missing {sorted(missing)})"
            )
        if "checksum" in arrays:
            content = {
                "u": arrays["u"],
                "v": arrays["v"],
                "log_scale": arrays["log_scale"],
                "metadata_json": str(arrays["metadata_json"]),
            }
            if "dtype" in arrays:
                content["dtype"] = arrays["dtype"]
            if content_checksum(content) != str(arrays["checksum"]):
                raise CorruptArtifactError(
                    f"checksum mismatch in GSimIndex file {path}; the "
                    "artifact is corrupt — rebuild it with GSimIndex.build",
                    path=str(path),
                )
        raw = json.loads(str(arrays["metadata_json"]))
        if raw.get("metadata_version", 0) > _METADATA_VERSION:
            raise ValueError(
                f"{path} was written by a newer library "
                f"(metadata v{raw['metadata_version']})"
            )
        metadata = IndexMetadata(**raw)
        if "dtype" in arrays:
            declared = np.dtype(str(arrays["dtype"]))
            for name in ("u", "v"):
                if arrays[name].dtype != declared:
                    raise ValueError(
                        f"{path} declares dtype {declared.name} but array "
                        f"'{name}' is {arrays[name].dtype.name}; the "
                        "artifact is inconsistent — rebuild it with "
                        "GSimIndex.build"
                    )
            dtype = declared
        else:
            # pre-v3 indexes predate the precision policy: float64 only.
            dtype = np.dtype(np.float64)
        truncation = (
            TruncationInfo.from_dict(metadata.truncation)
            if metadata.truncation is not None
            else None
        )
        factors = LowRankFactors(
            arrays["u"],
            arrays["v"],
            float(arrays["log_scale"]),
            dtype=dtype,
            truncation=truncation,
        )
        return cls(factors, metadata)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    @property
    def metadata(self) -> IndexMetadata:
        """How this index was built."""
        return self._metadata

    @property
    def factors(self) -> LowRankFactors:
        """The served factor pair (immutable; shared, not copied).

        Exposed for layers that compose indexes rather than querying
        them one block at a time — the live-index lifecycle fingerprints
        and leases whole generations through this.
        """
        return self._factors

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_A, n_B)`` of the indexed similarity."""
        return self._factors.shape

    def memory_bytes(self) -> int:
        """Bytes held by the factor arrays."""
        return self._factors.memory_bytes()

    def query(
        self,
        queries_a: np.ndarray | list[int],
        queries_b: np.ndarray | list[int],
        context: ExecutionContext | None = None,
    ) -> np.ndarray:
        """A globally-normalised similarity block.

        With a context, each call records one ``index.query`` span (the
        result-cell count as an attribute) and its latency in the
        ``index.query_seconds`` histogram — the per-query p50/p99 any
        serving deployment steers by — plus ``index.query.requests`` /
        ``index.query.errors`` counters (the error-rate SLO inputs).  A
        call above the latency threshold of an attached
        :class:`repro.runtime.telemetry.SlowQueryLog` additionally lands
        in the slow-query ring with its cell count, factor width, and
        trace span id.
        """
        tracer = context.tracer if context is not None else NULL_TRACER
        start = time.perf_counter()
        failed = False
        span = None
        try:
            with tracer.span("index.query") as span:
                block = self._engine.query(queries_a, queries_b, context=context)
                span.set_attribute("cells", int(block.size))
                return block
        except BaseException:
            failed = True
            raise
        finally:
            if context is not None:
                duration = time.perf_counter() - start
                context.metrics.observe_histogram("index.query_seconds", duration)
                context.metrics.increment("index.query.requests")
                if failed:
                    context.metrics.increment("index.query.errors")
                if context.slow_queries is not None:
                    context.slow_queries.maybe_record(
                        "index.query",
                        duration,
                        width=self._factors.width,
                        span_id=getattr(span, "span_id", None),
                        error=failed,
                    )

    def top_matches(
        self, node_a: int, k: int = 10, context: ExecutionContext | None = None
    ) -> list[ScoredPair]:
        """The ``k`` best G_B matches for one G_A node."""
        k = check_positive_integer(k, "k")
        if not (0 <= node_a < self.shape[0]):
            raise IndexError(f"node {node_a} out of range")
        row = self.query([node_a], np.arange(self.shape[1]), context=context)[0]
        order = np.argsort(-row, kind="stable")[: min(k, row.size)]
        return [
            ScoredPair(node_a=node_a, node_b=int(col), score=float(row[col]))
            for col in order
        ]

    def query_many(
        self,
        requests,
        max_workers=None,
        context: ExecutionContext | None = None,
    ) -> list[np.ndarray]:
        """Answer many query blocks, optionally across a worker pool.

        Results come back in request order for every worker count.  Each
        request goes through :meth:`query`, so every block contributes
        one ``index.query`` span and one ``index.query_seconds``
        observation; the batch as a whole records an ``index.query_many``
        span under which worker-shard spans stitch.
        """
        request_list = list(requests)
        if isinstance(max_workers, int) and max_workers < 1:
            max_workers = 1  # historical "0 means serial" tolerance
        pool = WorkerPool.resolve(max_workers)
        tracer = context.tracer if context is not None else NULL_TRACER
        start = time.perf_counter()
        with tracer.span("index.query_many") as span:
            span.set_attribute("requests", len(request_list))
            try:
                return pool.map(
                    lambda request: self.query(
                        request[0], request[1], context=context
                    ),
                    request_list,
                    context=context,
                    what="index query blocks",
                )
            finally:
                if context is not None:
                    duration = time.perf_counter() - start
                    context.metrics.observe_histogram(
                        "index.query_many_seconds", duration
                    )
                    if context.slow_queries is not None:
                        context.slow_queries.maybe_record(
                            "index.query_many",
                            duration,
                            requests=len(request_list),
                            workers=pool.max_workers,
                            width=self._factors.width,
                            span_id=getattr(span, "span_id", None),
                        )

    def top_pairs(
        self,
        k: int = 10,
        block_rows: int = 1024,
        context: ExecutionContext | None = None,
        max_workers=None,
    ) -> list[ScoredPair]:
        """The ``k`` globally best pairs, scanned under bounded memory.

        Scores are globally normalised (entries of the unit-Frobenius
        matrix); ties break by lowest ``node_a`` then ``node_b``, and the
        result is identical for every ``block_rows`` and ``max_workers``.
        """
        tracer = context.tracer if context is not None else NULL_TRACER
        start = time.perf_counter()
        with tracer.span("index.top_pairs") as span:
            span.set_attribute("k", k)
            try:
                return scan_top_pairs(
                    self._factors,
                    k,
                    block_rows=block_rows,
                    context=context,
                    max_workers=max_workers,
                    score_scale=1.0 / self._engine.global_norm,
                )
            finally:
                if context is not None:
                    duration = time.perf_counter() - start
                    context.metrics.observe_histogram(
                        "index.top_pairs_seconds", duration
                    )
                    if context.slow_queries is not None:
                        context.slow_queries.maybe_record(
                            "index.top_pairs",
                            duration,
                            k=int(k),
                            block_rows=int(block_rows),
                            workers=WorkerPool.resolve(max_workers).max_workers,
                            width=self._factors.width,
                            span_id=getattr(span, "span_id", None),
                        )

    def __repr__(self) -> str:
        return (
            f"GSimIndex(shape={self.shape}, iterations={self._metadata.iterations}, "
            f"graphs=({self._metadata.graph_a_name!r}, "
            f"{self._metadata.graph_b_name!r}))"
        )
