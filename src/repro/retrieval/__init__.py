"""High-level retrieval service layer.

:class:`repro.retrieval.GSimIndex` bundles everything a similarity
service needs around one graph pair: build the GSim+ factors (optionally
with a content prior), persist/restore them together with their metadata,
and serve query blocks, per-node rankings, and global top-k — the
"retrieval" of the paper's title as one object.
"""

from repro.retrieval.index import GSimIndex, IndexMetadata

__all__ = ["GSimIndex", "IndexMetadata"]
