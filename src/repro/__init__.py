"""repro — reproduction of "GSim+: Efficient Retrieval of Node-to-Node
Similarity Across Two Graphs at Billion Scale" (EDBT 2024).

Quickstart
----------
>>> from repro import Graph, gsim_plus
>>> a = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
>>> b = Graph.from_edges(3, [(0, 1), (1, 2)])
>>> result = gsim_plus(a, b, iterations=4)
>>> result.similarity.shape
(4, 3)

Package map
-----------
* :mod:`repro.core` — GSim+ (the paper's contribution) and its algebra.
* :mod:`repro.baselines` — GSim, GSVD, RoleSim, NED, StructSim.
* :mod:`repro.graphs` — graph substrate: representation, IO, generators,
  sampling, and the simulated dataset registry.
* :mod:`repro.workloads` — query-set generation and sweeps.
* :mod:`repro.analysis` — accuracy / ranking / spectral metrics.
* :mod:`repro.runtime` — the execution-context layer: cooperative
  deadlines, live memory budgets, cancellation, and metrics shared by
  every compute loop above.
* :mod:`repro.experiments` — drivers regenerating every figure and table
  of the paper's evaluation section.
"""

from repro.baselines import gsim, gsim_partial, gsvd
from repro.core import (
    GSimPlus,
    GSimPlusResult,
    LowRankFactors,
    TruncationInfo,
    error_bound,
    gsim_plus,
    iterate_to_convergence,
)
from repro.graphs import Graph, load_dataset, load_dataset_pair
from repro.retrieval import GSimIndex
from repro.runtime import (
    BudgetExceeded,
    CancellationToken,
    ExecutionContext,
    Metrics,
)
from repro.workloads import make_workload

__version__ = "1.0.0"

__all__ = [
    "BudgetExceeded",
    "CancellationToken",
    "ExecutionContext",
    "GSimIndex",
    "GSimPlus",
    "GSimPlusResult",
    "Graph",
    "LowRankFactors",
    "Metrics",
    "TruncationInfo",
    "__version__",
    "error_bound",
    "gsim",
    "gsim_partial",
    "gsim_plus",
    "gsvd",
    "iterate_to_convergence",
    "load_dataset",
    "load_dataset_pair",
    "make_workload",
]
