"""Version-tracked GSim+ similarity over evolving graphs.

``SimilaritySession`` binds a pair of :class:`DynamicGraph` objects and
serves query blocks / top-k retrievals from cached GSim+ factors.  The
factors are recomputed lazily on the first query after either graph's
version changes — GSim+'s cheap iteration is exactly what makes
recompute-on-write viable where the dense baselines would be hopeless.

The session reports simple staleness/recompute statistics so callers can
reason about the cost of their update patterns.  The counters live in a
shared :class:`repro.runtime.Metrics` sink (under ``session.*``), so a
caller passing its own :class:`repro.runtime.ExecutionContext` sees the
session's activity folded into the same metric tree as the solver runs it
triggers; :attr:`SimilaritySession.stats` remains a plain
:class:`SessionStats` view over those counters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.embeddings import LowRankFactors
from repro.core.gsim_plus import GSimPlus
from repro.dynamic.graph import DynamicGraph
from repro.runtime import ExecutionContext
from repro.utils.validation import check_positive_integer

__all__ = ["SessionStats", "SimilaritySession"]


@dataclass
class SessionStats:
    """Counters describing how the session has been used."""

    queries: int = 0
    recomputes: int = 0
    cache_hits: int = 0


class SimilaritySession:
    """Lazily recomputed GSim+ state over two evolving graphs.

    Examples
    --------
    >>> from repro.dynamic import DynamicGraph
    >>> a = DynamicGraph(4, [(0, 1), (1, 2), (2, 3)])
    >>> b = DynamicGraph(3, [(0, 1), (1, 2)])
    >>> session = SimilaritySession(a, b, iterations=6)
    >>> session.query([0, 1], [0, 1]).shape
    (2, 2)
    >>> a.add_edge(3, 0)     # graph changes ...
    >>> _ = session.query([0], [0])   # ... next query recomputes
    >>> session.stats.recomputes
    2
    """

    def __init__(
        self,
        graph_a: DynamicGraph,
        graph_b: DynamicGraph,
        iterations: int = 10,
        context: ExecutionContext | None = None,
    ) -> None:
        self._graph_a = graph_a
        self._graph_b = graph_b
        self.iterations = check_positive_integer(iterations, "iterations")
        self._factors: LowRankFactors | None = None
        self._built_versions: tuple[int, int] | None = None
        self._context = context if context is not None else ExecutionContext()

    @property
    def context(self) -> ExecutionContext:
        """The execution context the session charges its work against."""
        return self._context

    @property
    def stats(self) -> SessionStats:
        """Usage counters, read from the shared metrics sink."""
        metrics = self._context.metrics
        return SessionStats(
            queries=int(metrics.counter("session.queries")),
            recomputes=int(metrics.counter("session.recomputes")),
            cache_hits=int(metrics.counter("session.cache_hits")),
        )

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    @property
    def stale(self) -> bool:
        """Whether the cached factors lag the graphs' current versions."""
        current = (self._graph_a.version, self._graph_b.version)
        return self._factors is None or self._built_versions != current

    def refresh(self) -> None:
        """Force factor recomputation from the graphs' current state."""
        snapshot_a = self._graph_a.snapshot(name="A")
        snapshot_b = self._graph_b.snapshot(name="B")
        solver = GSimPlus(snapshot_a, snapshot_b, rank_cap="qr-compress")
        state = None
        with self._context.metrics.time("session.refresh"):
            for state in solver.iterate(self.iterations, context=self._context):
                pass
        assert state is not None and state.factors is not None
        self._factors = state.factors
        self._built_versions = (self._graph_a.version, self._graph_b.version)
        self._context.metrics.increment("session.recomputes")

    def _current_factors(self) -> LowRankFactors:
        if self.stale:
            self.refresh()
        else:
            self._context.metrics.increment("session.cache_hits")
        assert self._factors is not None
        return self._factors

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        queries_a: np.ndarray | list[int],
        queries_b: np.ndarray | list[int],
        normalization: str = "global",
    ) -> np.ndarray:
        """The normalised similarity block for the current graph state.

        ``normalization`` follows :class:`repro.core.gsim_plus.GSimPlus`
        (``"global"`` default here: across updates, globally normalised
        scores stay comparable).
        """
        if normalization not in ("block", "global"):
            raise ValueError(f"unknown normalization {normalization!r}")
        factors = self._current_factors()
        self._context.metrics.increment("session.queries")
        block = factors.query_block(queries_a, queries_b, include_scale=False)
        if normalization == "block":
            denominator = float(np.linalg.norm(block))
        else:
            denominator = factors.frobenius_norm(include_scale=False)
        if denominator == 0.0:
            raise ZeroDivisionError("similarity collapsed to zero")
        return block / denominator

    def top_matches(self, node_a: int, k: int = 5) -> list[tuple[int, float]]:
        """The ``k`` most similar G_B nodes for one G_A node, with scores."""
        k = check_positive_integer(k, "k")
        factors = self._current_factors()
        self._context.metrics.increment("session.queries")
        norm = factors.frobenius_norm(include_scale=False)
        if norm == 0.0:
            raise ZeroDivisionError("similarity collapsed to zero")
        row = factors.query_block([node_a], np.arange(factors.shape[1]),
                                  include_scale=False)[0]
        order = np.argsort(-row, kind="stable")[: min(k, row.size)]
        return [(int(col), float(row[col]) / norm) for col in order]
