"""Version-tracked GSim+ similarity over evolving graphs.

``SimilaritySession`` binds a pair of :class:`DynamicGraph` objects and
serves query blocks / top-k retrievals from versioned, atomically
swapped index generations owned by an
:class:`repro.dynamic.lifecycle.IndexGenerationManager`.  Factor
recomputation happens on a background thread (with retry/backoff and
optional checkpointed crash-resume); what a query does while a rebuild
is pending is a per-session (or per-call) *policy*:

* ``block`` (default) — wait, deadline-capped, for a fresh generation:
  the historical lazy-recompute behaviour, minus the poisoning (a failed
  rebuild leaves the previous generation serving and the next query
  retries cleanly);
* ``serve_stale`` — answer immediately from the last-good generation
  while it is within the session's :class:`StalenessBudget`;
* ``shed`` — never wait: raise a structured
  :class:`repro.runtime.IndexUnavailableError` instead of queueing.

The session reports staleness/recompute statistics through the shared
:class:`repro.runtime.Metrics` sink (``session.*`` and ``lifecycle.*``
counters); :attr:`SimilaritySession.stats` remains a plain
:class:`SessionStats` view over those counters, and
:meth:`SimilaritySession.query_info` returns the block together with
the generation/staleness annotation it was served under.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dynamic.graph import DynamicGraph
from repro.dynamic.lifecycle import (
    CircuitBreaker,
    IndexGenerationManager,
    StalenessBudget,
    check_policy,
)
from repro.runtime import ExecutionContext, RetryPolicy, WorkerPool
from repro.utils.validation import check_positive_integer

__all__ = ["AnnotatedBlock", "SessionStats", "SimilaritySession"]


@dataclass
class SessionStats:
    """Counters describing how the session has been used."""

    queries: int = 0
    recomputes: int = 0
    cache_hits: int = 0
    stale_served: int = 0
    shed: int = 0


@dataclass(frozen=True)
class AnnotatedBlock:
    """A similarity block plus the generation it was served from."""

    block: np.ndarray
    generation: int
    fingerprint: str
    stale: bool
    degraded: bool
    staleness: dict = field(default_factory=dict)


class SimilaritySession:
    """GSim+ state over two evolving graphs, served from versioned
    generations that swap atomically under rebuilds.

    Examples
    --------
    >>> from repro.dynamic import DynamicGraph
    >>> a = DynamicGraph(4, [(0, 1), (1, 2), (2, 3)])
    >>> b = DynamicGraph(3, [(0, 1), (1, 2)])
    >>> session = SimilaritySession(a, b, iterations=6)
    >>> session.query([0, 1], [0, 1]).shape
    (2, 2)
    >>> a.add_edge(3, 0)     # graph changes ...
    >>> _ = session.query([0], [0])   # ... next query gets a rebuild
    >>> session.stats.recomputes
    2
    >>> session.close()
    """

    def __init__(
        self,
        graph_a: DynamicGraph,
        graph_b: DynamicGraph,
        iterations: int = 10,
        context: ExecutionContext | None = None,
        policy: str = "block",
        staleness_budget: StalenessBudget | None = None,
        wait_timeout: float = 60.0,
        eager_rebuild: bool = False,
        checkpoint_dir=None,
        retry_policy: RetryPolicy | None = None,
        circuit_breaker: CircuitBreaker | None = None,
        max_workers: int | None = None,
        recompress_tol: float | None = None,
        precision: str = "float64",
        rebuild_fault_injector=None,
    ) -> None:
        self._graph_a = graph_a
        self._graph_b = graph_b
        self.iterations = check_positive_integer(iterations, "iterations")
        self.policy = check_policy(policy)
        self._context = context if context is not None else ExecutionContext()
        self._manager = IndexGenerationManager(
            graph_a,
            graph_b,
            iterations=self.iterations,
            context=self._context,
            staleness_budget=staleness_budget,
            retry_policy=retry_policy,
            circuit_breaker=circuit_breaker,
            checkpoint_dir=checkpoint_dir,
            wait_timeout=wait_timeout,
            eager=eager_rebuild,
            rebuild_fault_injector=rebuild_fault_injector,
            max_workers=max_workers,
            recompress_tol=recompress_tol,
            precision=precision,
        )

    @property
    def context(self) -> ExecutionContext:
        """The execution context the session charges its work against."""
        return self._context

    @property
    def lifecycle(self) -> IndexGenerationManager:
        """The generation manager (health, chain, manual control)."""
        return self._manager

    @property
    def stats(self) -> SessionStats:
        """Usage counters, read from the shared metrics sink."""
        metrics = self._context.metrics
        return SessionStats(
            queries=int(metrics.counter("session.queries")),
            recomputes=int(metrics.counter("lifecycle.rebuilds")),
            cache_hits=int(metrics.counter("session.cache_hits")),
            stale_served=int(metrics.counter("lifecycle.stale_served")),
            shed=int(metrics.counter("lifecycle.shed")),
        )

    # ------------------------------------------------------------------
    # Lifecycle management
    # ------------------------------------------------------------------
    @property
    def stale(self) -> bool:
        """Whether the live generation lags the graphs' current versions."""
        return self._manager.is_stale

    def refresh(self) -> None:
        """Force a synchronous rebuild from the graphs' current state.

        Runs in the calling thread and re-raises build failures; on
        failure the previous generation stays installed and serving, so
        the session is never left half-updated.
        """
        with self._context.metrics.time("session.refresh"):
            self._manager.rebuild_now()

    def health(self) -> dict:
        """The lifecycle health row (degraded flag, breaker state, ...)."""
        return self._manager.health()

    def close(self) -> None:
        """Stop the background rebuild worker (idempotent)."""
        self._manager.close()

    def __enter__(self) -> "SimilaritySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        queries_a: np.ndarray | list[int],
        queries_b: np.ndarray | list[int],
        normalization: str = "global",
        policy: str | None = None,
    ) -> np.ndarray:
        """The normalised similarity block for the current graph state.

        ``normalization`` follows :class:`repro.core.gsim_plus.GSimPlus`
        (``"global"`` default here: across updates, globally normalised
        scores stay comparable).  ``policy`` overrides the session's
        serving policy for this one call.
        """
        return self.query_info(
            queries_a, queries_b, normalization=normalization, policy=policy
        ).block

    def query_info(
        self,
        queries_a: np.ndarray | list[int],
        queries_b: np.ndarray | list[int],
        normalization: str = "global",
        policy: str | None = None,
    ) -> AnnotatedBlock:
        """Like :meth:`query`, annotated with generation and staleness."""
        if normalization not in ("block", "global"):
            raise ValueError(f"unknown normalization {normalization!r}")
        policy = self.policy if policy is None else check_policy(policy)
        pre_ordinal = self._manager.live_ordinal
        with self._manager.lease(policy) as lease:
            self._note_query(lease, pre_ordinal)
            block = lease.factors.query_block(
                queries_a, queries_b, include_scale=False
            )
            if normalization == "block":
                denominator = float(np.linalg.norm(block))
            else:
                denominator = lease.factors.frobenius_norm(include_scale=False)
            if denominator == 0.0:
                raise ZeroDivisionError("similarity collapsed to zero")
            return AnnotatedBlock(
                block=block / denominator,
                generation=lease.generation.ordinal,
                fingerprint=lease.generation.fingerprint,
                stale=lease.stale,
                degraded=lease.degraded,
                staleness=lease.staleness.to_dict(),
            )

    def query_many(
        self,
        requests,
        normalization: str = "global",
        policy: str | None = None,
        max_workers: int | None = None,
    ) -> list[np.ndarray]:
        """Answer many ``(queries_a, queries_b)`` blocks under one lease.

        The whole batch is served from a single generation — a swap that
        lands mid-batch cannot mix factor versions across the results —
        and comes back in request order for every worker count.
        """
        if normalization not in ("block", "global"):
            raise ValueError(f"unknown normalization {normalization!r}")
        policy = self.policy if policy is None else check_policy(policy)
        request_list = list(requests)
        pre_ordinal = self._manager.live_ordinal
        pool = WorkerPool.resolve(max_workers)
        with self._manager.lease(policy) as lease:
            self._note_query(lease, pre_ordinal, count=len(request_list))
            factors = lease.factors
            global_norm = factors.frobenius_norm(include_scale=False)

            def _one(request) -> np.ndarray:
                block = factors.query_block(
                    request[0], request[1], include_scale=False
                )
                denominator = (
                    float(np.linalg.norm(block))
                    if normalization == "block"
                    else global_norm
                )
                if denominator == 0.0:
                    raise ZeroDivisionError("similarity collapsed to zero")
                return block / denominator

            return pool.map(
                _one,
                request_list,
                context=self._context,
                what="session query blocks",
            )

    def top_matches(
        self, node_a: int, k: int = 5, policy: str | None = None
    ) -> list[tuple[int, float]]:
        """The ``k`` most similar G_B nodes for one G_A node, with scores."""
        k = check_positive_integer(k, "k")
        policy = self.policy if policy is None else check_policy(policy)
        pre_ordinal = self._manager.live_ordinal
        with self._manager.lease(policy) as lease:
            self._note_query(lease, pre_ordinal)
            factors = lease.factors
            norm = factors.frobenius_norm(include_scale=False)
            if norm == 0.0:
                raise ZeroDivisionError("similarity collapsed to zero")
            row = factors.query_block(
                [node_a], np.arange(factors.shape[1]), include_scale=False
            )[0]
            order = np.argsort(-row, kind="stable")[: min(k, row.size)]
            return [(int(col), float(row[col]) / norm) for col in order]

    # ------------------------------------------------------------------
    def _note_query(self, lease, pre_ordinal, count: int = 1) -> None:
        metrics = self._context.metrics
        metrics.increment("session.queries", count)
        # A cache hit in the historical sense: served from a generation
        # that already existed and was still fresh when we asked.
        if (
            not lease.stale
            and pre_ordinal is not None
            and lease.generation.ordinal == pre_ordinal
        ):
            metrics.increment("session.cache_hits", count)
