"""A mutable directed graph with cheap snapshots.

``DynamicGraph`` keeps edges in a dict (``(src, dst) -> weight``) so
inserts/deletes are O(1), and materialises an immutable
:class:`repro.graphs.Graph` snapshot on demand.  A monotonically
increasing ``version`` lets downstream caches (the similarity session)
detect staleness without comparing edge sets.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.graphs.graph import Graph
from repro.utils.validation import check_nonnegative_integer

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """A mutable directed graph over nodes ``0 .. num_nodes-1``.

    Examples
    --------
    >>> g = DynamicGraph(3)
    >>> g.add_edge(0, 1)
    >>> g.add_edge(1, 2, weight=2.0)
    >>> g.num_edges
    2
    >>> g.remove_edge(0, 1)
    >>> g.snapshot().num_edges
    1
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[tuple[int, int]] | Iterable[tuple[int, int, float]] = (),
    ) -> None:
        self._num_nodes = check_nonnegative_integer(num_nodes, "num_nodes")
        self._edges: dict[tuple[int, int], float] = {}
        self._version = 0
        self._snapshot: Graph | None = None
        for edge in edges:
            if len(edge) == 2:
                src, dst = edge  # type: ignore[misc]
                self.add_edge(int(src), int(dst))
            else:
                src, dst, weight = edge  # type: ignore[misc]
                self.add_edge(int(src), int(dst), weight=float(weight))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        """Insert (or overwrite) the edge ``src -> dst``."""
        self._check_node(src)
        self._check_node(dst)
        if weight == 0.0:
            raise ValueError("edge weight must be non-zero; use remove_edge")
        self._edges[(src, dst)] = float(weight)
        self._bump()

    def remove_edge(self, src: int, dst: int) -> None:
        """Delete the edge ``src -> dst``; KeyError if absent."""
        try:
            del self._edges[(src, dst)]
        except KeyError:
            raise KeyError(f"edge ({src}, {dst}) does not exist") from None
        self._bump()

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Batch insert; one version bump for the whole batch."""
        for src, dst in edges:
            self._check_node(src)
            self._check_node(dst)
            self._edges[(int(src), int(dst))] = 1.0
        self._bump()

    def add_node(self) -> int:
        """Append one node; returns its id."""
        self._num_nodes += 1
        self._bump()
        return self._num_nodes - 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Current node count."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Current edge count."""
        return len(self._edges)

    @property
    def version(self) -> int:
        """Monotone counter, bumped on every mutation."""
        return self._version

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the edge currently exists."""
        return (src, dst) in self._edges

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate current ``(src, dst, weight)`` triples (sorted)."""
        for (src, dst), weight in sorted(self._edges.items()):
            yield src, dst, weight

    # ------------------------------------------------------------------
    # Snapshotting
    # ------------------------------------------------------------------
    def snapshot(self, name: str = "dynamic") -> Graph:
        """An immutable :class:`Graph` of the current state (cached until
        the next mutation)."""
        if self._snapshot is None:
            self._snapshot = Graph.from_edges(
                self._num_nodes, list(self.edges()), name=f"{name}-v{self._version}"
            )
        return self._snapshot

    def _bump(self) -> None:
        self._version += 1
        self._snapshot = None

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._num_nodes):
            raise IndexError(
                f"node {node} out of range for {self._num_nodes} nodes"
            )

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(nodes={self._num_nodes}, edges={self.num_edges}, "
            f"version={self._version})"
        )
