"""A mutable directed graph with cheap snapshots.

``DynamicGraph`` keeps edges in a dict (``(src, dst) -> weight``) so
inserts/deletes are O(1), and materialises an immutable
:class:`repro.graphs.Graph` snapshot on demand.  A monotonically
increasing ``version`` lets downstream caches (the similarity session,
the index-generation manager) detect staleness without comparing edge
sets, and a cumulative ``edges_changed`` clock counts actual edge
mutations so staleness budgets can bound accumulated drift rather than
just version lag.

The graph is safe to mutate from a writer thread while a background
rebuild snapshots it: every mutator and :meth:`snapshot`/:meth:`freeze`
run under one re-entrant lock, and :meth:`freeze` captures the snapshot
together with the version/edge clocks atomically so a build can never be
labelled with a version it does not actually contain.

Self-inconsistent mutations are rejected early with clear errors — an
exact-duplicate ``add_edge`` (same endpoints *and* weight), a
``remove_edge`` on a missing edge, an out-of-range node, a zero weight —
and counted in :attr:`DynamicGraph.rejected_mutations` (mirrored into a
``graph.rejected_mutations`` metrics counter when a sink is attached)
instead of silently corrupting later CSR rebuilds.  Re-weighting an
existing edge remains a legitimate update.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Iterator

from repro.graphs.graph import Graph
from repro.runtime.metrics import Metrics
from repro.utils.validation import check_nonnegative_integer

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """A mutable directed graph over nodes ``0 .. num_nodes-1``.

    Parameters
    ----------
    num_nodes:
        Initial node count.
    edges:
        Optional ``(src, dst)`` or ``(src, dst, weight)`` seed edges.
    metrics:
        Optional :class:`repro.runtime.Metrics` sink; rejected mutations
        are counted there under ``graph.rejected_mutations``.

    Examples
    --------
    >>> g = DynamicGraph(3)
    >>> g.add_edge(0, 1)
    >>> g.add_edge(1, 2, weight=2.0)
    >>> g.num_edges
    2
    >>> g.remove_edge(0, 1)
    >>> g.snapshot().num_edges
    1
    >>> g.edges_changed
    3
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[tuple[int, int]] | Iterable[tuple[int, int, float]] = (),
        metrics: Metrics | None = None,
    ) -> None:
        self._num_nodes = check_nonnegative_integer(num_nodes, "num_nodes")
        self._edges: dict[tuple[int, int], float] = {}
        self._version = 0
        self._edges_changed = 0
        self._rejected = 0
        self._snapshot: Graph | None = None
        self._metrics = metrics
        self._lock = threading.RLock()
        self._subscribers: list[Callable[["DynamicGraph"], None]] = []
        for edge in edges:
            if len(edge) == 2:
                src, dst = edge  # type: ignore[misc]
                self.add_edge(int(src), int(dst))
            else:
                src, dst, weight = edge  # type: ignore[misc]
                self.add_edge(int(src), int(dst), weight=float(weight))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        """Insert the edge ``src -> dst`` (or update its weight).

        An exact duplicate — the edge already exists *with the same
        weight* — is rejected with ``ValueError``: it signals a confused
        writer (double-applied event, replayed stream) rather than a
        legitimate update, and silently absorbing it would desynchronise
        the caller's idea of the mutation stream from the graph's.
        """
        with self._lock:
            self._check_node(src)
            self._check_node(dst)
            weight = float(weight)
            if weight == 0.0:
                self._reject()
                raise ValueError("edge weight must be non-zero; use remove_edge")
            existing = self._edges.get((src, dst))
            if existing == weight:
                self._reject()
                raise ValueError(
                    f"duplicate add_edge({src}, {dst}, weight={weight}): the "
                    "edge already exists with this weight; use a different "
                    "weight to update it or remove_edge to delete it"
                )
            self._edges[(src, dst)] = weight
            self._bump(edges_changed=1)
        self._notify()

    def remove_edge(self, src: int, dst: int) -> None:
        """Delete the edge ``src -> dst``; KeyError if absent."""
        with self._lock:
            try:
                del self._edges[(src, dst)]
            except KeyError:
                self._reject()
                raise KeyError(f"edge ({src}, {dst}) does not exist") from None
            self._bump(edges_changed=1)
        self._notify()

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Batch insert; one version bump for the whole batch.

        The batch is validated in full before any edge is applied, so a
        rejected batch (out-of-range node, exact duplicate against the
        current graph or within the batch itself) leaves the graph
        untouched rather than half-applied.
        """
        batch = [(int(src), int(dst)) for src, dst in edges]
        with self._lock:
            seen: set[tuple[int, int]] = set()
            for src, dst in batch:
                self._check_node(src)
                self._check_node(dst)
                if self._edges.get((src, dst)) == 1.0 or (src, dst) in seen:
                    self._reject()
                    raise ValueError(
                        f"duplicate edge ({src}, {dst}) in add_edges batch; "
                        "the batch was rejected whole and the graph is "
                        "unchanged"
                    )
                seen.add((src, dst))
            if not batch:
                return
            for src, dst in batch:
                self._edges[(src, dst)] = 1.0
            self._bump(edges_changed=len(batch))
        self._notify()

    def add_node(self) -> int:
        """Append one node; returns its id."""
        with self._lock:
            self._num_nodes += 1
            self._bump(edges_changed=0)
            new = self._num_nodes - 1
        self._notify()
        return new

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Current node count."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Current edge count."""
        return len(self._edges)

    @property
    def version(self) -> int:
        """Monotone counter, bumped on every mutation."""
        return self._version

    @property
    def edges_changed(self) -> int:
        """Cumulative count of edge mutations ever applied.

        Unlike :attr:`version` (one bump per mutation *call*), this
        counts individual edge changes — a 40-edge batch advances it by
        40 — so staleness budgets can bound real structural drift.
        """
        return self._edges_changed

    @property
    def rejected_mutations(self) -> int:
        """How many self-inconsistent mutations were rejected."""
        return self._rejected

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the edge currently exists."""
        return (src, dst) in self._edges

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate current ``(src, dst, weight)`` triples (sorted)."""
        with self._lock:
            items = sorted(self._edges.items())
        for (src, dst), weight in items:
            yield src, dst, weight

    # ------------------------------------------------------------------
    # Change notification
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[["DynamicGraph"], None]) -> None:
        """Register ``callback(graph)`` to fire after every mutation.

        Callbacks run outside the graph's lock (so a subscriber may
        freely read the graph or take its own locks) in registration
        order.  The index-generation manager subscribes here to mark its
        live generation stale and enqueue a background rebuild at write
        time rather than first-query time.
        """
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[["DynamicGraph"], None]) -> None:
        """Remove a subscriber registered with :meth:`subscribe`."""
        with self._lock:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Snapshotting
    # ------------------------------------------------------------------
    def snapshot(self, name: str = "dynamic") -> Graph:
        """An immutable :class:`Graph` of the current state (cached until
        the next mutation)."""
        with self._lock:
            if self._snapshot is None:
                self._snapshot = Graph.from_edges(
                    self._num_nodes,
                    list(self.edges()),
                    name=f"{name}-v{self._version}",
                )
            return self._snapshot

    def freeze(self, name: str = "dynamic") -> tuple[Graph, int, int]:
        """Atomically capture ``(snapshot, version, edges_changed)``.

        A background rebuild must label the generation it produces with
        the graph state it actually consumed; taking the snapshot and
        reading the clocks in two steps would race a concurrent writer.
        """
        with self._lock:
            return self.snapshot(name=name), self._version, self._edges_changed

    def _bump(self, edges_changed: int = 1) -> None:
        self._version += 1
        self._edges_changed += edges_changed
        self._snapshot = None

    def _reject(self) -> None:
        self._rejected += 1
        if self._metrics is not None:
            self._metrics.increment("graph.rejected_mutations")

    def _notify(self) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(self)

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._num_nodes):
            self._reject()
            raise IndexError(
                f"node {node} out of range for {self._num_nodes} nodes"
            )

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(nodes={self._num_nodes}, edges={self.num_edges}, "
            f"version={self._version})"
        )
