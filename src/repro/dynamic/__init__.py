"""Evolving-graph support.

The paper's related work spans evolving graphs (Yu & Wang 2018, "Fast
Exact CoSimRank Search on Evolving and Static Graphs"); production
similarity services face the same need: graphs change, and similarity
state must stay consistent with them.

* :class:`repro.dynamic.graph.DynamicGraph` — a mutable edge set with
  cheap batched updates, mutation validation, change subscriptions, and
  snapshotting to the immutable :class:`repro.graphs.Graph` the solvers
  consume.
* :mod:`repro.dynamic.lifecycle` — versioned, immutable index
  generations with background rebuilds (retry/backoff, checkpointed
  crash-resume, circuit breaker) installed by zero-downtime atomic
  swaps.
* :class:`repro.dynamic.session.SimilaritySession` — version-tracked
  GSim+ state over a pair of dynamic graphs, served from the lifecycle
  manager under a ``block`` / ``serve_stale`` / ``shed`` policy.
"""

from repro.dynamic.graph import DynamicGraph
from repro.dynamic.lifecycle import (
    POLICIES,
    CircuitBreaker,
    GenerationLease,
    IndexGeneration,
    IndexGenerationManager,
    Staleness,
    StalenessBudget,
    check_policy,
    generation_fingerprint,
)
from repro.dynamic.session import AnnotatedBlock, SessionStats, SimilaritySession

__all__ = [
    "POLICIES",
    "AnnotatedBlock",
    "CircuitBreaker",
    "DynamicGraph",
    "GenerationLease",
    "IndexGeneration",
    "IndexGenerationManager",
    "SessionStats",
    "SimilaritySession",
    "Staleness",
    "StalenessBudget",
    "check_policy",
    "generation_fingerprint",
]
