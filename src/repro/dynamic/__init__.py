"""Evolving-graph support.

The paper's related work spans evolving graphs (Yu & Wang 2018, "Fast
Exact CoSimRank Search on Evolving and Static Graphs"); production
similarity services face the same need: graphs change, and similarity
state must stay consistent with them.

* :class:`repro.dynamic.graph.DynamicGraph` — a mutable edge set with
  cheap batched updates and snapshotting to the immutable
  :class:`repro.graphs.Graph` the solvers consume.
* :class:`repro.dynamic.session.SimilaritySession` — version-tracked
  GSim+ state over a pair of dynamic graphs: factors are recomputed
  lazily on first query after a change and reused until the next one.
"""

from repro.dynamic.graph import DynamicGraph
from repro.dynamic.session import SimilaritySession

__all__ = ["DynamicGraph", "SimilaritySession"]
