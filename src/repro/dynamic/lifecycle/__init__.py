"""Live-index lifecycle: versioned generations, zero-downtime swaps.

The billion-scale retrieval claim only matters in production if the
index survives the graphs changing underneath it.  This package turns
the dynamic layer's recompute-on-write into a serving-grade lifecycle:

* :mod:`repro.dynamic.lifecycle.generation` — immutable, fingerprinted
  :class:`IndexGeneration` objects with reader-count draining, handed to
  queries as :class:`GenerationLease` context managers;
* :mod:`repro.dynamic.lifecycle.policy` — :class:`StalenessBudget`
  (version lag / wall-clock age / edge delta, calibratable against the
  Theorem 4.2 error bound), the ``block`` / ``serve_stale`` / ``shed``
  serving policies, and the rebuild :class:`CircuitBreaker`;
* :mod:`repro.dynamic.lifecycle.manager` —
  :class:`IndexGenerationManager`, which runs background rebuilds with
  retry/backoff under checkpointed execution contexts and installs the
  results by atomic pointer flips.

``repro.dynamic.SimilaritySession`` is built on this manager; use the
manager directly when serving :class:`repro.retrieval.index.GSimIndex`
generations from your own front end.
"""

from repro.dynamic.lifecycle.generation import (
    GenerationLease,
    IndexGeneration,
    generation_fingerprint,
)
from repro.dynamic.lifecycle.manager import IndexGenerationManager
from repro.dynamic.lifecycle.policy import (
    POLICIES,
    CircuitBreaker,
    Staleness,
    StalenessBudget,
    check_policy,
)

__all__ = [
    "POLICIES",
    "CircuitBreaker",
    "GenerationLease",
    "IndexGeneration",
    "IndexGenerationManager",
    "Staleness",
    "StalenessBudget",
    "check_policy",
    "generation_fingerprint",
]
