"""The index-generation manager: background rebuilds, atomic swaps.

``IndexGenerationManager`` owns a chain of immutable
:class:`repro.dynamic.lifecycle.generation.IndexGeneration` objects over
one pair of :class:`repro.dynamic.graph.DynamicGraph` instances and
keeps exactly one of them *live*.  The contract:

* **Writers never block readers.**  A graph mutation marks the live
  generation stale and (in eager mode, or at the next blocking query)
  enqueues a rebuild that runs on a dedicated background thread under a
  checkpointed :class:`repro.runtime.ExecutionContext` with
  :class:`repro.runtime.RetryPolicy` backoff — a killed attempt resumes
  from its last checkpoint, bit-identically.
* **Swaps are atomic and drain readers.**  A finished build is installed
  by a pointer flip under the manager's lock; queries in flight keep the
  old generation alive through its reader count and it retires (memory
  released, telemetry event) only when the count drains to zero.
* **Readers choose their consistency.**  :meth:`lease` implements the
  three serving policies (``block`` / ``serve_stale`` / ``shed``)
  against a :class:`repro.dynamic.lifecycle.policy.StalenessBudget`;
  stale service is annotated and counted (``lifecycle.stale_served``),
  sheds raise a structured
  :class:`repro.runtime.errors.IndexUnavailableError`.
* **Failures degrade, never poison.**  A failed rebuild leaves the
  last-good generation untouched; repeated failures trip a
  :class:`repro.dynamic.lifecycle.policy.CircuitBreaker` that pins it
  and surfaces a degraded-health flag in :meth:`health` until a
  half-open probe succeeds.

Rebuild coalescing: N mutations arriving during one build produce at
most one follow-up build (targeting the latest graph state), not N —
the request flag is level-triggered, and absorbed mutations are counted
in ``lifecycle.rebuilds_coalesced``.
"""

from __future__ import annotations

import threading
import time

from repro.dynamic.graph import DynamicGraph
from repro.dynamic.lifecycle.generation import GenerationLease, IndexGeneration
from repro.dynamic.lifecycle.policy import (
    MISSING,
    CircuitBreaker,
    Staleness,
    StalenessBudget,
    check_policy,
)
from repro.retrieval.index import GSimIndex
from repro.runtime import ExecutionContext, RetryPolicy
from repro.runtime.budget import WallClockDeadline
from repro.runtime.errors import IndexUnavailableError
from repro.runtime.resilience import CheckpointManager
from repro.utils.validation import check_positive_integer

__all__ = ["IndexGenerationManager"]


class IndexGenerationManager:
    """Versioned, atomically swapped index generations over two graphs.

    Parameters
    ----------
    graph_a, graph_b:
        The evolving graph pair.
    iterations:
        GSim+ depth of every generation.
    context:
        The :class:`repro.runtime.ExecutionContext` whose metrics,
        tracer, memory ledger, cancellation token, and slow-query log
        all lifecycle activity reports to.  A fresh metrics-only context
        is created when omitted.
    staleness_budget:
        Bounds under which ``serve_stale``/``shed`` queries accept a
        lagging generation; default unbounded.
    retry_policy:
        Backoff for transient rebuild failures *within* one rebuild
        cycle; each retry resumes from the latest checkpoint.
    circuit_breaker:
        Gates rebuild *cycles* once they fail repeatedly.
    checkpoint_dir:
        Directory for mid-build snapshots; enables crash/resume of
        rebuilds.  Cleared whenever the rebuild target changes (a stale
        target's snapshots are unusable) and pruned to
        ``keep_checkpoints`` after every successful swap.
    wait_timeout:
        Default seconds a blocking lease waits for a fresh generation.
    rebuild_deadline_seconds:
        Optional per-attempt wall-clock budget for one rebuild.
    eager:
        When true, subscribe to both graphs and enqueue rebuilds at
        write time; when false (default) rebuilds are triggered by the
        first lease that needs one — deterministic, no background work
        unless queried.
    rebuild_fault_injector:
        Test hook: a :class:`repro.runtime.FaultInjector` consulted only
        by rebuild attempts (never by readers), so chaos tests can kill
        a build at a seeded step without touching the query path.
    max_workers / recompress_tol / precision:
        Forwarded to :meth:`repro.retrieval.index.GSimIndex.build`.
    """

    def __init__(
        self,
        graph_a: DynamicGraph,
        graph_b: DynamicGraph,
        iterations: int = 10,
        context: ExecutionContext | None = None,
        staleness_budget: StalenessBudget | None = None,
        retry_policy: RetryPolicy | None = None,
        circuit_breaker: CircuitBreaker | None = None,
        checkpoint_dir=None,
        checkpoint_every: int = 1,
        keep_checkpoints: int = 2,
        wait_timeout: float = 60.0,
        rebuild_deadline_seconds: float | None = None,
        eager: bool = False,
        failure_pause_seconds: float = 0.25,
        rebuild_fault_injector=None,
        max_workers: int | None = None,
        recompress_tol: float | None = None,
        precision: str = "float64",
        graph_name_a: str = "A",
        graph_name_b: str = "B",
    ) -> None:
        self._graph_a = graph_a
        self._graph_b = graph_b
        self.iterations = check_positive_integer(iterations, "iterations")
        self._context = context if context is not None else ExecutionContext()
        self.staleness_budget = (
            staleness_budget if staleness_budget is not None else StalenessBudget()
        )
        self._retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=2.0)
        )
        self._breaker = (
            circuit_breaker
            if circuit_breaker is not None
            else CircuitBreaker(failure_threshold=3, reset_timeout=30.0)
        )
        self._breaker_last_state = self._breaker.state
        self._checkpoints = (
            CheckpointManager(checkpoint_dir, prefix="generation", keep=4)
            if checkpoint_dir is not None
            else None
        )
        self._checkpoint_every = check_positive_integer(
            checkpoint_every, "checkpoint_every"
        )
        self._keep_checkpoints = check_positive_integer(
            keep_checkpoints, "keep_checkpoints"
        )
        if wait_timeout < 0:
            raise ValueError(f"wait_timeout must be non-negative, got {wait_timeout}")
        self.wait_timeout = float(wait_timeout)
        self._rebuild_deadline = rebuild_deadline_seconds
        self._failure_pause = float(failure_pause_seconds)
        self._rebuild_fault_injector = rebuild_fault_injector
        self._max_workers = max_workers
        self._recompress_tol = recompress_tol
        self._precision = precision
        self._name_a = graph_name_a
        self._name_b = graph_name_b

        self._cond = threading.Condition(threading.Lock())
        self._build_lock = threading.Lock()  # one builder at a time
        self._live: IndexGeneration | None = None
        self._chain: list[dict] = []
        self._next_ordinal = 1
        self._rebuild_requested = False
        self._rebuilding = False
        self._closed = False
        self._worker: threading.Thread | None = None
        self._last_failure: str | None = None
        self._failure_epoch = 0
        self._ckpt_target: tuple[int, int] | None = None

        self._eager = bool(eager)
        if self._eager:
            self._graph_a.subscribe(self._on_mutation)
            self._graph_b.subscribe(self._on_mutation)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def context(self) -> ExecutionContext:
        """The execution context lifecycle activity reports to."""
        return self._context

    @property
    def live_generation(self) -> IndexGeneration | None:
        """The currently served generation (None before the first build)."""
        with self._cond:
            return self._live

    @property
    def live_ordinal(self) -> int | None:
        """Ordinal of the live generation, or None."""
        with self._cond:
            return self._live.ordinal if self._live is not None else None

    @property
    def is_stale(self) -> bool:
        """Whether the live generation lags the graphs (or none exists)."""
        with self._cond:
            return not self._staleness_locked().fresh

    def staleness(self) -> Staleness:
        """The live generation's current staleness measurement."""
        with self._cond:
            return self._staleness_locked()

    def generations(self) -> list[dict]:
        """The generation chain as JSON-friendly summaries, oldest first."""
        with self._cond:
            return [dict(entry) for entry in self._chain]

    def health(self) -> dict:
        """One structured health row for dashboards and status endpoints."""
        with self._cond:
            staleness = self._staleness_locked()
            breaker_state = self._breaker.state
            return {
                "live_generation": (
                    self._live.ordinal if self._live is not None else None
                ),
                "live_fingerprint": (
                    self._live.fingerprint if self._live is not None else None
                ),
                "staleness": (
                    staleness.to_dict() if self._live is not None else None
                ),
                "degraded": breaker_state == "open",
                "breaker": breaker_state,
                "consecutive_failures": self._breaker.consecutive_failures,
                "last_failure": self._last_failure,
                "rebuild_in_flight": self._rebuilding,
                "rebuild_pending": self._rebuild_requested,
                "generations_built": self._next_ordinal - 1,
                "closed": self._closed,
            }

    # ------------------------------------------------------------------
    # Leasing (the read path)
    # ------------------------------------------------------------------
    def lease(
        self, policy: str = "serve_stale", wait_timeout: float | None = None
    ) -> GenerationLease:
        """Acquire a generation to read under, per the serving policy.

        Returns a :class:`GenerationLease` (use as a context manager);
        the leased generation cannot retire until the lease is released,
        so a swap that lands mid-query never tears the reader's view.

        * ``block`` — only a fresh generation will do; trigger a rebuild
          if none is pending and wait up to ``wait_timeout`` (default:
          the manager's).  Raises :class:`IndexUnavailableError` on
          timeout, on a failed rebuild cycle, or when the circuit
          breaker is open.
        * ``serve_stale`` — serve the live generation immediately while
          it is within the staleness budget *or* pinned by an open
          breaker; beyond the budget, fall back to the blocking wait.
        * ``shed`` — never wait: serve fresh or within-budget, otherwise
          raise immediately.
        """
        check_policy(policy)
        timeout = self.wait_timeout if wait_timeout is None else float(wait_timeout)
        deadline = time.monotonic() + timeout
        metrics = self._context.metrics
        waited = False
        with self._cond:
            entry_epoch = self._failure_epoch
            while True:
                if self._closed:
                    raise RuntimeError("IndexGenerationManager is closed")
                live = self._live
                staleness = self._staleness_locked()
                if live is not None and staleness.fresh:
                    live.acquire()
                    metrics.set_gauge("lifecycle.version_lag", 0)
                    return GenerationLease(live, staleness, degraded=False)
                degraded = self._breaker.state == "open"
                metrics.set_gauge(
                    "lifecycle.version_lag",
                    staleness.version_lag if live is not None else -1,
                )
                if live is not None and policy in ("serve_stale", "shed"):
                    if degraded or self.staleness_budget.allows(staleness):
                        live.acquire()
                        metrics.increment("lifecycle.stale_served")
                        if policy == "serve_stale" and not degraded:
                            # keep the background refresh coming
                            self._request_rebuild_locked()
                        return GenerationLease(live, staleness, degraded=degraded)
                if policy == "shed":
                    metrics.increment("lifecycle.shed")
                    raise IndexUnavailableError(
                        "no index generation within the staleness budget "
                        "(shed policy does not wait)",
                        reason="shed" if live is not None else "no_generation",
                        staleness=staleness.to_dict() if live is not None else None,
                    )
                if degraded:
                    metrics.increment("lifecycle.shed")
                    raise IndexUnavailableError(
                        "index rebuilds are failing (circuit breaker open) "
                        f"and no acceptable generation exists; last failure: "
                        f"{self._last_failure}",
                        reason="degraded",
                        staleness=staleness.to_dict() if live is not None else None,
                    )
                if self._failure_epoch != entry_epoch:
                    metrics.increment("lifecycle.shed")
                    raise IndexUnavailableError(
                        f"index rebuild failed while waiting: {self._last_failure}",
                        reason="rebuild_failed",
                        staleness=staleness.to_dict() if live is not None else None,
                    )
                self._request_rebuild_locked()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    metrics.increment("lifecycle.shed")
                    raise IndexUnavailableError(
                        f"timed out after {timeout:.1f}s waiting for a fresh "
                        "index generation",
                        reason="timeout",
                        staleness=staleness.to_dict() if live is not None else None,
                    )
                if not waited:
                    waited = True
                    metrics.increment("lifecycle.waits")
                self._cond.wait(min(remaining, 0.25))

    # ------------------------------------------------------------------
    # Rebuild control (the write path)
    # ------------------------------------------------------------------
    def request_rebuild(self) -> None:
        """Mark the live generation stale and enqueue a background
        rebuild (idempotent; coalesces with any rebuild in flight)."""
        with self._cond:
            if self._closed:
                return
            if self._rebuild_requested or self._rebuilding:
                self._context.metrics.increment("lifecycle.rebuilds_coalesced")
            self._request_rebuild_locked()

    def rebuild_now(self) -> IndexGeneration:
        """Synchronously build and install a generation in this thread.

        Used by ``SimilaritySession.refresh`` and warm-up paths.  Counts
        as a circuit-breaker probe: it runs even when the breaker is
        open, and its outcome feeds back into the breaker.  Build
        failures re-raise to the caller; the previous generation stays
        installed and serving, so a failed forced rebuild never poisons
        the session.
        """
        installed = self._run_rebuild_cycle(force=True)
        if installed is None:
            # The graphs were already fresh under the build lock.
            with self._cond:
                assert self._live is not None
                return self._live
        return installed

    def warm(self) -> IndexGeneration:
        """Ensure a first generation exists (build synchronously if not)."""
        with self._cond:
            if self._live is not None:
                return self._live
        return self.rebuild_now()

    def close(self, join_timeout: float = 10.0) -> None:
        """Stop the background worker and detach from the graphs.

        In-flight leases stay valid; new leases raise.  Idempotent.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
            worker = self._worker
        if self._eager:
            self._graph_a.unsubscribe(self._on_mutation)
            self._graph_b.unsubscribe(self._on_mutation)
        if worker is not None and worker is not threading.current_thread():
            worker.join(timeout=join_timeout)

    def __enter__(self) -> "IndexGenerationManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _on_mutation(self, graph: DynamicGraph) -> None:
        self.request_rebuild()

    def _request_rebuild_locked(self) -> None:
        if self._closed:
            return
        self._rebuild_requested = True
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._worker_loop,
                name="gsim-lifecycle-rebuild",
                daemon=True,
            )
            self._worker.start()
        self._cond.notify_all()

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._closed and not self._rebuild_requested:
                    self._cond.wait()
                if self._closed:
                    return
                self._rebuilding = True
            try:
                self._run_rebuild_cycle(force=False)
            except BaseException as exc:  # pragma: no cover - defensive
                # force=False cycles record their own failures and return;
                # anything landing here is a bug in the cycle itself.
                # Record it so blocked waiters shed instead of hanging.
                with self._cond:
                    self._last_failure = f"{type(exc).__name__}: {exc}"
                    self._failure_epoch += 1
                    self._cond.notify_all()
            finally:
                with self._cond:
                    self._rebuilding = False
                    self._cond.notify_all()

    def _run_rebuild_cycle(self, force: bool) -> IndexGeneration | None:
        """One build-and-install attempt cycle.

        ``force=True`` (synchronous callers) bypasses the breaker's
        refusal — it acts as the half-open probe — and re-raises build
        failures.  ``force=False`` (the worker) respects the breaker,
        records failures, and paces itself instead of raising.
        """
        metrics = self._context.metrics
        tracer = self._context.tracer
        with self._build_lock:
            if not force and not self._breaker.allow_attempt():
                pause = self._breaker.seconds_until_probe()
                metrics.increment("lifecycle.rebuilds_refused")
                with self._cond:
                    if not self._closed:
                        self._cond.wait(min(max(pause, 0.01), 1.0))
                self._note_breaker_state()
                return None
            # Re-check under the build lock: a competing rebuild_now may
            # have already installed a generation for the current state.
            # Forced rebuilds skip this — refresh() means rebuild, always.
            if not force:
                with self._cond:
                    if self._live is not None and self._staleness_locked().fresh:
                        self._rebuild_requested = False
                        return None
            try:
                built = self._build_candidate()
            except BaseException as exc:
                self._breaker.record_failure()
                self._note_breaker_state()
                metrics.increment("lifecycle.rebuild_failures")
                tracer.event(
                    "lifecycle.rebuild_failed",
                    severity="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
                with self._cond:
                    self._last_failure = f"{type(exc).__name__}: {exc}"
                    self._failure_epoch += 1
                    self._cond.notify_all()
                if force:
                    raise
                with self._cond:
                    if not self._closed and self._failure_pause > 0:
                        self._cond.wait(self._failure_pause)
                return None
            self._breaker.record_success()
            self._note_breaker_state()
            generation = self._install(*built)
            if self._checkpoints is not None:
                pruned = self._checkpoints.prune(keep_last=self._keep_checkpoints)
                if pruned:
                    metrics.increment("lifecycle.checkpoints_pruned", pruned)
            return generation

    def _build_candidate(self):
        """Build an index for the graphs' current state (not installed)."""
        snap_a, va, ea = self._graph_a.freeze(name=self._name_a)
        snap_b, vb, eb = self._graph_b.freeze(name=self._name_b)
        target = (va, vb)
        if self._checkpoints is not None and self._ckpt_target != target:
            # Snapshots of a previous target are unusable (and, worse,
            # could fingerprint-match on same-shaped graphs): drop them.
            self._checkpoints.clear()
            self._ckpt_target = target
        attempt_context = ExecutionContext(
            deadline=(
                WallClockDeadline(self._rebuild_deadline)
                if self._rebuild_deadline is not None
                else None
            ),
            memory=self._context.memory,
            cancellation=self._context.cancellation,
            metrics=self._context.metrics,
            fault_injector=self._rebuild_fault_injector,
            tracer=self._context.tracer,
            slow_queries=self._context.slow_queries,
        )
        start = time.perf_counter()
        with self._context.tracer.span(
            "lifecycle.rebuild", target_versions=str(target)
        ):
            index = self._retry_policy.call(
                GSimIndex.build,
                snap_a,
                snap_b,
                iterations=self.iterations,
                context=attempt_context,
                checkpoints=self._checkpoints,
                checkpoint_every=self._checkpoint_every,
                resume_from=self._checkpoints,
                recompress_tol=self._recompress_tol,
                precision=self._precision,
                max_workers=self._max_workers,
                what="index generation rebuild",
                on_retry=self._note_retry,
            )
        build_seconds = time.perf_counter() - start
        metrics = self._context.metrics
        metrics.observe_histogram("lifecycle.rebuild_seconds", build_seconds)
        # Hold the generation's working set on the ledger until it retires.
        self._context.charge(index.memory_bytes(), "index generation")
        if self._context.slow_queries is not None:
            self._context.slow_queries.maybe_record(
                "lifecycle.rebuild",
                build_seconds,
                versions=list(target),
                width=index.factors.width,
                iterations=self.iterations,
            )
        return index, target, (ea, eb), build_seconds

    def _note_retry(self, attempt: int, exc: BaseException) -> None:
        self._context.metrics.increment("lifecycle.rebuild_retries")
        self._context.tracer.event(
            "lifecycle.rebuild_retry",
            severity="warning",
            attempt=attempt,
            error=f"{type(exc).__name__}: {exc}",
        )

    def _install(
        self,
        index: GSimIndex,
        target: tuple[int, int],
        edge_clock: tuple[int, int],
        build_seconds: float,
    ) -> IndexGeneration:
        # Fingerprinting hashes the factor arrays — do it outside the
        # serving lock; the ordinal is assigned under it.
        generation = IndexGeneration(
            ordinal=0,
            index=index,
            versions=target,
            edge_clock=edge_clock,
            built_at=time.time(),
            build_seconds=build_seconds,
            iterations=self.iterations,
            on_retire=self._on_retire,
        )
        metrics = self._context.metrics
        with self._cond:
            generation.ordinal = self._next_ordinal
            self._next_ordinal += 1
            old = self._live
            self._live = generation
            self._chain.append(generation.summary())
            self._last_failure = None
            current = (self._graph_a.version, self._graph_b.version)
            if current == target:
                self._rebuild_requested = False
            self._cond.notify_all()
        metrics.increment("lifecycle.rebuilds")
        metrics.set_gauge("lifecycle.live_generation", generation.ordinal)
        metrics.set_gauge("lifecycle.live_width", generation.factors.width)
        self._context.tracer.event(
            "lifecycle.generation_installed",
            severity="info",
            generation=generation.ordinal,
            versions=str(target),
            build_seconds=build_seconds,
        )
        if old is not None:
            old.mark_retired()
        return generation

    def _on_retire(self, generation: IndexGeneration) -> None:
        with self._cond:
            for entry in self._chain:
                if entry["ordinal"] == generation.ordinal:
                    entry["retired"] = True
        self._context.metrics.increment("lifecycle.generations_retired")
        self._context.release(generation.index.memory_bytes())
        self._context.tracer.event(
            "lifecycle.generation_retired",
            severity="info",
            generation=generation.ordinal,
        )

    def _note_breaker_state(self) -> None:
        state = self._breaker.state
        if state != self._breaker_last_state:
            self._context.metrics.increment(f"lifecycle.breaker_{state}")
            self._context.tracer.event(
                "lifecycle.breaker_transition",
                severity="warning" if state != "closed" else "info",
                state=state,
            )
            self._breaker_last_state = state

    def _staleness_locked(self) -> Staleness:
        live = self._live
        if live is None:
            return MISSING
        version_lag = (
            (self._graph_a.version - live.versions[0])
            + (self._graph_b.version - live.versions[1])
        )
        edge_delta = (
            (self._graph_a.edges_changed - live.edge_clock[0])
            + (self._graph_b.edges_changed - live.edge_clock[1])
        )
        return Staleness(
            version_lag=version_lag,
            age_seconds=time.time() - live.built_at,
            edge_delta=edge_delta,
        )

    def __repr__(self) -> str:
        with self._cond:
            live = self._live.ordinal if self._live is not None else None
            return (
                f"IndexGenerationManager(live=#{live}, "
                f"generations={self._next_ordinal - 1}, "
                f"breaker={self._breaker.state!r}, closed={self._closed})"
            )
