"""Immutable, versioned index generations and reader leases.

An :class:`IndexGeneration` is one fully built :class:`repro.retrieval.
index.GSimIndex` frozen together with the exact graph state it was built
from: the two graph version counters, the cumulative edge-mutation
clocks, and a SHA-256 *fingerprint* over the factor arrays and build
parameters.  Generations are never mutated after construction — the
lifecycle manager swaps a pointer between them — so a reader that has
acquired one can never observe a torn or partially built index.

Retirement is reader-count driven: when the manager installs a
successor it calls :meth:`IndexGeneration.mark_retired`, but the
generation's arrays are only actually released once every in-flight
reader has called :meth:`IndexGeneration.release` (the pointer flip
drains old readers instead of interrupting them).  Readers hold
generations through :class:`GenerationLease`, a context manager the
manager hands out, which carries the staleness annotation the query
result is served under.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from repro.core.embeddings import LowRankFactors
from repro.retrieval.index import GSimIndex
from repro.runtime.resilience import content_checksum

from repro.dynamic.lifecycle.policy import Staleness

__all__ = ["GenerationLease", "IndexGeneration", "generation_fingerprint"]


def generation_fingerprint(
    factors: LowRankFactors,
    versions: tuple[int, int],
    iterations: int,
) -> str:
    """A content digest binding factor arrays to the graph state they
    were built from.

    Covers the raw ``U``/``V`` bytes, the log-scale, the two graph
    version counters, and the iteration count — so two generations agree
    on their fingerprint iff they hold bit-identical factors built from
    the same graph versions under the same depth.
    """
    return content_checksum(
        {
            "u": factors.u,
            "v": factors.v,
            "log_scale": np.float64(factors.log_scale),
            "versions": list(versions),
            "iterations": iterations,
        }
    )


class IndexGeneration:
    """One immutable build of the index, pinned to a graph state.

    Parameters
    ----------
    ordinal:
        1-based position in the generation chain.
    index:
        The built :class:`GSimIndex` (immutable from here on).
    versions:
        ``(graph_a.version, graph_b.version)`` the build consumed.
    edge_clock:
        ``(graph_a.edges_changed, graph_b.edges_changed)`` at build time,
        used to compute the accumulated edge delta of later mutations.
    built_at:
        Wall-clock install time (``time.time()``).
    build_seconds:
        How long the build took (for slow-rebuild records).
    on_retire:
        Callback fired exactly once, when the generation is retired
        *and* its reader count has drained to zero.
    """

    def __init__(
        self,
        ordinal: int,
        index: GSimIndex,
        versions: tuple[int, int],
        edge_clock: tuple[int, int],
        built_at: float,
        build_seconds: float,
        iterations: int,
        on_retire: Callable[["IndexGeneration"], None] | None = None,
    ) -> None:
        self.ordinal = ordinal
        self.index = index
        self.versions = versions
        self.edge_clock = edge_clock
        self.built_at = built_at
        self.build_seconds = build_seconds
        self.iterations = iterations
        self.fingerprint = generation_fingerprint(
            index.factors, versions, iterations
        )
        self._on_retire = on_retire
        self._lock = threading.Lock()
        self._readers = 0
        self._retire_pending = False
        self._retired = False

    @property
    def factors(self) -> LowRankFactors:
        """The factor pair this generation serves."""
        return self.index.factors

    @property
    def readers(self) -> int:
        """In-flight reader count."""
        with self._lock:
            return self._readers

    @property
    def retired(self) -> bool:
        """Whether the generation has fully retired (drained + replaced)."""
        with self._lock:
            return self._retired

    # ------------------------------------------------------------------
    def acquire(self) -> None:
        """Register one in-flight reader.

        The manager only acquires the *live* generation while holding
        its own lock, so acquisition can never race a retirement: a
        generation with a pending retire is by definition no longer
        live.
        """
        with self._lock:
            if self._retired:
                raise RuntimeError(
                    f"generation #{self.ordinal} is retired; "
                    "acquire must go through the lifecycle manager"
                )
            self._readers += 1

    def release(self) -> None:
        """Drop one reader; retire the generation if it was the last
        holdout of a pending retirement."""
        fire = False
        with self._lock:
            if self._readers <= 0:
                raise RuntimeError(
                    f"generation #{self.ordinal} released more than acquired"
                )
            self._readers -= 1
            if self._retire_pending and self._readers == 0:
                self._retire_pending = False
                self._retired = True
                fire = True
        if fire and self._on_retire is not None:
            self._on_retire(self)

    def mark_retired(self) -> None:
        """The manager replaced this generation: retire now if drained,
        otherwise when the last reader releases."""
        fire = False
        with self._lock:
            if self._retired or self._retire_pending:
                return
            if self._readers == 0:
                self._retired = True
                fire = True
            else:
                self._retire_pending = True
        if fire and self._on_retire is not None:
            self._on_retire(self)

    def summary(self) -> dict:
        """A JSON-friendly row for the generation chain."""
        return {
            "ordinal": self.ordinal,
            "fingerprint": self.fingerprint,
            "versions": list(self.versions),
            "built_at": self.built_at,
            "build_seconds": self.build_seconds,
            "iterations": self.iterations,
            "width": self.factors.width,
            "retired": self.retired,
        }

    def __repr__(self) -> str:
        return (
            f"IndexGeneration(#{self.ordinal}, versions={self.versions}, "
            f"readers={self.readers}, retired={self.retired})"
        )


class GenerationLease:
    """A reader's hold on one generation, plus its serving annotation.

    Use as a context manager; the generation's reader count is held for
    the ``with`` body and released on exit, so an atomic swap that
    happens mid-query retires the old generation only after this lease
    (and every other in-flight one) lets go.

    Attributes
    ----------
    generation:
        The :class:`IndexGeneration` being read.
    staleness:
        The :class:`repro.dynamic.lifecycle.policy.Staleness` measured
        at lease time.
    stale:
        Whether the lease serves a generation that lags the graphs.
    degraded:
        Whether the generation was pinned by an open circuit breaker
        (repeated rebuild failures) rather than chosen by the budget.
    """

    __slots__ = ("generation", "staleness", "stale", "degraded", "_released")

    def __init__(
        self,
        generation: IndexGeneration,
        staleness: Staleness,
        degraded: bool = False,
    ) -> None:
        self.generation = generation
        self.staleness = staleness
        self.stale = not staleness.fresh
        self.degraded = degraded
        self._released = False

    @property
    def factors(self) -> LowRankFactors:
        """The leased generation's factor pair."""
        return self.generation.factors

    @property
    def index(self) -> GSimIndex:
        """The leased generation's index."""
        return self.generation.index

    def annotation(self) -> dict:
        """The generation/staleness annotation attached to results."""
        return {
            "generation": self.generation.ordinal,
            "fingerprint": self.generation.fingerprint,
            "staleness": self.staleness.to_dict(),
            "stale": self.stale,
            "degraded": self.degraded,
        }

    def release(self) -> None:
        """Idempotently drop the reader hold."""
        if not self._released:
            self._released = True
            self.generation.release()

    def __enter__(self) -> "GenerationLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return (
            f"GenerationLease(#{self.generation.ordinal}, stale={self.stale}, "
            f"degraded={self.degraded})"
        )
