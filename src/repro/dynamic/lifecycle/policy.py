"""Serving policies for live index generations.

Three small, independently testable pieces decide what a query is
allowed to see while the graphs evolve underneath the index:

* :class:`Staleness` — how far a generation lags the live graphs, in
  three currencies at once (version lag, wall-clock age, accumulated
  edge delta);
* :class:`StalenessBudget` — per-query admission of a stale generation:
  serve it while every configured bound holds, otherwise escalate to the
  caller's policy (wait or shed).  :meth:`StalenessBudget.from_error_bound`
  ties the edge-delta bound to the Theorem 4.2 truncation error, so
  "acceptably stale" means "the drift is plausibly inside the error the
  caller already accepted by truncating at K iterations";
* :class:`CircuitBreaker` — closed → open → half-open → closed over
  repeated rebuild failures, so a persistently failing rebuild pins the
  last-good generation instead of burning the background worker on a
  hopeless loop.

The three serving policies themselves are plain strings (``"block"``,
``"serve_stale"``, ``"shed"``) validated by :func:`check_policy`; the
decision procedure that combines them with a budget and a breaker lives
in :class:`repro.dynamic.lifecycle.manager.IndexGenerationManager`.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.graphs.graph import Graph

__all__ = [
    "POLICIES",
    "CircuitBreaker",
    "Staleness",
    "StalenessBudget",
    "check_policy",
]

#: The serving policies a query may request.
#:
#: ``block``       — only fresh answers; wait (deadline-capped) for the
#:                   background rebuild, shed on timeout.
#: ``serve_stale`` — answer immediately from the last-good generation
#:                   while it is within the staleness budget (or the
#:                   circuit breaker has pinned it); fall back to a
#:                   deadline-capped wait once the budget is exhausted.
#: ``shed``        — never wait: answer from a fresh or within-budget
#:                   generation, otherwise raise ``IndexUnavailableError``
#:                   immediately (admission control for latency-critical
#:                   callers).
POLICIES = ("block", "serve_stale", "shed")


def check_policy(policy: str) -> str:
    """Validate a serving-policy name."""
    if policy not in POLICIES:
        raise ValueError(
            f"unknown serving policy {policy!r}; expected one of {POLICIES}"
        )
    return policy


@dataclass(frozen=True)
class Staleness:
    """How far a generation lags the live graphs.

    Attributes
    ----------
    version_lag:
        Sum of the two graphs' version-counter deltas since the
        generation was built (``inf`` when no generation exists).
    age_seconds:
        Wall-clock seconds since the generation was installed.
    edge_delta:
        Accumulated count of edge mutations (inserts + deletes +
        weight changes) applied to either graph since the build.
    """

    version_lag: float
    age_seconds: float
    edge_delta: float

    @property
    def fresh(self) -> bool:
        """Whether the generation matches the graphs exactly."""
        return self.version_lag == 0

    def to_dict(self) -> dict:
        """A JSON-friendly rendering (used in result annotations)."""
        return {
            "version_lag": self.version_lag,
            "age_seconds": self.age_seconds,
            "edge_delta": self.edge_delta,
            "fresh": self.fresh,
        }


#: Staleness of "no generation exists at all" — fails every budget.
MISSING = Staleness(
    version_lag=math.inf, age_seconds=math.inf, edge_delta=math.inf
)


@dataclass(frozen=True)
class StalenessBudget:
    """Bounds under which a stale generation may still be served.

    Every bound is optional; ``None`` means unbounded in that currency.
    A generation is *within budget* when **all** configured bounds hold.
    The default budget is unbounded — serve-stale callers accept any
    lag unless they say otherwise.

    Examples
    --------
    >>> budget = StalenessBudget(max_version_lag=4)
    >>> budget.allows(Staleness(version_lag=3, age_seconds=9.0, edge_delta=3))
    True
    >>> budget.allows(Staleness(version_lag=5, age_seconds=0.1, edge_delta=5))
    False
    """

    max_version_lag: int | None = None
    max_age_seconds: float | None = None
    max_edge_delta: int | None = None

    def __post_init__(self) -> None:
        for name in ("max_version_lag", "max_age_seconds", "max_edge_delta"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    def allows(self, staleness: Staleness) -> bool:
        """Whether a generation this stale may still be served."""
        if staleness.fresh:
            return True
        if (
            self.max_version_lag is not None
            and staleness.version_lag > self.max_version_lag
        ):
            return False
        if (
            self.max_age_seconds is not None
            and staleness.age_seconds > self.max_age_seconds
        ):
            return False
        if (
            self.max_edge_delta is not None
            and staleness.edge_delta > self.max_edge_delta
        ):
            return False
        return True

    @classmethod
    def from_error_bound(
        cls,
        graph_a: Graph,
        graph_b: Graph,
        iterations: int,
        slack: float = 1.0,
        max_age_seconds: float | None = None,
    ) -> "StalenessBudget":
        """An edge-delta budget tied to the Theorem 4.2 truncation bound.

        The caller already accepted a relative similarity error of
        ``eps = (|λ2|/|λ1|)^K · C`` (Theorem 4.2) by truncating at ``K``
        iterations.  A single edge flip perturbs the normalised adjacency
        pair by ``O(1/m)`` in Frobenius norm (``m`` total edges), so the
        accumulated drift of ``Δ`` mutations stays plausibly inside that
        accepted error while ``Δ ≲ eps · m``.  ``slack`` scales the
        resulting bound (use ``< 1`` to be conservative); at least one
        mutation is always allowed so the budget is usable on graph
        pairs where the bound is extremely tight.

        This is a heuristic calibration, not a guarantee — the bound
        controls iteration truncation, not structural perturbation — but
        it gives the budget a principled scale instead of a magic number.
        """
        from repro.core.error_bound import error_bound

        if slack <= 0:
            raise ValueError(f"slack must be positive, got {slack}")
        eps = error_bound(graph_a, graph_b, iterations)
        total_edges = graph_a.num_edges + graph_b.num_edges
        max_delta = max(1, int(slack * eps * total_edges))
        return cls(max_edge_delta=max_delta, max_age_seconds=max_age_seconds)


class CircuitBreaker:
    """Closed → open → half-open failure gating for background rebuilds.

    * **closed** — rebuild attempts are allowed; ``failure_threshold``
      consecutive failures trip the breaker **open**.
    * **open** — attempts are refused (the last-good generation is
      pinned) until ``reset_timeout`` seconds have passed, after which
      the breaker moves to **half-open**.
    * **half-open** — exactly one probe attempt is allowed; success
      closes the breaker, failure re-opens it (and restarts the
      timeout).

    Thread-safe; ``clock`` is injectable so transition tests do not
    sleep.  ``on_transition(old_state, new_state)`` fires under no lock
    ordering guarantees beyond "after the transition is visible" — the
    lifecycle manager uses it to emit telemetry events.

    Examples
    --------
    >>> breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
    >>> breaker.record_failure(); breaker.record_failure()
    >>> breaker.state
    'open'
    >>> breaker.allow_attempt()
    False
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout < 0:
            raise ValueError(
                f"reset_timeout must be non-negative, got {reset_timeout}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (time-aware)."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success."""
        with self._lock:
            return self._consecutive_failures

    def allow_attempt(self) -> bool:
        """Whether a rebuild attempt may start now.

        In the half-open state this hands out exactly one probe: the
        first caller gets ``True``, later callers ``False`` until the
        probe reports success or failure.
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == "closed":
                return True
            if self._state == "half_open" and not self._probing:
                self._probing = True
                return True
            return False

    def seconds_until_probe(self) -> float:
        """How long until the open breaker will admit a probe (0 when
        an attempt is already allowed)."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state != "open":
                return 0.0
            assert self._opened_at is not None
            remaining = self.reset_timeout - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def record_success(self) -> None:
        """An attempt succeeded: close the breaker."""
        with self._lock:
            self._consecutive_failures = 0
            self._probing = False
            self._transition_locked("closed")

    def record_failure(self) -> None:
        """An attempt failed: count it; trip open past the threshold."""
        with self._lock:
            self._maybe_half_open_locked()
            self._consecutive_failures += 1
            self._probing = False
            if (
                self._state == "half_open"
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition_locked("open")

    # ------------------------------------------------------------------
    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == "open"
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._transition_locked("half_open")

    def _transition_locked(self, new_state: str) -> None:
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        if self._on_transition is not None:
            self._on_transition(old_state, new_state)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold})"
        )
