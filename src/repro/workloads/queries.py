"""Query-set generation.

The paper's experiments draw query sets ``Q_A`` (from ``G_A``) and ``Q_B``
(from ``G_B``) of configurable sizes (defaults 2,000 / 2,000, or 20,000 for
``Q_B`` on the large graphs).  These helpers produce seeded query sets,
either uniformly or biased toward high-degree nodes (the realistic case for
entity-resolution workloads where popular entities are queried more).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs
from repro.utils.validation import check_positive_integer

__all__ = [
    "QueryWorkload",
    "degree_biased_queries",
    "make_workload",
    "uniform_queries",
]


@dataclass(frozen=True)
class QueryWorkload:
    """A pair of query sets for one similarity-search instance."""

    queries_a: np.ndarray
    queries_b: np.ndarray

    @property
    def size(self) -> tuple[int, int]:
        """``(|Q_A|, |Q_B|)``."""
        return (self.queries_a.size, self.queries_b.size)


def uniform_queries(graph: Graph, size: int, seed: SeedLike = None) -> np.ndarray:
    """``size`` distinct node ids drawn uniformly from ``graph``."""
    size = check_positive_integer(size, "size")
    if size > graph.num_nodes:
        raise ValueError(
            f"cannot draw {size} distinct queries from {graph.num_nodes} nodes"
        )
    rng = ensure_rng(seed)
    return np.sort(rng.choice(graph.num_nodes, size=size, replace=False))


def degree_biased_queries(
    graph: Graph, size: int, seed: SeedLike = None, power: float = 1.0
) -> np.ndarray:
    """``size`` distinct node ids, selection probability ∝ ``(1+deg)^power``.

    ``power=0`` degenerates to uniform; larger powers concentrate queries
    on hubs.
    """
    size = check_positive_integer(size, "size")
    if size > graph.num_nodes:
        raise ValueError(
            f"cannot draw {size} distinct queries from {graph.num_nodes} nodes"
        )
    if power < 0:
        raise ValueError(f"power must be >= 0, got {power}")
    rng = ensure_rng(seed)
    weights = (1.0 + graph.out_degrees() + graph.in_degrees()) ** power
    probabilities = weights / weights.sum()
    return np.sort(
        rng.choice(graph.num_nodes, size=size, replace=False, p=probabilities)
    )


def make_workload(
    graph_a: Graph,
    graph_b: Graph,
    size_a: int,
    size_b: int,
    seed: SeedLike = None,
    biased: bool = False,
) -> QueryWorkload:
    """Build a :class:`QueryWorkload` with independent seeds per side.

    Sizes are clamped to the graph sizes so sweeps can over-ask safely on
    the reduced-scale profiles.
    """
    rng_a, rng_b = spawn_rngs(seed, 2)
    size_a = min(check_positive_integer(size_a, "size_a"), graph_a.num_nodes)
    size_b = min(check_positive_integer(size_b, "size_b"), graph_b.num_nodes)
    sampler = degree_biased_queries if biased else uniform_queries
    return QueryWorkload(
        queries_a=sampler(graph_a, size_a, seed=rng_a),
        queries_b=sampler(graph_b, size_b, seed=rng_b),
    )
