"""Query workload construction and parameter sweeps for the experiments."""

from repro.workloads.queries import (
    QueryWorkload,
    degree_biased_queries,
    make_workload,
    uniform_queries,
)
from repro.workloads.sweeps import geometric_sweep, linear_sweep

__all__ = [
    "QueryWorkload",
    "degree_biased_queries",
    "geometric_sweep",
    "linear_sweep",
    "make_workload",
    "uniform_queries",
]
