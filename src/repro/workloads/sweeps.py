"""Parameter-sweep helpers shared by the figure drivers."""

from __future__ import annotations

__all__ = ["geometric_sweep", "linear_sweep"]


def linear_sweep(start: int, stop: int, steps: int) -> list[int]:
    """``steps`` evenly spaced integers from ``start`` to ``stop`` inclusive.

    >>> linear_sweep(2, 10, 5)
    [2, 4, 6, 8, 10]
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if steps == 1:
        return [start]
    stride = (stop - start) / (steps - 1)
    values = [int(round(start + i * stride)) for i in range(steps)]
    # De-duplicate while preserving order (tiny ranges can collide).
    seen: set[int] = set()
    unique = []
    for value in values:
        if value not in seen:
            seen.add(value)
            unique.append(value)
    return unique


def geometric_sweep(start: int, stop: int, factor: float = 2.0) -> list[int]:
    """Geometric progression from ``start`` up to at most ``stop``.

    >>> geometric_sweep(100, 1000, 2)
    [100, 200, 400, 800]
    """
    if start < 1:
        raise ValueError(f"start must be >= 1, got {start}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor}")
    values = []
    current = float(start)
    while current <= stop:
        values.append(int(round(current)))
        current *= factor
    return values
