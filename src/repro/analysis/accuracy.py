"""Error metrics used by the §5.2.3 accuracy experiment."""

from __future__ import annotations

import numpy as np

__all__ = ["frobenius_error", "max_absolute_error", "relative_frobenius_error"]


def _check_shapes(estimate: np.ndarray, reference: np.ndarray) -> None:
    if estimate.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: estimate {estimate.shape} vs reference {reference.shape}"
        )


def frobenius_error(estimate: np.ndarray, reference: np.ndarray) -> float:
    """``||estimate - reference||_F`` — the paper's accuracy metric."""
    _check_shapes(estimate, reference)
    return float(np.linalg.norm(estimate - reference))


def relative_frobenius_error(estimate: np.ndarray, reference: np.ndarray) -> float:
    """``||estimate - reference||_F / ||reference||_F`` (NaN-safe: raises on
    a zero reference)."""
    _check_shapes(estimate, reference)
    denominator = float(np.linalg.norm(reference))
    if denominator == 0.0:
        raise ZeroDivisionError("reference matrix has zero norm")
    return float(np.linalg.norm(estimate - reference)) / denominator


def max_absolute_error(estimate: np.ndarray, reference: np.ndarray) -> float:
    """Worst-case entry error ``max |estimate - reference|``."""
    _check_shapes(estimate, reference)
    if estimate.size == 0:
        return 0.0
    return float(np.abs(estimate - reference).max())
