"""Node alignment from a cross-graph similarity matrix.

Zager & Verghese (2008, cited by the paper) use similarity scores for
*graph matching*: pick a one-to-one correspondence between the nodes of
``G_A`` and ``G_B`` maximising total similarity.  Given any similarity
block (GSim+, GSVD, RoleSim, ...), these helpers extract an alignment:

* :func:`best_alignment` — optimal assignment (Hungarian) or fast greedy.
* :func:`alignment_score` — total and mean similarity of an alignment.
* :func:`alignment_accuracy` — fraction of pairs matching a ground truth
  (for the planted-correspondence experiments in the examples/tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

__all__ = ["Alignment", "alignment_accuracy", "best_alignment"]

_METHODS = ("hungarian", "greedy")


@dataclass(frozen=True)
class Alignment:
    """A one-to-one partial matching between two node sets.

    ``pairs[i] = (a, b)`` aligns node ``a`` of the row graph to node ``b``
    of the column graph; at most ``min(n_A, n_B)`` pairs.
    """

    pairs: tuple[tuple[int, int], ...]
    total_score: float

    @property
    def size(self) -> int:
        """Number of aligned pairs."""
        return len(self.pairs)

    @property
    def mean_score(self) -> float:
        """Average similarity per aligned pair (0 for an empty alignment)."""
        if not self.pairs:
            return 0.0
        return self.total_score / len(self.pairs)

    def as_dict(self) -> dict[int, int]:
        """The alignment as a ``row node -> column node`` mapping."""
        return dict(self.pairs)


def best_alignment(similarity: np.ndarray, method: str = "hungarian") -> Alignment:
    """Extract a maximum-similarity one-to-one alignment.

    Parameters
    ----------
    similarity:
        A ``n_A x n_B`` score matrix (any similarity model's output).
    method:
        ``"hungarian"`` — optimal assignment, ``O(n^3)``;
        ``"greedy"`` — repeatedly take the best unmatched pair,
        ``O(n_A n_B log(n_A n_B))``, within a factor ~2 of optimal.

    Examples
    --------
    >>> import numpy as np
    >>> scores = np.array([[0.9, 0.1], [0.2, 0.8]])
    >>> best_alignment(scores).pairs
    ((0, 0), (1, 1))
    """
    matrix = np.asarray(similarity, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"similarity must be 2-D, got {matrix.ndim}-D")
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    if matrix.size == 0:
        return Alignment(pairs=(), total_score=0.0)
    if method == "hungarian":
        rows, cols = linear_sum_assignment(matrix, maximize=True)
        pairs = tuple(zip(map(int, rows), map(int, cols)))
    else:
        order = np.argsort(-matrix, axis=None, kind="stable")
        used_rows = np.zeros(matrix.shape[0], dtype=bool)
        used_cols = np.zeros(matrix.shape[1], dtype=bool)
        chosen: list[tuple[int, int]] = []
        limit = min(matrix.shape)
        for flat in order:
            row, col = divmod(int(flat), matrix.shape[1])
            if used_rows[row] or used_cols[col]:
                continue
            used_rows[row] = True
            used_cols[col] = True
            chosen.append((row, col))
            if len(chosen) == limit:
                break
        chosen.sort()
        pairs = tuple(chosen)
    total = float(sum(matrix[a, b] for a, b in pairs))
    return Alignment(pairs=pairs, total_score=total)


def alignment_accuracy(
    alignment: Alignment, ground_truth: dict[int, int]
) -> float:
    """Fraction of ground-truth correspondences the alignment recovered.

    ``ground_truth`` maps row nodes to their true column counterparts;
    rows absent from it are ignored.
    """
    if not ground_truth:
        raise ValueError("ground_truth must be non-empty")
    mapping = alignment.as_dict()
    hits = sum(
        1 for row, true_col in ground_truth.items() if mapping.get(row) == true_col
    )
    return hits / len(ground_truth)
