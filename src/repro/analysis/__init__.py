"""Accuracy, ranking, and spectral analysis utilities."""

from repro.analysis.accuracy import (
    frobenius_error,
    max_absolute_error,
    relative_frobenius_error,
)
from repro.analysis.matching import Alignment, alignment_accuracy, best_alignment
from repro.analysis.ranking import kendall_tau, top_k_overlap
from repro.analysis.spectral import convergence_rate, dominant_eigenvalues

__all__ = [
    "Alignment",
    "alignment_accuracy",
    "best_alignment",
    "convergence_rate",
    "dominant_eigenvalues",
    "frobenius_error",
    "kendall_tau",
    "max_absolute_error",
    "relative_frobenius_error",
    "top_k_overlap",
]
