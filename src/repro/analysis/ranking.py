"""Ranking-quality metrics.

The paper evaluates matrix-level error; downstream applications (synonym
extraction, community matching) consume *rankings* of candidate pairs, so
the examples and ablations also report top-k overlap and Kendall's tau
between the rankings induced by two similarity matrices.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kendall_tau", "top_k_overlap"]


def top_k_overlap(scores_a: np.ndarray, scores_b: np.ndarray, k: int) -> float:
    """Fraction of shared entries among the top-``k`` of two score matrices.

    Both matrices are flattened; ties are broken by index for determinism.

    >>> import numpy as np
    >>> top_k_overlap(np.array([3., 2., 1.]), np.array([3., 2., 0.]), 2)
    1.0
    """
    flat_a = np.asarray(scores_a, dtype=np.float64).ravel()
    flat_b = np.asarray(scores_b, dtype=np.float64).ravel()
    if flat_a.size != flat_b.size:
        raise ValueError("score arrays must have the same number of entries")
    if not 1 <= k <= flat_a.size:
        raise ValueError(f"k must be in [1, {flat_a.size}], got {k}")
    top_a = set(np.argsort(-flat_a, kind="stable")[:k].tolist())
    top_b = set(np.argsort(-flat_b, kind="stable")[:k].tolist())
    return len(top_a & top_b) / float(k)


def kendall_tau(scores_a: np.ndarray, scores_b: np.ndarray) -> float:
    """Kendall rank correlation between two flattened score matrices.

    Returns a value in [-1, 1]; 1 means identical rankings.  Uses the
    O(n log n) merge-sort inversion count (tau-a; assumes few exact ties,
    which holds for similarity scores of real graphs).
    """
    flat_a = np.asarray(scores_a, dtype=np.float64).ravel()
    flat_b = np.asarray(scores_b, dtype=np.float64).ravel()
    if flat_a.size != flat_b.size:
        raise ValueError("score arrays must have the same number of entries")
    n = flat_a.size
    if n < 2:
        raise ValueError("need at least two entries to rank")
    # Sort by A, then count inversions in the corresponding B order.
    order = np.argsort(flat_a, kind="stable")
    b_in_a_order = flat_b[order]
    inversions = _count_inversions(b_in_a_order.tolist())
    total_pairs = n * (n - 1) // 2
    return 1.0 - 2.0 * inversions / total_pairs


def _count_inversions(values: list[float]) -> int:
    """Merge-sort inversion count (pairs out of order)."""
    if len(values) < 2:
        return 0
    mid = len(values) // 2
    left = values[:mid]
    right = values[mid:]
    count = _count_inversions(left) + _count_inversions(right)
    merged = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
            count += len(left) - i
    merged.extend(left[i:])
    merged.extend(right[j:])
    values[:] = merged
    return count
