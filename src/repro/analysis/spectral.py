"""Spectral diagnostics built on the Theorem 4.2 machinery."""

from __future__ import annotations

from repro.core.error_bound import spectral_gap
from repro.graphs.graph import Graph

__all__ = ["convergence_rate", "dominant_eigenvalues"]


def dominant_eigenvalues(graph_a: Graph, graph_b: Graph) -> tuple[float, float]:
    """``(|λ1|, |λ2|)`` of the iteration matrix ``M`` for a graph pair."""
    return spectral_gap(graph_a, graph_b)


def convergence_rate(graph_a: Graph, graph_b: Graph) -> float:
    """The per-iteration contraction ratio ``|λ2| / |λ1|`` of the GSim
    power iteration (smaller = faster convergence; Theorem 4.2).

    Returns 0.0 when the iteration converges in one step (rank-1 M) and
    raises when the dominant eigenvalue vanishes (empty graphs).
    """
    lambda1, lambda2 = spectral_gap(graph_a, graph_b)
    if lambda1 == 0.0:
        raise ValueError(
            "dominant eigenvalue is zero; GSim is undefined on edgeless inputs"
        )
    return lambda2 / lambda1
