"""Shard descriptors for the process-pool backend.

Threads share memory; processes do not — and pickling a multi-GB CSR
slice per shard would erase any win from dodging the GIL.  The process
backend therefore never ships arrays.  It ships *descriptors*:

* :class:`ArrayRef` — (path, dtype, shape) of an on-disk array.  Workers
  open it with ``np.load(..., mmap_mode=...)`` (``.npy``) or a raw
  ``np.memmap`` and the kernel reads straight out of the page cache the
  parent already warmed — zero copies cross the process boundary.
* :class:`CsrRef` — three ``ArrayRef``s (indptr / indices / data) plus a
  shape, reassembled worker-side into a ``scipy.sparse.csr_matrix`` whose
  buffers are the mapped files.

A task is then ``(refs, row_range, column_offset)`` — a few hundred bytes
regardless of shard size.  Results travel the same way: the parent
creates an output ``.npy`` with :func:`numpy.lib.format.open_memmap`,
workers write their row/column slice through their own shared mapping
(``MAP_SHARED`` makes the pages visible to the parent immediately), and
only small candidate arrays (top-k survivors) come back through pickle.

Worker-side, :func:`load_ref` keeps a small LRU of open mappings keyed by
``(path, inode, size, mtime)`` so a persistent pool re-maps each operand
once per generation, not once per task.

Bit-identity: a float64 array round-trips through ``.npy`` byte-exactly,
shard splits are computed once in the parent, and every kernel is the
same code the thread backend runs — so process results are bit-identical
to thread and serial results.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import scipy.sparse as sp

__all__ = [
    "ArrayRef",
    "CsrRef",
    "create_output",
    "load_csr_ref",
    "load_ref",
    "spill_array",
    "spill_csr",
]


@dataclass(frozen=True)
class ArrayRef:
    """Descriptor of one on-disk array.

    ``dtype``/``shape`` of ``None`` mean the file is ``.npy`` format and
    self-describing; otherwise the file is a raw little-endian buffer
    (the layout :mod:`repro.graphs.mmap_csr` artifacts use) opened with
    ``np.memmap`` directly.
    """

    path: str
    dtype: str | None = None
    shape: tuple[int, ...] | None = None
    writable: bool = False

    def open(self) -> np.ndarray:
        """Map the array (no caching; see :func:`load_ref` for the cache)."""
        mode = "r+" if self.writable else "r"
        if self.dtype is None:
            return np.load(self.path, mmap_mode=mode)
        return np.memmap(
            self.path, dtype=np.dtype(self.dtype), mode=mode, shape=self.shape
        )


@dataclass(frozen=True)
class CsrRef:
    """Descriptor of an on-disk CSR matrix (indptr / indices / data)."""

    indptr: ArrayRef
    indices: ArrayRef
    data: ArrayRef
    shape: tuple[int, int]


def _signature(path: str) -> tuple[str, int, int, int]:
    stat = os.stat(path)
    return (path, stat.st_ino, stat.st_size, stat.st_mtime_ns)


# Per-process mapping cache.  Bounded: scratch files are short-lived and
# an unbounded cache would pin every generation's pages via open fds.
_CACHE_CAPACITY = 16
_mapping_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()


def load_ref(ref: ArrayRef) -> np.ndarray:
    """Open ``ref`` through the per-process LRU mapping cache.

    The cache key includes the file's inode/size/mtime, so a scratch path
    overwritten between task generations is re-mapped instead of served
    stale.  Never cache-shares writable mappings with read-only requests.
    """
    key = (_signature(ref.path), ref.dtype, ref.shape, ref.writable)
    cached = _mapping_cache.get(key)
    if cached is not None:
        _mapping_cache.move_to_end(key)
        return cached
    array = ref.open()
    _mapping_cache[key] = array
    while len(_mapping_cache) > _CACHE_CAPACITY:
        _mapping_cache.popitem(last=False)
    return array


def load_csr_ref(ref: CsrRef) -> sp.csr_matrix:
    """Reassemble a CSR view over the mapped component arrays."""
    return csr_from_arrays(
        load_ref(ref.indptr), load_ref(ref.indices), load_ref(ref.data), ref.shape
    )


def csr_from_arrays(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    shape: tuple[int, int],
) -> sp.csr_matrix:
    """A ``csr_matrix`` *viewing* the given buffers — scipy's constructor
    would copy (and try to canonicalise, mutating read-only mappings), so
    the attributes are assigned directly and the canonical-form flags set
    by contract: every artifact writer stores sorted, deduplicated rows.
    """
    matrix = sp.csr_matrix(shape, dtype=data.dtype)
    matrix.data = np.asarray(data)
    matrix.indices = np.asarray(indices)
    matrix.indptr = np.asarray(indptr)
    matrix.has_sorted_indices = True
    matrix.has_canonical_format = True
    return matrix


# ----------------------------------------------------------------------
# Parent-side spill helpers
# ----------------------------------------------------------------------
def spill_array(array: np.ndarray, path: str | Path) -> ArrayRef:
    """Write ``array`` to ``path`` as ``.npy`` and return its descriptor.

    float64/float32 values round-trip byte-exactly, so a kernel reading
    the spilled copy is bit-identical to one reading the original.
    """
    path = Path(path)
    np.save(path, np.ascontiguousarray(array))
    return ArrayRef(path=str(path))


def spill_csr(matrix: sp.csr_matrix, directory: str | Path, name: str) -> CsrRef:
    """Spill one CSR operand into ``directory`` as three ``.npy`` files."""
    directory = Path(directory)
    return CsrRef(
        indptr=spill_array(matrix.indptr, directory / f"{name}.indptr.npy"),
        indices=spill_array(matrix.indices, directory / f"{name}.indices.npy"),
        data=spill_array(matrix.data, directory / f"{name}.data.npy"),
        shape=(int(matrix.shape[0]), int(matrix.shape[1])),
    )


def create_output(
    path: str | Path, shape: tuple[int, ...], dtype: np.dtype | str
) -> tuple[np.ndarray, ArrayRef]:
    """Create a shared writable ``.npy`` output.

    Returns the parent's own mapping (mode ``r+`` — reads see worker
    writes through the shared page cache) and the writable descriptor to
    embed in shard tasks.
    """
    path = Path(path)
    mapped = np.lib.format.open_memmap(
        path, mode="w+", dtype=np.dtype(dtype), shape=shape
    )
    return mapped, ArrayRef(path=str(path), writable=True)


# ----------------------------------------------------------------------
# Generic worker kernels (module-level: picklable under fork and spawn)
# ----------------------------------------------------------------------
def spmm_shard_task(
    task: tuple[CsrRef, int, int, ArrayRef, ArrayRef, int, int],
) -> None:
    """``out[start:stop, offset:offset+width] = M[start:stop] @ dense``.

    The CSR row slice is built worker-side from the mapped arrays (the
    slice copy is the same one the thread backend's shard cache makes,
    just in the worker's address space), so per-row accumulation order —
    and therefore every output bit — matches the serial product.
    """
    csr_ref, start, stop, dense_ref, out_ref, offset, width = task
    matrix = load_csr_ref(csr_ref)
    dense = load_ref(dense_ref)
    out = load_ref(out_ref)
    out[start:stop, offset : offset + width] = matrix[start:stop] @ dense


def spmm_transposed_shard_task(
    task: tuple[CsrRef, int, int, ArrayRef, ArrayRef],
) -> None:
    """``out[:, start:stop] = (M[start:stop] @ dense).T`` — stage 1 of the
    dense-regime update, writing a column slice of the shared output."""
    csr_ref, start, stop, dense_ref, out_ref = task
    matrix = load_csr_ref(csr_ref)
    dense = load_ref(dense_ref)
    out = load_ref(out_ref)
    out[:, start:stop] = (matrix[start:stop] @ dense).T


def spmm_pair_sum_task(
    task: tuple[CsrRef, CsrRef, int, int, ArrayRef, ArrayRef, ArrayRef],
) -> None:
    """``out[start:stop] = A[start:stop] @ p + A_t[start:stop] @ q`` —
    stage 2 of the dense-regime update."""
    a_ref, a_t_ref, start, stop, p_ref, q_ref, out_ref = task
    a = load_csr_ref(a_ref)
    a_t = load_csr_ref(a_t_ref)
    p = load_ref(p_ref)
    q = load_ref(q_ref)
    out = load_ref(out_ref)
    out[start:stop] = a[start:stop] @ p + a_t[start:stop] @ q
