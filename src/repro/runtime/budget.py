"""Deadlines and memory budgets — policies and their armed/live forms.

Two layers per resource:

* an immutable *policy* (:class:`Deadline`, :class:`MemoryBudget`) that an
  experiment config or serving tier declares once, offering *predictive*
  checks against cost-model estimates; and
* a mutable *enforcement object* created per run — :meth:`Deadline.arm`
  yields a :class:`WallClockDeadline` anchored at the current instant,
  :meth:`MemoryBudget.ledger` yields a :class:`MemoryLedger` doing live
  charge/release accounting.

Compute loops never see the policies: an
:class:`repro.runtime.context.ExecutionContext` carries the armed forms
and the loops poll it at checkpoints.  Predictive gating (the experiment
harness's OOM/TIMEOUT substitution) and in-loop enforcement therefore
share this one implementation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.runtime.errors import DeadlineExceeded, MemoryBudgetExceeded
from repro.utils.memory import format_bytes

__all__ = [
    "Deadline",
    "MemoryBudget",
    "MemoryLedger",
    "WallClockDeadline",
]


class WallClockDeadline:
    """A cooperative deadline anchored at construction time.

    Python cannot preempt a running computation, so long-running loops
    call :meth:`check` at natural checkpoints — between iterations, pairs,
    or row blocks.  Exceeding the deadline raises
    :class:`repro.runtime.errors.DeadlineExceeded`.

    Examples
    --------
    >>> deadline = WallClockDeadline(60.0)
    >>> deadline.check("warm-up")  # no-op while within budget
    >>> deadline.expired
    False
    """

    __slots__ = ("limit_seconds", "_start")

    def __init__(self, limit_seconds: float) -> None:
        if limit_seconds <= 0:
            raise ValueError(f"limit_seconds must be positive, got {limit_seconds}")
        self.limit_seconds = float(limit_seconds)
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return time.perf_counter() - self._start

    @property
    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.limit_seconds - self.elapsed

    @property
    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self.remaining < 0.0

    def check(self, what: str = "computation") -> None:
        """Raise :class:`DeadlineExceeded` once the budget is exhausted."""
        if self.expired:
            raise DeadlineExceeded(
                f"{what} exceeded its {self.limit_seconds:.1f}s wall-clock budget"
            )


class MemoryLedger:
    """Live byte accounting against a hard ceiling.

    Compute loops :meth:`charge` a working set *before* allocating it and
    :meth:`release` it when done; a charge that would push the held total
    past ``limit_bytes`` raises
    :class:`repro.runtime.errors.MemoryBudgetExceeded` without the
    allocation ever happening.  All methods are thread-safe.

    Examples
    --------
    >>> ledger = MemoryLedger(1024)
    >>> ledger.charge(512, "factors")
    >>> ledger.held_bytes, ledger.peak_bytes
    (512, 512)
    >>> ledger.release(512)
    >>> ledger.held_bytes
    0
    """

    __slots__ = ("limit_bytes", "_lock", "_held", "_peak")

    def __init__(self, limit_bytes: int) -> None:
        limit_bytes = int(limit_bytes)
        if limit_bytes <= 0:
            raise ValueError(f"limit_bytes must be positive, got {limit_bytes}")
        self.limit_bytes = limit_bytes
        self._lock = threading.Lock()
        self._held = 0
        self._peak = 0

    @property
    def held_bytes(self) -> int:
        """Bytes currently charged."""
        with self._lock:
            return self._held

    @property
    def peak_bytes(self) -> int:
        """Highest held total observed so far."""
        with self._lock:
            return self._peak

    def allows(self, num_bytes: float) -> bool:
        """Whether charging ``num_bytes`` more would stay within budget."""
        with self._lock:
            return self._held + int(num_bytes) <= self.limit_bytes

    def charge(self, num_bytes: float, what: str = "allocation") -> None:
        """Account ``num_bytes`` held; raise when the ceiling is pierced."""
        amount = int(num_bytes)
        if amount < 0:
            raise ValueError(f"cannot charge a negative amount ({amount})")
        with self._lock:
            if self._held + amount > self.limit_bytes:
                raise MemoryBudgetExceeded(
                    f"{what}: holding {format_bytes(self._held)} + "
                    f"{format_bytes(amount)} exceeds budget "
                    f"{format_bytes(self.limit_bytes)}"
                )
            self._held += amount
            if self._held > self._peak:
                self._peak = self._held

    def release(self, num_bytes: float) -> None:
        """Return ``num_bytes`` to the budget (clamped at zero held)."""
        amount = int(num_bytes)
        if amount < 0:
            raise ValueError(f"cannot release a negative amount ({amount})")
        with self._lock:
            self._held = max(0, self._held - amount)


@dataclass(frozen=True)
class MemoryBudget:
    """A byte ceiling for one run or experiment cell.

    The default of 256 MiB is calibrated so that, on the ``small`` scale
    profile, the dense baselines survive the scaled HP and EE datasets but
    crash on WT/UK/IT — the same survival pattern as the paper's Figure 6
    at full scale (where the wall sits between EE's 21 GB and WT's 192 GB
    dense similarity matrix).
    """

    limit_bytes: int = 256 * 1024 * 1024

    def check(self, predicted_bytes: float, what: str) -> None:
        """Raise :class:`MemoryBudgetExceeded` when over budget."""
        if predicted_bytes > self.limit_bytes:
            raise MemoryBudgetExceeded(
                f"{what}: predicted {format_bytes(predicted_bytes)} exceeds "
                f"budget {format_bytes(self.limit_bytes)}"
            )

    def allows(self, predicted_bytes: float) -> bool:
        """Non-raising variant of :meth:`check`."""
        return predicted_bytes <= self.limit_bytes

    def ledger(self) -> MemoryLedger:
        """Open a live :class:`MemoryLedger` against this ceiling."""
        return MemoryLedger(self.limit_bytes)


@dataclass(frozen=True)
class Deadline:
    """A wall-clock ceiling for one run or experiment cell.

    ``limit_seconds`` plays the role of the paper's "one day"; the default
    of 20 s keeps full figure regeneration to minutes on this hardware
    while preserving which algorithms do and do not finish.

    Enforcement is two-stage.  The *predictive* stage
    (:meth:`check_predicted`) vetoes a run outright only when the cost
    model predicts at least ``predictive_factor`` times the budget —
    cost models are worst-case, so borderline cells still get attempted.
    Attempted cells run under a cooperative :class:`WallClockDeadline`
    armed via :meth:`arm`, which stops them at the real limit.
    """

    limit_seconds: float = 20.0
    predictive_factor: float = 30.0

    def check_predicted(self, predicted_seconds: float, what: str) -> None:
        """Raise :class:`DeadlineExceeded` for clearly hopeless cells."""
        ceiling = self.limit_seconds * self.predictive_factor
        if predicted_seconds > ceiling:
            raise DeadlineExceeded(
                f"{what}: predicted {predicted_seconds:.1f}s exceeds "
                f"{ceiling:.0f}s ({self.predictive_factor:.0f}x the "
                f"{self.limit_seconds:.1f}s budget)"
            )

    def arm(self) -> WallClockDeadline:
        """Start a cooperative wall-clock deadline for one run."""
        return WallClockDeadline(self.limit_seconds)

    def allows(self, predicted_seconds: float) -> bool:
        """Whether the predictive stage would let this cell run."""
        return predicted_seconds <= self.limit_seconds * self.predictive_factor
