"""Operational telemetry: exporters, resource sampling, slow queries, SLOs.

:mod:`repro.runtime.metrics` and :mod:`repro.runtime.trace` record what
one process observed; this module makes those observations *outlive* the
process and *mean something operationally*:

* :class:`MetricsExporter` renders any :meth:`Metrics.snapshot` as
  Prometheus text-exposition format (counters, gauges, timers, and the
  log-spaced histograms as cumulative ``_bucket{le=...}`` series) and as
  an append-only JSONL time-series one snapshot per line;
* :class:`PeriodicFlusher` is a bounded, daemonized, exception-safe
  background thread that snapshots and exports every ``interval_seconds``
  during long runs (sweeps, index builds, top-k scans), so a crash or
  kill -9 still leaves a dashboard-readable trail on disk;
* :class:`ResourceMonitor` samples process-level signals — RSS and peak
  RSS, CPU time, GC collections, live thread count, and the
  :class:`repro.runtime.budget.MemoryLedger` high-water — into gauges on
  the same cadence;
* :class:`SlowQueryLog` is a bounded ring of structured records for every
  retrieval call above a latency threshold (query id, operation,
  duration, result width, worker count, trace span id), exported
  alongside the metrics;
* :class:`SLOTracker` evaluates declared objectives (``"p99(
  index.query_seconds) < 50ms"``, ``"error_rate(index.query) < 0.1%"``)
  against histogram/counter snapshots and reports per-objective budget
  burn;
* :class:`TelemetrySession` bundles all of the above behind one
  ``start()``/``close()`` pair — what the CLI's ``--telemetry-dir``
  flag opens.

Everything here is read-only with respect to the computation: attaching
a session never changes results (the acceptance tests assert bit
identity), and the per-call overhead is one threshold comparison plus
the histogram observation the retrieval layer already paid for.
"""

from __future__ import annotations

import gc
import json
import math
import os
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.runtime.budget import MemoryLedger
from repro.runtime.metrics import Metrics, histogram_bucket_bounds

__all__ = [
    "MetricsExporter",
    "PeriodicFlusher",
    "ResourceMonitor",
    "SLObjective",
    "SLOReport",
    "SLOTracker",
    "SlowQuery",
    "SlowQueryLog",
    "TelemetrySession",
    "render_slo_report",
]


# ----------------------------------------------------------------------
# Prometheus / JSONL exporter
# ----------------------------------------------------------------------
_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LEADING = re.compile(r"^[^a-zA-Z_:]")


def _prom_name(*parts: str) -> str:
    """A valid Prometheus metric name from dot-separated fragments."""
    joined = "_".join(part for part in parts if part)
    name = _INVALID_METRIC_CHARS.sub("_", joined)
    if _INVALID_LEADING.match(name):
        name = "_" + name
    return name


def _prom_number(value: float) -> str:
    """Prometheus-flavoured float rendering (``+Inf``/``-Inf``/``NaN``)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsExporter:
    """Render :meth:`Metrics.snapshot` trees for machines, not post-mortems.

    Two formats:

    * :meth:`prometheus_text` — the text exposition format any Prometheus
      scraper (or ``promtool check metrics``) accepts.  Counters export as
      ``<ns>_<name>_total``, timers as a ``_seconds_total`` /
      ``_calls_total`` pair, gauges as gauges, series as an observation
      count plus last value, and histograms as cumulative
      ``_bucket{le="..."}`` series (the fixed log-spaced layout of
      :mod:`repro.runtime.metrics`) with ``_sum`` and ``_count``;
    * :meth:`append_jsonl` — one ``{"ts": ..., **snapshot}`` object per
      line, append-only, so repeated flushes build a replayable
      time-series a notebook can ``json.loads`` line by line.

    Examples
    --------
    >>> metrics = Metrics()
    >>> metrics.increment("index.queries", 3)
    >>> text = MetricsExporter().prometheus_text(metrics.snapshot())
    >>> "repro_index_queries_total 3" in text
    True
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = _prom_name(namespace) if namespace else ""

    # -- rendering -----------------------------------------------------
    def prometheus_text(self, snapshot: dict[str, Any]) -> str:
        lines: list[str] = []

        def emit(name: str, kind: str, value: float, help_text: str,
                 labels: str = "") -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name}{labels} {_prom_number(float(value))}")

        for raw, value in snapshot.get("counters", {}).items():
            emit(
                _prom_name(self.namespace, raw, "total"), "counter",
                value, f"counter {raw}",
            )
        for raw, entry in snapshot.get("timers", {}).items():
            # Avoid "..._seconds_seconds_total" for timers already named
            # with a _seconds suffix.
            base = raw[:-8] if raw.endswith("_seconds") else raw
            emit(
                _prom_name(self.namespace, base, "seconds_total"), "counter",
                entry["seconds"], f"accumulated seconds of timer {raw}",
            )
            emit(
                _prom_name(self.namespace, base, "calls_total"), "counter",
                entry["calls"], f"call count of timer {raw}",
            )
        for raw, value in snapshot.get("gauges", {}).items():
            emit(
                _prom_name(self.namespace, raw), "gauge",
                value, f"gauge {raw}",
            )
        for raw, values in snapshot.get("series", {}).items():
            emit(
                _prom_name(self.namespace, raw, "observations_total"),
                "counter", len(values), f"observation count of series {raw}",
            )
            if values:
                emit(
                    _prom_name(self.namespace, raw, "last"), "gauge",
                    values[-1], f"latest observation of series {raw}",
                )
        for raw, hist in snapshot.get("histograms", {}).items():
            name = _prom_name(self.namespace, raw)
            lines.append(f"# HELP {name} histogram {raw}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            buckets = {int(k): int(v) for k, v in hist.get("buckets", {}).items()}
            for index in sorted(buckets):
                cumulative += buckets[index]
                upper = histogram_bucket_bounds(index)[1]
                le = "+Inf" if math.isinf(upper) else _prom_number(upper)
                lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
            count = int(hist.get("count", 0))
            lines.append(f'{name}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{name}_sum {_prom_number(float(hist.get('sum', 0.0)))}")
            lines.append(f"{name}_count {count}")
        return "\n".join(lines) + "\n"

    # -- writing -------------------------------------------------------
    def write_prometheus(
        self, snapshot: dict[str, Any], path: str | os.PathLike
    ) -> None:
        """Write :meth:`prometheus_text` via a temp file + ``os.replace``,
        so a scraper never reads a half-written exposition."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(self.prometheus_text(snapshot), encoding="utf-8")
        os.replace(tmp, path)

    def append_jsonl(
        self,
        snapshot: dict[str, Any],
        path: str | os.PathLike,
        timestamp: float | None = None,
    ) -> None:
        """Append one ``{"ts": ..., **snapshot}`` line to ``path``."""
        record = {"ts": time.time() if timestamp is None else float(timestamp)}
        record.update(snapshot)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")


# ----------------------------------------------------------------------
# Resource monitor
# ----------------------------------------------------------------------
def _proc_status_kib(fields: Sequence[str]) -> dict[str, int]:
    """``{field: KiB}`` parsed from ``/proc/self/status`` (empty off-Linux)."""
    wanted = set(fields)
    found: dict[str, int] = {}
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                key, _, rest = line.partition(":")
                if key in wanted:
                    found[key] = int(rest.split()[0])
    except OSError:
        pass
    return found


class ResourceMonitor:
    """Sample process-level signals into a :class:`Metrics` sink.

    Each :meth:`sample` sets the ``process.*`` gauges (RSS, peak RSS, CPU
    seconds, GC collections, thread count) and — when a
    :class:`MemoryLedger` is attached — the ``memory.ledger_*`` gauges,
    so the flusher exports resource truth next to the compute metrics.
    RSS comes from ``/proc/self/status`` (VmRSS/VmHWM) with a
    ``resource.getrusage`` fallback, so the monitor degrades gracefully
    off Linux instead of raising.
    """

    def __init__(
        self, metrics: Metrics, ledger: MemoryLedger | None = None
    ) -> None:
        self.metrics = metrics
        self.ledger = ledger
        self.samples = 0

    def sample(self) -> dict[str, float]:
        """Take one sample; returns the gauge values it recorded."""
        values: dict[str, float] = {}
        status = _proc_status_kib(("VmRSS", "VmHWM", "Threads"))
        if "VmRSS" in status:
            values["process.rss_bytes"] = status["VmRSS"] * 1024.0
        if "VmHWM" in status:
            values["process.peak_rss_bytes"] = status["VmHWM"] * 1024.0
        if not values:  # pragma: no cover - non-Linux fallback
            try:
                import resource

                usage = resource.getrusage(resource.RUSAGE_SELF)
                # ru_maxrss is KiB on Linux, bytes on macOS; both monotone.
                values["process.peak_rss_bytes"] = float(usage.ru_maxrss) * 1024.0
            except Exception:
                pass
        times = os.times()
        values["process.cpu_seconds"] = float(times.user + times.system)
        values["process.gc_collections"] = float(
            sum(generation["collections"] for generation in gc.get_stats())
        )
        values["process.threads"] = float(threading.active_count())
        if self.ledger is not None:
            values["memory.ledger_held_bytes"] = float(self.ledger.held_bytes)
            values["memory.ledger_peak_bytes"] = float(self.ledger.peak_bytes)
        for name, value in values.items():
            if name.endswith("peak_rss_bytes") or name.endswith("peak_bytes"):
                self.metrics.record_max(name, value)
            else:
                self.metrics.set_gauge(name, value)
        self.samples += 1
        self.metrics.set_gauge("telemetry.resource_samples", float(self.samples))
        return values


# ----------------------------------------------------------------------
# Slow-query log
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SlowQuery:
    """One retrieval call that crossed the latency threshold."""

    query_id: int
    operation: str
    duration_seconds: float
    timestamp: float
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "query_id": self.query_id,
            "operation": self.operation,
            "duration_seconds": self.duration_seconds,
            "timestamp": self.timestamp,
            **self.attributes,
        }


class SlowQueryLog:
    """A thread-safe bounded ring of :class:`SlowQuery` records.

    Retrieval entry points call :meth:`maybe_record` with every call's
    duration; only calls at or above ``threshold_seconds`` are kept (the
    fast path is one float comparison).  The ring holds the most recent
    ``capacity`` records — a log attached to a long-lived serving context
    degrades to "most recent window", never to unbounded growth.
    ``total_recorded`` keeps counting even as old records fall out.

    Examples
    --------
    >>> log = SlowQueryLog(threshold_seconds=0.1, capacity=2)
    >>> log.maybe_record("index.query", 0.05)   # fast: dropped
    False
    >>> log.maybe_record("index.query", 0.25, k=10)
    True
    >>> log.records()[0].operation
    'index.query'
    """

    def __init__(
        self, threshold_seconds: float = 0.1, capacity: int = 1024
    ) -> None:
        if threshold_seconds < 0:
            raise ValueError(
                f"threshold_seconds must be >= 0, got {threshold_seconds}"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold_seconds = float(threshold_seconds)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring: deque[SlowQuery] = deque(maxlen=self.capacity)
        self._next_id = 1
        self.total_recorded = 0

    def maybe_record(
        self, operation: str, duration_seconds: float, **attributes: Any
    ) -> bool:
        """Record the call if it is slow; returns whether it was kept."""
        if duration_seconds < self.threshold_seconds:
            return False
        with self._lock:
            query_id = self._next_id
            self._next_id += 1
            self._ring.append(
                SlowQuery(
                    query_id=query_id,
                    operation=operation,
                    duration_seconds=float(duration_seconds),
                    timestamp=time.time(),
                    attributes=dict(attributes),
                )
            )
            self.total_recorded += 1
        return True

    def records(self) -> list[SlowQuery]:
        """The retained records, oldest first (a copy)."""
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready summary: threshold, totals, and the retained ring."""
        with self._lock:
            return {
                "threshold_seconds": self.threshold_seconds,
                "capacity": self.capacity,
                "total_recorded": self.total_recorded,
                "records": [record.to_dict() for record in self._ring],
            }

    def write_jsonl(self, path: str | os.PathLike) -> None:
        """Write the retained ring, one record per line (full rewrite:
        the ring is bounded, so the file is too)."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in self.records():
                handle.write(json.dumps(record.to_dict(), sort_keys=True))
                handle.write("\n")
        os.replace(tmp, path)


# ----------------------------------------------------------------------
# SLO tracking
# ----------------------------------------------------------------------
_SLO_PATTERN = re.compile(
    r"^\s*(?P<fn>p50|p90|p99|mean|max|count|error_rate|rate)\s*"
    r"\(\s*(?P<target>[^)]+?)\s*\)\s*"
    r"(?P<op><=|<)\s*"
    r"(?P<value>[-+0-9.eE]+)\s*(?P<unit>ms|us|s|%)?\s*$"
)

_UNIT_SCALE = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "%": 1e-2, None: 1.0}


@dataclass(frozen=True)
class SLObjective:
    """One declared objective over a metrics snapshot.

    Built from a compact declaration string::

        p99(index.query_seconds) < 50ms       # histogram percentile
        mean(index.query_seconds) <= 0.01     # histogram mean (sum/count)
        error_rate(index.query) < 0.1%        # counters <t>.errors/<t>.requests
        rate(sweep.quarantined/sweep.cells) < 0.05

    ``ms``/``us`` suffixes scale to seconds, ``%`` to a ratio.
    """

    fn: str
    target: str
    threshold: float
    inclusive: bool
    declaration: str

    @classmethod
    def parse(cls, declaration: str) -> "SLObjective":
        match = _SLO_PATTERN.match(declaration)
        if match is None:
            raise ValueError(
                f"cannot parse SLO {declaration!r}; expected e.g. "
                "'p99(index.query_seconds) < 50ms' or "
                "'error_rate(index.query) < 0.1%'"
            )
        threshold = float(match["value"]) * _UNIT_SCALE[match["unit"]]
        return cls(
            fn=match["fn"],
            target=match["target"],
            threshold=threshold,
            inclusive=match["op"] == "<=",
            declaration=declaration.strip(),
        )

    def observe(self, snapshot: dict[str, Any]) -> float:
        """The objective's observed value in ``snapshot``."""
        if self.fn in ("p50", "p90", "p99", "max", "count", "mean"):
            hist = snapshot.get("histograms", {}).get(self.target)
            if hist is None or not hist.get("count"):
                return 0.0
            if self.fn == "mean":
                return float(hist["sum"]) / float(hist["count"])
            return float(hist[self.fn])
        counters = snapshot.get("counters", {})
        if self.fn == "error_rate":
            numerator = float(counters.get(f"{self.target}.errors", 0))
            denominator = float(counters.get(f"{self.target}.requests", 0))
        else:  # rate(a/b)
            num_name, slash, den_name = self.target.partition("/")
            if not slash:
                raise ValueError(
                    f"rate() target must be 'numerator/denominator', "
                    f"got {self.target!r}"
                )
            numerator = float(counters.get(num_name.strip(), 0))
            denominator = float(counters.get(den_name.strip(), 0))
        return numerator / denominator if denominator else 0.0


@dataclass(frozen=True)
class SLOReport:
    """One objective's verdict against one snapshot.

    ``budget_burn`` is observed/threshold: 1.0 means the budget is
    exactly spent, above 1.0 the objective is (or is about to be)
    violated — the number a burn-rate alert pages on.
    """

    objective: SLObjective
    observed: float
    ok: bool
    budget_burn: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "slo": self.objective.declaration,
            "observed": self.observed,
            "threshold": self.objective.threshold,
            "ok": self.ok,
            "budget_burn": self.budget_burn,
        }


class SLOTracker:
    """Evaluate declared objectives against metrics snapshots.

    Examples
    --------
    >>> metrics = Metrics()
    >>> for _ in range(100):
    ...     metrics.observe_histogram("index.query_seconds", 0.001)
    >>> tracker = SLOTracker(["p99(index.query_seconds) < 50ms"])
    >>> tracker.evaluate(metrics.snapshot())[0].ok
    True
    """

    def __init__(self, objectives: Iterable[SLObjective | str] = ()) -> None:
        self.objectives: list[SLObjective] = [
            obj if isinstance(obj, SLObjective) else SLObjective.parse(obj)
            for obj in objectives
        ]

    def declare(self, declaration: str) -> SLObjective:
        """Parse and add one objective; returns it."""
        objective = SLObjective.parse(declaration)
        self.objectives.append(objective)
        return objective

    def evaluate(self, snapshot: dict[str, Any]) -> list[SLOReport]:
        """One :class:`SLOReport` per objective, in declaration order."""
        reports = []
        for objective in self.objectives:
            observed = objective.observe(snapshot)
            if objective.inclusive:
                ok = observed <= objective.threshold
            else:
                ok = observed < objective.threshold
            burn = (
                observed / objective.threshold
                if objective.threshold > 0
                else (0.0 if observed == 0 else math.inf)
            )
            reports.append(
                SLOReport(
                    objective=objective, observed=observed, ok=ok,
                    budget_burn=burn,
                )
            )
        return reports

    def violated(self, snapshot: dict[str, Any]) -> list[SLOReport]:
        """Only the failing reports (empty when all objectives hold)."""
        return [report for report in self.evaluate(snapshot) if not report.ok]


def render_slo_report(reports: Sequence[SLOReport]) -> str:
    """A fixed-width human-readable verdict table."""
    if not reports:
        return "no SLOs declared"
    width = max(len(r.objective.declaration) for r in reports)
    lines = []
    for report in reports:
        verdict = "ok" if report.ok else "VIOLATED"
        lines.append(
            f"{report.objective.declaration:<{width}}  "
            f"observed={report.observed:.6g}  "
            f"burn={report.budget_burn:.2f}  {verdict}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Periodic flusher
# ----------------------------------------------------------------------
class PeriodicFlusher:
    """A daemon thread exporting metrics snapshots every N seconds.

    Parameters
    ----------
    source:
        A :class:`Metrics` instance or a zero-argument callable returning
        a snapshot dict (e.g. ``context.snapshot`` to fold live budget
        gauges in).
    directory:
        Output directory; each flush rewrites ``metrics.prom``
        (atomically) and appends one line to ``metrics.jsonl``.
    interval_seconds:
        Flush cadence.  The wait uses an event, so :meth:`stop` returns
        promptly instead of sleeping out the interval.
    resource_monitor, slow_query_log:
        Optional companions sampled/exported on the same cadence.
    max_flushes:
        Hard bound on automatic flushes (a runaway-cadence backstop; the
        default of one million at the default cadence is weeks).

    The flush body is exception-safe: an export failure (disk full,
    directory removed) is counted in :attr:`flush_errors` and the thread
    keeps running — telemetry must never take down the computation it
    observes.  The thread is daemonized so a hung flush cannot block
    interpreter exit.
    """

    def __init__(
        self,
        source: Metrics | Callable[[], dict[str, Any]],
        directory: str | os.PathLike,
        interval_seconds: float = 5.0,
        exporter: MetricsExporter | None = None,
        resource_monitor: ResourceMonitor | None = None,
        slow_query_log: SlowQueryLog | None = None,
        max_flushes: int = 1_000_000,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {interval_seconds}"
            )
        if max_flushes < 1:
            raise ValueError(f"max_flushes must be >= 1, got {max_flushes}")
        self._snapshot: Callable[[], dict[str, Any]] = (
            source.snapshot if isinstance(source, Metrics) else source
        )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.interval_seconds = float(interval_seconds)
        self.exporter = exporter if exporter is not None else MetricsExporter()
        self.resource_monitor = resource_monitor
        self.slow_query_log = slow_query_log
        self.max_flushes = int(max_flushes)
        self.flushes = 0
        self.flush_errors = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def prometheus_path(self) -> Path:
        return self.directory / "metrics.prom"

    @property
    def jsonl_path(self) -> Path:
        return self.directory / "metrics.jsonl"

    @property
    def slow_query_path(self) -> Path:
        return self.directory / "slow_queries.jsonl"

    def flush_now(self) -> None:
        """One synchronous flush; raises on export failure (the thread
        body wraps this and counts instead)."""
        if self.resource_monitor is not None:
            self.resource_monitor.sample()
        snapshot = self._snapshot()
        self.exporter.write_prometheus(snapshot, self.prometheus_path)
        self.exporter.append_jsonl(snapshot, self.jsonl_path)
        if self.slow_query_log is not None:
            self.slow_query_log.write_jsonl(self.slow_query_path)
        self.flushes += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            if self.flushes >= self.max_flushes:
                break
            try:
                self.flush_now()
            except Exception:
                self.flush_errors += 1

    def start(self) -> "PeriodicFlusher":
        """Start the background thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="telemetry-flusher", daemon=True
            )
            self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def stop(self, flush: bool = True, timeout: float = 5.0) -> None:
        """Stop the thread; by default take one final flush so the last
        window of a run is never lost."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        if flush:
            try:
                self.flush_now()
            except Exception:
                self.flush_errors += 1

    def __enter__(self) -> "PeriodicFlusher":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


# ----------------------------------------------------------------------
# The bundle the CLI opens
# ----------------------------------------------------------------------
class TelemetrySession:
    """Everything ``--telemetry-dir`` stands up, behind start()/close().

    Owns a :class:`SlowQueryLog` (hand :attr:`slow_queries` to the
    :class:`repro.runtime.ExecutionContext` or
    :class:`repro.experiments.ExperimentConfig` driving the run), a
    :class:`ResourceMonitor` writing into ``metrics``, and a
    :class:`PeriodicFlusher` exporting ``source()`` (default
    ``metrics.snapshot``) to ``directory`` every ``interval_seconds``.
    :meth:`close` stops the flusher with a final flush, rewrites the
    slow-query log, evaluates the declared SLOs, and writes
    ``slo_report.json``; it is safe on every failure path (wrap the run
    in ``try/finally``) so post-mortems always have data.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        metrics: Metrics,
        source: Callable[[], dict[str, Any]] | None = None,
        interval_seconds: float = 5.0,
        slow_query_threshold: float = 0.1,
        slow_query_capacity: int = 1024,
        objectives: Iterable[SLObjective | str] = (),
        ledger: MemoryLedger | None = None,
        namespace: str = "repro",
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics
        self._source = source if source is not None else metrics.snapshot
        self.slow_queries = SlowQueryLog(
            threshold_seconds=slow_query_threshold,
            capacity=slow_query_capacity,
        )
        self.resources = ResourceMonitor(metrics, ledger=ledger)
        self.slos = SLOTracker(objectives)
        self.flusher = PeriodicFlusher(
            self._source,
            self.directory,
            interval_seconds=interval_seconds,
            exporter=MetricsExporter(namespace),
            resource_monitor=self.resources,
            slow_query_log=self.slow_queries,
        )
        self._closed = False

    @property
    def slo_report_path(self) -> Path:
        return self.directory / "slo_report.json"

    def start(self) -> "TelemetrySession":
        self.flusher.start()
        return self

    def close(self) -> list[SLOReport]:
        """Final flush + slow-query rewrite + SLO evaluation (idempotent
        after the first call returns its reports again)."""
        self.flusher.stop(flush=True)
        try:
            snapshot = self._source()
        except Exception:  # pragma: no cover - source died with the run
            snapshot = self.metrics.snapshot()
        reports = self.slos.evaluate(snapshot)
        if self.slos.objectives:
            try:
                with open(self.slo_report_path, "w", encoding="utf-8") as handle:
                    json.dump(
                        [report.to_dict() for report in reports],
                        handle, indent=2, sort_keys=True,
                    )
                    handle.write("\n")
            except OSError:  # pragma: no cover - telemetry never raises
                pass
        self._closed = True
        return reports

    def __enter__(self) -> "TelemetrySession":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
