"""Thread-safe named counters, timers, gauges, and per-step series.

One :class:`Metrics` instance is the observability sink of an
:class:`repro.runtime.context.ExecutionContext`.  Four kinds of
measurement are supported, all keyed by dot-separated names
(``"<layer>.<quantity>"`` by convention, e.g. ``"gsim_plus.spmm"`` or
``"batch.blocks_served"``):

* **counters** — monotonically accumulated floats (:meth:`increment`);
* **timers** — total seconds plus call count (:meth:`time` /
  :meth:`add_time`);
* **gauges** — last/max values (:meth:`set_gauge` / :meth:`record_max`);
* **series** — ordered per-step observations such as the factor width per
  iteration (:meth:`observe`).

All mutators take one internal lock, so worker threads (e.g. the
``BatchQueryEngine`` thread pool) can aggregate into a shared instance
without losing increments.  :meth:`snapshot` returns a deep, JSON-ready
copy that later mutation cannot alter — that is what a structured
:class:`repro.runtime.errors.BudgetExceeded` carries.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["Metrics"]


def _tidy(value: float) -> float | int:
    """Render integral floats as ints in snapshots (JSON neatness)."""
    return int(value) if float(value).is_integer() else float(value)


class Metrics:
    """A hierarchy-free bag of named measurements.

    Examples
    --------
    >>> metrics = Metrics()
    >>> metrics.increment("solver.iterations")
    >>> metrics.increment("solver.spmm", 4)
    >>> metrics.observe("solver.width", 2)
    >>> metrics.counter("solver.spmm")
    4.0
    >>> snap = metrics.snapshot()
    >>> snap["counters"]["solver.iterations"], snap["series"]["solver.width"]
    (1, [2])
    """

    __slots__ = ("_lock", "_counters", "_timers", "_gauges", "_series")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}  # name -> [seconds, calls]
        self._gauges: dict[str, float] = {}
        self._series: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(amount)

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def add_time(self, name: str, seconds: float) -> None:
        """Fold ``seconds`` into timer ``name`` and bump its call count."""
        with self._lock:
            entry = self._timers.setdefault(name, [0.0, 0.0])
            entry[0] += float(seconds)
            entry[1] += 1.0

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager measuring its block's wall time into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def record_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if larger (peak tracking)."""
        with self._lock:
            current = self._gauges.get(name)
            if current is None or value > current:
                self._gauges[name] = float(value)

    def gauge(self, name: str) -> float | None:
        """Current value of gauge ``name`` (None when never set)."""
        with self._lock:
            return self._gauges.get(name)

    # ------------------------------------------------------------------
    # Series
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Append ``value`` to the ordered series ``name``."""
        with self._lock:
            self._series.setdefault(name, []).append(float(value))

    def series(self, name: str) -> list[float]:
        """A copy of series ``name`` (empty when never observed)."""
        with self._lock:
            return list(self._series.get(name, ()))

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A deep, JSON-serialisable copy of every measurement."""
        with self._lock:
            return {
                "counters": {
                    name: _tidy(value) for name, value in sorted(self._counters.items())
                },
                "timers": {
                    name: {"seconds": float(entry[0]), "calls": int(entry[1])}
                    for name, entry in sorted(self._timers.items())
                },
                "gauges": {
                    name: _tidy(value) for name, value in sorted(self._gauges.items())
                },
                "series": {
                    name: [_tidy(value) for value in values]
                    for name, values in sorted(self._series.items())
                },
            }

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another instance into this one.

        Counters and timers add, gauges take the max, series extend — the
        right semantics for aggregating per-cell metrics into a session
        total.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.increment(name, value)
        for name, entry in snapshot.get("timers", {}).items():
            with self._lock:
                slot = self._timers.setdefault(name, [0.0, 0.0])
                slot[0] += float(entry["seconds"])
                slot[1] += float(entry["calls"])
        for name, value in snapshot.get("gauges", {}).items():
            self.record_max(name, value)
        for name, values in snapshot.get("series", {}).items():
            with self._lock:
                self._series.setdefault(name, []).extend(float(v) for v in values)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Metrics(counters={len(self._counters)}, "
                f"timers={len(self._timers)}, gauges={len(self._gauges)}, "
                f"series={len(self._series)})"
            )
