"""Thread-safe named counters, timers, gauges, series, and histograms.

One :class:`Metrics` instance is the observability sink of an
:class:`repro.runtime.context.ExecutionContext`.  Five kinds of
measurement are supported, all keyed by dot-separated names
(``"<layer>.<quantity>"`` by convention, e.g. ``"gsim_plus.spmm"`` or
``"batch.blocks_served"``):

* **counters** — monotonically accumulated floats (:meth:`increment`);
* **timers** — total seconds plus call count (:meth:`time` /
  :meth:`add_time`);
* **gauges** — last/max values (:meth:`set_gauge` / :meth:`record_max`);
* **series** — ordered per-step observations such as the factor width per
  iteration (:meth:`observe`);
* **histograms** — log-spaced bucketed distributions with p50/p90/p99
  estimates (:meth:`observe_histogram`), the latency-distribution kind:
  a series stores every observation, a histogram stores a fixed bucket
  layout so a million per-query latencies cost a few hundred ints and
  two snapshots merge by plain bucket addition.

All mutators take one internal lock, so worker threads (e.g. the
``BatchQueryEngine`` thread pool) can aggregate into a shared instance
without losing increments.  :meth:`snapshot` returns a deep, JSON-ready
copy that later mutation cannot alter — that is what a structured
:class:`repro.runtime.errors.BudgetExceeded` carries.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, NamedTuple

__all__ = ["HISTOGRAM_BUCKETS", "Metrics", "TimerReading", "histogram_bucket_bounds"]


def _tidy(value: float) -> float | int:
    """Render integral floats as ints in snapshots (JSON neatness)."""
    return int(value) if float(value).is_integer() else float(value)


class TimerReading(NamedTuple):
    """One timer's accumulated state: total seconds and call count."""

    seconds: float
    calls: int


# ----------------------------------------------------------------------
# Histogram bucket layout (fixed, so snapshots merge by bucket addition)
# ----------------------------------------------------------------------
# Log-spaced: 8 buckets per decade over [1e-6, 1e4) — microseconds to
# hours when the value is seconds — plus an underflow bucket 0 and an
# overflow bucket HISTOGRAM_BUCKETS-1.  Every Metrics instance uses this
# one layout; ``merge_snapshot`` relies on it.
_HIST_MIN = 1e-6
_HIST_DECADES = 10
_HIST_PER_DECADE = 8
HISTOGRAM_BUCKETS = _HIST_DECADES * _HIST_PER_DECADE + 2


def _bucket_index(value: float) -> int:
    """The fixed-layout bucket for ``value`` (non-finite → overflow)."""
    if not math.isfinite(value) or value != value:
        return HISTOGRAM_BUCKETS - 1
    if value < _HIST_MIN:
        return 0
    index = 1 + int(math.log10(value / _HIST_MIN) * _HIST_PER_DECADE)
    return min(index, HISTOGRAM_BUCKETS - 1)


def histogram_bucket_bounds(index: int) -> tuple[float, float]:
    """``(lower, upper)`` value bounds of bucket ``index``.

    Bucket 0 is the underflow ``[0, 1e-6)``; the last bucket is the
    overflow ``[1e4, inf)``.
    """
    if not (0 <= index < HISTOGRAM_BUCKETS):
        raise IndexError(f"bucket index {index} out of range")
    if index == 0:
        return (0.0, _HIST_MIN)
    if index == HISTOGRAM_BUCKETS - 1:
        return (_HIST_MIN * 10.0 ** (_HIST_DECADES), math.inf)
    lower = _HIST_MIN * 10.0 ** ((index - 1) / _HIST_PER_DECADE)
    upper = _HIST_MIN * 10.0 ** (index / _HIST_PER_DECADE)
    return (lower, upper)


class _Histogram:
    """Sparse bucket counts plus exact count/sum/min/max."""

    __slots__ = ("buckets", "count", "total", "low", "high")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.low = math.inf
        self.high = -math.inf

    def add(self, value: float) -> None:
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.low:
            self.low = value
        if value > self.high:
            self.high = value

    def merge(self, snapshot: dict[str, Any]) -> None:
        for key, count in snapshot.get("buckets", {}).items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + int(count)
        self.count += int(snapshot.get("count", 0))
        self.total += float(snapshot.get("sum", 0.0))
        if "min" in snapshot and float(snapshot["min"]) < self.low:
            self.low = float(snapshot["min"])
        if "max" in snapshot and float(snapshot["max"]) > self.high:
            self.high = float(snapshot["max"])

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate, clamped to [min, max].

        Exact to within one bucket width (a factor of ``10^(1/8)`` ≈ 1.33
        in the log-spaced span): the estimate is the geometric midpoint
        of the bucket holding the q-th observation.
        """
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                lower, upper = histogram_bucket_bounds(index)
                if index == 0:
                    estimate = lower
                elif math.isinf(upper):
                    estimate = lower
                else:
                    estimate = math.sqrt(lower * upper)
                return min(max(estimate, self.low), self.high)
        return self.high  # pragma: no cover - cumulative always reaches

    def to_snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": float(self.total),
            "min": float(self.low) if self.count else 0.0,
            "max": float(self.high) if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "buckets": {
                str(index): self.buckets[index] for index in sorted(self.buckets)
            },
        }


class Metrics:
    """A hierarchy-free bag of named measurements.

    Examples
    --------
    >>> metrics = Metrics()
    >>> metrics.increment("solver.iterations")
    >>> metrics.increment("solver.spmm", 4)
    >>> metrics.observe("solver.width", 2)
    >>> metrics.counter("solver.spmm")
    4.0
    >>> snap = metrics.snapshot()
    >>> snap["counters"]["solver.iterations"], snap["series"]["solver.width"]
    (1, [2])
    """

    __slots__ = ("_lock", "_counters", "_timers", "_gauges", "_series", "_histograms")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}  # name -> [seconds, calls]
        self._gauges: dict[str, float] = {}
        self._series: dict[str, list[float]] = {}
        self._histograms: dict[str, _Histogram] = {}

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(amount)

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def add_time(self, name: str, seconds: float) -> None:
        """Fold ``seconds`` into timer ``name`` and bump its call count."""
        with self._lock:
            entry = self._timers.setdefault(name, [0.0, 0.0])
            entry[0] += float(seconds)
            entry[1] += 1.0

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager measuring its block's wall time into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def timer(self, name: str) -> TimerReading:
        """Accumulated state of timer ``name`` (zeros when never timed)."""
        with self._lock:
            entry = self._timers.get(name)
            if entry is None:
                return TimerReading(0.0, 0)
            return TimerReading(float(entry[0]), int(entry[1]))

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def record_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if larger (peak tracking)."""
        with self._lock:
            current = self._gauges.get(name)
            if current is None or value > current:
                self._gauges[name] = float(value)

    def gauge(self, name: str) -> float | None:
        """Current value of gauge ``name`` (None when never set)."""
        with self._lock:
            return self._gauges.get(name)

    # ------------------------------------------------------------------
    # Series
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Append ``value`` to the ordered series ``name``."""
        with self._lock:
            self._series.setdefault(name, []).append(float(value))

    def series(self, name: str) -> list[float]:
        """A copy of series ``name`` (empty when never observed)."""
        with self._lock:
            return list(self._series.get(name, ()))

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    def observe_histogram(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name`` (fixed log-spaced buckets).

        The layout spans ``[1e-6, 1e4)`` with 8 buckets per decade plus
        underflow/overflow buckets — for values in seconds that covers
        microsecond queries to multi-hour builds at ~33% bucket
        resolution.  Count, sum, min and max are tracked exactly.

        Non-finite (NaN/±inf) and non-positive observations have no home
        in a log-spaced layout; rather than silently misbucketing them
        (NaN into overflow, negatives into underflow) they are rejected
        and counted under the ``<name>.invalid_observations`` counter, so
        a buggy instrument shows up in the export instead of skewing the
        percentiles.
        """
        value = float(value)
        with self._lock:
            if not math.isfinite(value) or value <= 0.0:
                counter = f"{name}.invalid_observations"
                self._counters[counter] = self._counters.get(counter, 0.0) + 1.0
                return
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram()
            histogram.add(value)

    @contextmanager
    def time_histogram(self, name: str) -> Iterator[None]:
        """Context manager observing its block's wall time into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe_histogram(name, time.perf_counter() - start)

    def histogram(self, name: str) -> dict[str, Any]:
        """Snapshot form of histogram ``name`` (zero-count when absent).

        Keys: ``count``, ``sum``, ``min``, ``max``, ``p50``/``p90``/
        ``p99`` (bucket-resolution estimates clamped to the observed
        range), and ``buckets`` (sparse ``{bucket_index: count}`` with
        string keys, JSON-ready).
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                return _Histogram().to_snapshot()
            return histogram.to_snapshot()

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A deep, JSON-serialisable copy of every measurement."""
        with self._lock:
            return {
                "counters": {
                    name: _tidy(value) for name, value in sorted(self._counters.items())
                },
                "timers": {
                    name: {"seconds": float(entry[0]), "calls": int(entry[1])}
                    for name, entry in sorted(self._timers.items())
                },
                "gauges": {
                    name: _tidy(value) for name, value in sorted(self._gauges.items())
                },
                "series": {
                    name: [_tidy(value) for value in values]
                    for name, values in sorted(self._series.items())
                },
                "histograms": {
                    name: histogram.to_snapshot()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another instance into this one.

        Counters and timers add, gauges take the max, series extend — the
        right semantics for aggregating per-cell metrics into a session
        total.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.increment(name, value)
        for name, entry in snapshot.get("timers", {}).items():
            with self._lock:
                slot = self._timers.setdefault(name, [0.0, 0.0])
                slot[0] += float(entry["seconds"])
                slot[1] += float(entry["calls"])
        for name, value in snapshot.get("gauges", {}).items():
            self.record_max(name, value)
        for name, values in snapshot.get("series", {}).items():
            with self._lock:
                self._series.setdefault(name, []).extend(float(v) for v in values)
        for name, entry in snapshot.get("histograms", {}).items():
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = _Histogram()
                histogram.merge(entry)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Metrics(counters={len(self._counters)}, "
                f"timers={len(self._timers)}, gauges={len(self._gauges)}, "
                f"series={len(self._series)}, "
                f"histograms={len(self._histograms)})"
            )
