"""Worker pools: sharded execution that cooperates with ExecutionContext.

Every hot loop in the library — the SpMM factor steps, the blocked top-k
scans, the independent sweep cells, batched index queries — decomposes
into *shards* whose results are merged deterministically.  This module
provides the one pool abstraction they all share:

* :class:`WorkerPool` — a shard executor with two backends and an
  explicit serial mode (``max_workers=1`` executes shards inline in the
  calling thread, the default everywhere: no entry point spawns workers
  unless asked).

  ``backend="thread"`` (default): the BLAS-backed dense GEMMs and
  scipy's sparse-times-dense kernels release the GIL, so threads give
  real parallelism on those paths with zero serialisation cost.

  ``backend="process"``: a persistent ``ProcessPoolExecutor`` for the
  kernels that *hold* the GIL (blocked top-k selection, per-row Python
  loops).  Work must be shipped as (module-level function, picklable
  descriptor) pairs — see :mod:`repro.runtime.procpool` for the
  (mmap path, row-range) descriptors that keep shard payloads at a few
  hundred bytes regardless of array size.  Worker processes pin their
  BLAS pools via :mod:`_repro_blas_pin` (mirroring the CI pinning) so a
  w-process pool never oversubscribes cores with w × BLAS threads; the
  *effective* in-worker thread count is probed and recorded in
  ``parallel.worker_blas_threads``.
* :func:`shard_ranges` — contiguous ``(start, stop)`` row ranges of
  near-equal size.
* :func:`shard_rows_by_nnz` — contiguous CSR row ranges balanced by
  stored-entry count, so skew-degree graphs do not leave workers idle.

Cooperation with :class:`repro.runtime.ExecutionContext`:

* the context is checkpointed between shard submissions and before every
  shard body, so cancellation and deadline expiry propagate into workers
  at shard granularity (shard bodies may poll more finely themselves);
* per-shard wall time is folded into the ``parallel.shard_seconds``
  timer and shard/task counts into ``parallel.shards``, so a metrics
  snapshot shows how much work ran under the pool;
* budget breaches raised inside a worker surface to the caller exactly
  as the serial path would raise them — the first failing shard in
  submission order wins, and queued shards are skipped;
* when the context carries a :class:`repro.runtime.trace.Tracer`, every
  shard records a ``parallel.shard`` span parented to the span that was
  open in the *submitting* thread at :meth:`WorkerPool.map` time, so
  worker-thread spans stitch under their logical parent in the exported
  trace rather than floating as roots.

Determinism: :meth:`WorkerPool.map` returns results in submission order
regardless of completion order, so any shard decomposition whose merge
is order-independent (or performed on the ordered result list) yields
results independent of ``max_workers`` — and of the backend.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import weakref
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

import _repro_blas_pin
from repro.runtime.context import ExecutionContext
from repro.runtime.trace import NULL_TRACER

__all__ = ["WorkerPool", "shard_ranges", "shard_rows_by_nnz"]

_BACKENDS = ("thread", "process")


def _probe_worker() -> dict[str, int]:
    """Runs inside a pool worker: report identity and BLAS pinning truth."""
    return {
        "pid": os.getpid(),
        "blas_threads": _repro_blas_pin.effective_blas_threads(),
    }


def _default_mp_context() -> str:
    """``fork`` where available (no per-worker interpreter+numpy warm-up,
    ~ms instead of seconds to start a pool); ``spawn`` elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"

T = TypeVar("T")
R = TypeVar("R")

_SKIPPED = object()  # sentinel: shard short-circuited after an earlier error


def shard_ranges(total: int, num_shards: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ≤ ``num_shards`` contiguous near-equal
    ``(start, stop)`` ranges (empty ranges are dropped).

    Examples
    --------
    >>> shard_ranges(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    >>> shard_ranges(2, 4)
    [(0, 1), (1, 2)]
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    num_shards = min(num_shards, total) or (1 if total else 0)
    bounds = np.linspace(0, total, num_shards + 1).astype(np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(num_shards)
        if bounds[i + 1] > bounds[i]
    ]


def shard_rows_by_nnz(
    indptr: np.ndarray, num_shards: int
) -> list[tuple[int, int]]:
    """Contiguous CSR row ranges with near-equal stored-entry counts.

    ``indptr`` is the CSR index pointer (length ``rows + 1``); the cost of
    ``A[start:stop] @ X`` is proportional to the nnz in the range, so
    balancing by nnz rather than row count keeps skew-degree shards even.
    """
    indptr = np.asarray(indptr)
    rows = int(indptr.shape[0]) - 1
    if rows < 0:
        raise ValueError("indptr must have at least one entry")
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    num_shards = min(num_shards, rows) or (1 if rows else 0)
    if num_shards <= 1:
        return [(0, rows)] if rows else []
    total = int(indptr[-1])
    # Cut where the cumulative nnz crosses each equal-share boundary; fall
    # back to equal row counts for edgeless matrices.
    if total == 0:
        return shard_ranges(rows, num_shards)
    targets = np.linspace(0, total, num_shards + 1)[1:-1]
    cuts = np.searchsorted(indptr[1:], targets, side="left") + 1
    bounds = np.unique(np.concatenate(([0], cuts, [rows])))
    return [
        (int(bounds[i]), int(bounds[i + 1])) for i in range(len(bounds) - 1)
    ]


class WorkerPool:
    """A shard executor: workers when ``max_workers > 1``, inline otherwise.

    Parameters
    ----------
    max_workers:
        Worker count.  ``None`` resolves to ``os.cpu_count()``; ``1`` is
        the serial mode (shards run inline, in order, in the calling
        thread — the determinism-debugging configuration).
    backend:
        ``"thread"`` (default) or ``"process"``.  The process backend
        keeps one persistent ``ProcessPoolExecutor`` per pool (started
        lazily on the first parallel :meth:`map`), whose workers pin
        their BLAS thread pools to 1 (mirroring the CI pinning) so w
        processes never fan out into w × BLAS threads.  Process shards
        must be (module-level function, picklable item) pairs; closures
        are a thread/serial-only convenience.
    mp_context:
        Multiprocessing start method for the process backend: ``"fork"``
        (default where available — instant pool start, inherits the
        parent's BLAS state), ``"spawn"`` (slower start, but the BLAS
        pin is applied *before* numpy loads, so it is authoritative), or
        ``"forkserver"``.

    Examples
    --------
    >>> pool = WorkerPool(max_workers=2)
    >>> pool.map(lambda x: x * x, [1, 2, 3])
    [1, 4, 9]
    >>> WorkerPool(max_workers=1).serial
    True
    """

    __slots__ = (
        "max_workers",
        "backend",
        "mp_context",
        "_executor",
        "_executor_lock",
        "_worker_info",
        "_finalizer",
        "__weakref__",
    )

    def __init__(
        self,
        max_workers: int | None = None,
        backend: str = "thread",
        mp_context: str | None = None,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if not isinstance(max_workers, (int, np.integer)) or isinstance(
            max_workers, bool
        ):
            raise TypeError(f"max_workers must be an int, got {max_workers!r}")
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        self.max_workers = int(max_workers)
        self.backend = backend
        self.mp_context = mp_context or _default_mp_context()
        self._executor: Executor | None = None
        self._executor_lock = threading.Lock()
        self._worker_info: dict[str, int] | None = None
        self._finalizer = None

    @classmethod
    def resolve(
        cls,
        workers: "WorkerPool | int | None",
        backend: str | None = None,
    ) -> "WorkerPool":
        """Normalise an entry-point argument into a pool.

        ``None`` means *serial* (the library never threads unless asked),
        an int is a worker count, and an existing pool passes through
        (its own backend wins — ``backend`` only applies when a pool is
        being created here).
        """
        if isinstance(workers, cls):
            return workers
        if workers is None:
            return cls(max_workers=1, backend=backend or "thread")
        return cls(max_workers=workers, backend=backend or "thread")

    @property
    def serial(self) -> bool:
        """True when shards run inline in the calling thread."""
        return self.max_workers == 1

    @property
    def process_parallel(self) -> bool:
        """True when shards cross a process boundary (descriptor path)."""
        return self.backend == "process" and not self.serial

    # ------------------------------------------------------------------
    # Process-backend executor lifecycle
    # ------------------------------------------------------------------
    def _process_executor(self) -> Executor:
        """The persistent process executor, started on first use.

        Workers run :func:`_repro_blas_pin.initialize` as their
        initializer; one probe task then records the *effective* BLAS
        thread count (env intent and loaded-library truth can differ
        under ``fork``) into :attr:`worker_info`.
        """
        with self._executor_lock:
            if self._executor is None:
                context = multiprocessing.get_context(self.mp_context)
                executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=context,
                    initializer=_repro_blas_pin.initialize,
                    initargs=(1,),
                )
                self._worker_info = executor.submit(_probe_worker).result()
                self._executor = executor
                self._finalizer = weakref.finalize(
                    self, _shutdown_executor, executor
                )
            return self._executor

    @property
    def worker_info(self) -> dict[str, int] | None:
        """Probe result from the process workers (None until first use)."""
        return self._worker_info

    def shutdown(self) -> None:
        """Stop the persistent process executor (no-op for threads/serial).

        The pool remains usable: the next process-parallel ``map`` starts
        a fresh executor.
        """
        with self._executor_lock:
            executor, self._executor = self._executor, None
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        context: ExecutionContext | None = None,
        what: str = "parallel shards",
    ) -> list[R]:
        """Apply ``fn`` to every item; results come back in item order.

        The context (when given) is checkpointed before every shard, so a
        cancelled token or expired deadline stops the work at shard
        granularity; per-shard wall time lands in the
        ``parallel.shard_seconds`` timer.  The first shard to fail — in
        *submission* order, independent of thread scheduling — has its
        exception re-raised here, and shards that had not started yet are
        skipped.
        """
        work: Sequence[T] = list(items)
        tracer = context.tracer if context is not None else NULL_TRACER
        # Captured in the submitting thread: worker-thread shard spans
        # stitch under the span that submitted them, not under whatever
        # happens to be open on the worker's own stack.
        parent = tracer.current_span()
        if context is not None:
            context.checkpoint(what)
            context.metrics.record_max("parallel.workers", self.max_workers)
        if not work:
            return []
        if self.serial or len(work) == 1:
            return [
                self._run_shard(fn, item, context, what, tracer, parent)
                for item in work
            ]
        if self.backend == "process":
            return self._map_process(fn, work, context, what, tracer, parent)
        abort = threading.Event()

        def _guarded(item: T) -> R:
            if abort.is_set():
                return _SKIPPED  # type: ignore[return-value]
            try:
                return self._run_shard(fn, item, context, what, tracer, parent)
            except BaseException:
                abort.set()
                raise
        with ThreadPoolExecutor(max_workers=self.max_workers) as executor:
            futures = [executor.submit(_guarded, item) for item in work]
            results: list[R] = []
            first_error: BaseException | None = None
            for future in futures:
                try:
                    outcome = future.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = exc
                    continue
                if outcome is _SKIPPED and first_error is not None:
                    continue
                results.append(outcome)
            if first_error is not None:
                raise first_error
            return results

    def _map_process(
        self,
        fn: Callable[[T], R],
        work: Sequence[T],
        context: ExecutionContext | None,
        what: str,
        tracer,
        parent,
    ) -> list[R]:
        """Ship shards to the persistent process executor.

        ``fn`` and every item must be picklable (module-level kernels over
        :mod:`repro.runtime.procpool` descriptors).  Semantics match the
        thread path: results in submission order, the first failure in
        submission order wins and not-yet-started shards are cancelled.
        The context cannot cross the process boundary, so cancellation /
        deadline / fault-injection fire at batch granularity in the
        parent, and per-shard wall time is observed from the parent's
        side of each future.
        """
        executor = self._process_executor()
        if context is not None and self._worker_info is not None:
            context.metrics.set_gauge(
                "parallel.worker_blas_threads",
                float(self._worker_info["blas_threads"]),
            )
            context.metrics.record_max(
                "parallel.process_workers", self.max_workers
            )
        start = time.perf_counter()
        with tracer.span("parallel.process_batch", parent=parent) as span:
            span.set_attribute("what", what)
            span.set_attribute("shards", len(work))
            futures = [executor.submit(fn, item) for item in work]
            results: list[R] = []
            first_error: BaseException | None = None
            for future in futures:
                try:
                    results.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = exc
                        for pending in futures:
                            pending.cancel()
            if context is not None:
                context.metrics.add_time(
                    "parallel.shard_seconds", time.perf_counter() - start
                )
                context.metrics.increment("parallel.shards", len(work))
                context.checkpoint(what)
            if first_error is not None:
                raise first_error
            return results

    @staticmethod
    def _run_shard(
        fn: Callable[[T], R],
        item: T,
        context: ExecutionContext | None,
        what: str,
        tracer=NULL_TRACER,
        parent=None,
    ) -> R:
        if context is None:
            return fn(item)
        context.checkpoint(what)
        start = time.perf_counter()
        try:
            with tracer.span("parallel.shard", parent=parent) as span:
                span.set_attribute("what", what)
                return fn(item)
        finally:
            context.metrics.add_time(
                "parallel.shard_seconds", time.perf_counter() - start
            )
            context.metrics.increment("parallel.shards")

    def __repr__(self) -> str:
        return (
            f"WorkerPool(max_workers={self.max_workers}, "
            f"backend={self.backend!r})"
        )


def _shutdown_executor(executor: Executor) -> None:
    """GC finalizer for a pool's process executor (module-level so the
    finalizer holds no reference back to the pool)."""
    executor.shutdown(wait=False, cancel_futures=True)
