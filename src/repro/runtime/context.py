"""The ExecutionContext: one object a compute loop polls and reports to.

Every long-running entry point in the library accepts an optional
``context`` and, when given one, does four things at each natural
checkpoint (an iteration, a row block, a query pair):

1. **poll the deadline** — :meth:`ExecutionContext.checkpoint` raises a
   structured :class:`repro.runtime.errors.DeadlineExceeded` once the
   armed wall-clock budget runs out;
2. **poll the cancellation token** — a caller (another thread, a signal
   handler) flips :meth:`CancellationToken.cancel` and the loop stops at
   its next checkpoint with :class:`repro.runtime.errors.Cancelled`;
3. **charge working sets** — :meth:`ExecutionContext.charge` accounts
   bytes against the live :class:`repro.runtime.budget.MemoryLedger`
   *before* allocating, converting would-be OOMs into clean structured
   failures;
4. **record metrics** — counters/timers/series on
   :attr:`ExecutionContext.metrics`.

Passing no context costs nothing: every instrumented loop guards with
``if context is not None`` so the no-context path is byte-for-byte the
historical behaviour.  All structured failures carry a metrics snapshot,
so an interrupted run still reports how far it got.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.runtime.budget import MemoryLedger, WallClockDeadline
from repro.runtime.errors import Cancelled, DeadlineExceeded, MemoryBudgetExceeded
from repro.runtime.metrics import Metrics
from repro.runtime.trace import NULL_TRACER, NullTracer, Tracer

__all__ = ["CancellationToken", "ExecutionContext"]


class CancellationToken:
    """A thread-safe one-way flag polled at checkpoints.

    Examples
    --------
    >>> token = CancellationToken()
    >>> token.cancelled
    False
    >>> token.cancel()
    >>> token.cancelled
    True
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation; irreversible."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()


class ExecutionContext:
    """Deadline + memory budget + cancellation + metrics for one run.

    Parameters
    ----------
    deadline:
        An armed :class:`repro.runtime.budget.WallClockDeadline`, or
        ``None`` for no time budget.
    memory:
        A live :class:`repro.runtime.budget.MemoryLedger`, or ``None``
        for no memory budget.
    cancellation:
        A :class:`CancellationToken` shared with whoever may cancel.
    metrics:
        The :class:`repro.runtime.metrics.Metrics` sink; a fresh one is
        created when omitted, so ``ExecutionContext()`` is a pure
        metrics-collection context with no budgets at all.
    fault_injector:
        An optional :class:`repro.runtime.resilience.FaultInjector` (or
        anything with an ``on_checkpoint(what)`` method) consulted at
        every :meth:`checkpoint`, so tests can deterministically kill a
        run at its *n*-th checkpoint and assert recovery.
    tracer:
        An optional :class:`repro.runtime.trace.Tracer`.  Instrumented
        loops open hierarchical spans on it (per iteration, per shard,
        per query); when omitted it defaults to the shared
        :data:`repro.runtime.trace.NULL_TRACER`, whose no-op spans keep
        the untraced path allocation-free.
    slow_queries:
        An optional :class:`repro.runtime.telemetry.SlowQueryLog`.
        Retrieval entry points (``GSimIndex.query``/``query_many``/
        ``top_pairs``, the top-k scans, batch blocks) report their
        latency to it; calls above its threshold land in the bounded
        ring as structured records.  ``None`` (the default) costs one
        ``is None`` check per call.

    Examples
    --------
    >>> context = ExecutionContext.start(deadline_seconds=60.0)
    >>> context.checkpoint("warm-up")   # within budget: no-op
    >>> context.metrics.increment("demo.steps")
    >>> context.metrics.counter("demo.steps")
    1.0
    """

    __slots__ = (
        "deadline",
        "memory",
        "cancellation",
        "metrics",
        "fault_injector",
        "tracer",
        "slow_queries",
    )

    def __init__(
        self,
        deadline: WallClockDeadline | None = None,
        memory: MemoryLedger | None = None,
        cancellation: CancellationToken | None = None,
        metrics: Metrics | None = None,
        fault_injector: "Any | None" = None,
        tracer: "Tracer | NullTracer | None" = None,
        slow_queries: "Any | None" = None,
    ) -> None:
        self.deadline = deadline
        self.memory = memory
        self.cancellation = cancellation
        self.metrics = metrics if metrics is not None else Metrics()
        self.fault_injector = fault_injector
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.slow_queries = slow_queries

    @classmethod
    def start(
        cls,
        deadline_seconds: float | None = None,
        memory_limit_bytes: int | None = None,
        cancellation: CancellationToken | None = None,
        metrics: Metrics | None = None,
        fault_injector: "Any | None" = None,
        tracer: "Tracer | NullTracer | None" = None,
        slow_queries: "Any | None" = None,
    ) -> "ExecutionContext":
        """Arm a context from plain limits (the common construction)."""
        deadline = (
            WallClockDeadline(deadline_seconds)
            if deadline_seconds is not None
            else None
        )
        memory = (
            MemoryLedger(memory_limit_bytes)
            if memory_limit_bytes is not None
            else None
        )
        return cls(
            deadline=deadline,
            memory=memory,
            cancellation=cancellation,
            metrics=metrics,
            fault_injector=fault_injector,
            tracer=tracer,
            slow_queries=slow_queries,
        )

    # ------------------------------------------------------------------
    # Cooperative enforcement
    # ------------------------------------------------------------------
    def checkpoint(self, what: str = "computation") -> None:
        """Poll cancellation and deadline; raise structured failures.

        Raised exceptions carry :meth:`Metrics.snapshot` of everything
        recorded so far.
        """
        if self.cancellation is not None and self.cancellation.cancelled:
            raise Cancelled(
                f"{what} cancelled", metrics=self.metrics.snapshot()
            )
        if self.deadline is not None and self.deadline.expired:
            raise DeadlineExceeded(
                f"{what} exceeded its {self.deadline.limit_seconds:.1f}s "
                "wall-clock budget",
                metrics=self.metrics.snapshot(),
            )
        if self.fault_injector is not None:
            self.fault_injector.on_checkpoint(what)

    def charge(self, num_bytes: float, what: str = "allocation") -> None:
        """Charge a working set against the ledger (no-op without one).

        On a breach the raised
        :class:`repro.runtime.errors.MemoryBudgetExceeded` carries the
        metrics snapshot; on success the peak is mirrored into the
        ``memory.peak_bytes`` gauge.
        """
        if self.memory is None:
            return
        try:
            self.memory.charge(num_bytes, what)
        except MemoryBudgetExceeded as exc:
            exc.metrics = self.metrics.snapshot()
            raise
        self.metrics.record_max("memory.peak_bytes", self.memory.peak_bytes)

    def release(self, num_bytes: float) -> None:
        """Return a charged working set to the ledger (no-op without one)."""
        if self.memory is not None:
            self.memory.release(num_bytes)

    def snapshot(self) -> dict[str, Any]:
        """The metrics snapshot, with live budget state folded in."""
        snap = self.metrics.snapshot()
        if self.deadline is not None:
            snap["gauges"]["deadline.elapsed_seconds"] = self.deadline.elapsed
            snap["gauges"]["deadline.limit_seconds"] = self.deadline.limit_seconds
        if self.memory is not None:
            snap["gauges"]["memory.held_bytes"] = self.memory.held_bytes
            snap["gauges"]["memory.peak_bytes"] = self.memory.peak_bytes
            snap["gauges"]["memory.limit_bytes"] = self.memory.limit_bytes
        return snap

    def __repr__(self) -> str:
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline.limit_seconds:.1f}s")
        if self.memory is not None:
            parts.append(f"memory={self.memory.limit_bytes}B")
        if self.cancellation is not None:
            parts.append(f"cancelled={self.cancellation.cancelled}")
        return f"ExecutionContext({', '.join(parts)})"
