"""Runtime layer: execution contexts, budgets, cancellation, metrics.

Sits between :mod:`repro.utils` and the compute layers.  Every solver,
retrieval, and serving loop in the library accepts an optional
:class:`ExecutionContext` and, when given one, polls its deadline and
cancellation token at checkpoints, charges working sets against its live
memory ledger, and records counters/timers/series into its
:class:`Metrics` sink.  Budget breaches surface as structured
:class:`BudgetExceeded` failures carrying the metrics collected so far.

The experiment guards (:mod:`repro.experiments.guards`) are thin
re-exports of :class:`Deadline` / :class:`MemoryBudget`, so predictive
gating (cost-model OOM/TIMEOUT substitution) and in-loop enforcement
share one implementation.

Tracing (:mod:`repro.runtime.trace`) rides the same context: attach a
:class:`Tracer` and every instrumented loop records hierarchical spans
(per iteration, per worker shard, per query) plus a bounded structured
event log, exportable as Chrome ``trace_event`` JSON or summarised into
a hot-path table.  Without one, the shared :data:`NULL_TRACER` keeps the
hot path allocation-free.
"""

from repro.runtime.budget import (
    Deadline,
    MemoryBudget,
    MemoryLedger,
    WallClockDeadline,
)
from repro.runtime.context import CancellationToken, ExecutionContext
from repro.runtime.errors import (
    BudgetExceeded,
    Cancelled,
    CorruptArtifactError,
    DeadlineExceeded,
    IndexUnavailableError,
    InjectedFault,
    MemoryBudgetExceeded,
    TransientError,
)
from repro.runtime.metrics import (
    HISTOGRAM_BUCKETS,
    Metrics,
    TimerReading,
    histogram_bucket_bounds,
)
from repro.runtime.parallel import WorkerPool, shard_ranges, shard_rows_by_nnz
from repro.runtime.procpool import ArrayRef, CsrRef
from repro.runtime.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    render_trace_summary,
    summarize_trace,
)
from repro.runtime.resilience import (
    Checkpoint,
    CheckpointManager,
    FaultInjector,
    RetryPolicy,
    atomic_write,
    content_checksum,
)
from repro.runtime.telemetry import (
    MetricsExporter,
    PeriodicFlusher,
    ResourceMonitor,
    SLObjective,
    SLOReport,
    SLOTracker,
    SlowQuery,
    SlowQueryLog,
    TelemetrySession,
    render_slo_report,
)

__all__ = [
    "ArrayRef",
    "BudgetExceeded",
    "CancellationToken",
    "Cancelled",
    "Checkpoint",
    "CheckpointManager",
    "CorruptArtifactError",
    "CsrRef",
    "Deadline",
    "DeadlineExceeded",
    "ExecutionContext",
    "FaultInjector",
    "HISTOGRAM_BUCKETS",
    "IndexUnavailableError",
    "InjectedFault",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "MemoryLedger",
    "Metrics",
    "MetricsExporter",
    "NULL_TRACER",
    "NullTracer",
    "PeriodicFlusher",
    "ResourceMonitor",
    "RetryPolicy",
    "SLObjective",
    "SLOReport",
    "SLOTracker",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "TelemetrySession",
    "TimerReading",
    "Tracer",
    "TransientError",
    "WallClockDeadline",
    "WorkerPool",
    "atomic_write",
    "content_checksum",
    "histogram_bucket_bounds",
    "render_slo_report",
    "render_trace_summary",
    "shard_ranges",
    "shard_rows_by_nnz",
    "summarize_trace",
]
