"""Runtime layer: execution contexts, budgets, cancellation, metrics.

Sits between :mod:`repro.utils` and the compute layers.  Every solver,
retrieval, and serving loop in the library accepts an optional
:class:`ExecutionContext` and, when given one, polls its deadline and
cancellation token at checkpoints, charges working sets against its live
memory ledger, and records counters/timers/series into its
:class:`Metrics` sink.  Budget breaches surface as structured
:class:`BudgetExceeded` failures carrying the metrics collected so far.

The experiment guards (:mod:`repro.experiments.guards`) are thin
re-exports of :class:`Deadline` / :class:`MemoryBudget`, so predictive
gating (cost-model OOM/TIMEOUT substitution) and in-loop enforcement
share one implementation.
"""

from repro.runtime.budget import (
    Deadline,
    MemoryBudget,
    MemoryLedger,
    WallClockDeadline,
)
from repro.runtime.context import CancellationToken, ExecutionContext
from repro.runtime.errors import (
    BudgetExceeded,
    Cancelled,
    CorruptArtifactError,
    DeadlineExceeded,
    InjectedFault,
    MemoryBudgetExceeded,
    TransientError,
)
from repro.runtime.metrics import Metrics
from repro.runtime.parallel import WorkerPool, shard_ranges, shard_rows_by_nnz
from repro.runtime.resilience import (
    Checkpoint,
    CheckpointManager,
    FaultInjector,
    RetryPolicy,
    atomic_write,
    content_checksum,
)

__all__ = [
    "BudgetExceeded",
    "CancellationToken",
    "Cancelled",
    "Checkpoint",
    "CheckpointManager",
    "CorruptArtifactError",
    "Deadline",
    "DeadlineExceeded",
    "ExecutionContext",
    "FaultInjector",
    "InjectedFault",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "MemoryLedger",
    "Metrics",
    "RetryPolicy",
    "TransientError",
    "WallClockDeadline",
    "WorkerPool",
    "atomic_write",
    "content_checksum",
    "shard_ranges",
    "shard_rows_by_nnz",
]
