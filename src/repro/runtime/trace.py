"""Hierarchical tracing: spans, a structured event log, and exporters.

:class:`repro.runtime.metrics.Metrics` answers *how much* (counters,
timers, histograms); this module answers *where the time went*.  A
:class:`Tracer` records **spans** — named, nested wall-clock intervals —
plus a bounded **structured event log**, and exports both:

* :meth:`Tracer.span` is a context manager; spans nest through a
  per-thread stack, so ``with tracer.span("a"): with tracer.span("b")``
  records ``b`` as a child of ``a`` with no bookkeeping at the call site;
* work handed to another thread (a :class:`repro.runtime.WorkerPool`
  shard) passes the submitting span as an explicit ``parent=`` handle, so
  shard spans stitch under the span that submitted them even though the
  per-thread stacks never meet;
* :meth:`Tracer.event` appends a JSONL-ready record (span id, name,
  severity, attributes) to a bounded log — the place for rare structured
  facts (a rank-cap fallback engaging, a cell being quarantined) that
  would be noise as spans;
* :meth:`Tracer.chrome_trace` renders the Chrome ``trace_event`` JSON
  format, loadable in Perfetto / ``chrome://tracing``;
* :func:`summarize_trace` aggregates total/self time per span name into a
  hot-path ranking, rendered by :func:`render_trace_summary`.

The **untraced default** is :data:`NULL_TRACER`, a singleton
:class:`NullTracer` whose :meth:`~NullTracer.span` returns one shared
no-op span — no per-call object allocation, so instrumented hot paths
cost two method calls when tracing is off.  Instrumented code follows one
pattern::

    tracer = context.tracer if context is not None else NULL_TRACER
    with tracer.span("index.query") as span:
        ...
        span.set_attribute("cells", block.size)

Both buffers are bounded (``max_spans`` / ``max_events``, oldest records
dropped first, drops counted), so a tracer left attached to a long-lived
serving context cannot grow without bound.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Iterable

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "render_trace_summary",
    "summarize_trace",
]


class Span:
    """One named wall-clock interval, recorded into its tracer on exit.

    Use as a context manager (via :meth:`Tracer.span`); attributes set
    through :meth:`set_attribute` travel into the event-log records and
    the Chrome-trace ``args`` of the span.
    """

    __slots__ = (
        "_tracer",
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attributes",
        "thread_id",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        attributes: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = 0.0
        self.end: float | None = None
        self.attributes = attributes
        self.thread_id = 0

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one key/value to the span (last write wins)."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self.thread_id = threading.get_ident()
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        self._tracer._record(self)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, duration={self.duration:.6f}s)"
        )


class _NullSpan:
    """The shared no-op span: valid context manager and parent handle."""

    __slots__ = ()

    span_id = None
    parent_id = None
    name = ""
    start = 0.0
    end = 0.0
    duration = 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullSpan()"


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing tracer wired in wherever no real one is attached.

    Every method is a constant-time no-op returning shared singletons —
    no span objects, no attribute dicts, no locks — so the untraced hot
    path pays only the method-call overhead (measured <1% on the bench
    scan; see docs/architecture.md).
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, parent: Any = None, **attributes: Any) -> _NullSpan:
        """A shared no-op span (ignores the name, parent, attributes)."""
        return _NULL_SPAN

    def current_span(self) -> None:
        """No span is ever open on a NullTracer."""
        return None

    def event(
        self,
        name: str,
        severity: str = "info",
        span: Any = None,
        **attributes: Any,
    ) -> None:
        """Dropped."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


NULL_TRACER = NullTracer()


class Tracer:
    """Thread-safe recorder of hierarchical spans and structured events.

    Parameters
    ----------
    max_spans, max_events:
        Buffer bounds.  When full, the *oldest* records are dropped and
        the drop is counted (:attr:`dropped_spans` /
        :attr:`dropped_events`), so a tracer on a long-lived service
        degrades to "most recent window" instead of growing unboundedly.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.span("outer") as outer:
    ...     with tracer.span("inner", step=1) as inner:
    ...         pass
    >>> inner.parent_id == outer.span_id
    True
    >>> [s.name for s in tracer.spans()]
    ['inner', 'outer']
    """

    enabled = True

    def __init__(self, max_spans: int = 100_000, max_events: int = 10_000) -> None:
        if max_spans < 1 or max_events < 1:
            raise ValueError("max_spans and max_events must be >= 1")
        self._lock = threading.Lock()
        self._local = threading.local()
        self._max_spans = int(max_spans)
        self._max_events = int(max_events)
        self._spans: list[Span] = []
        self._events: list[dict[str, Any]] = []
        self._next_id = 1
        self.dropped_spans = 0
        self.dropped_events = 0
        # Anchor: perf_counter origin mapped to the epoch, so exported
        # timestamps are absolute microseconds yet keep perf_counter's
        # monotonicity between spans of one run.
        self._origin_perf = time.perf_counter()
        self._origin_epoch = time.time()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(
        self, name: str, parent: "Span | _NullSpan | None" = None, **attributes: Any
    ) -> Span:
        """A new span context manager.

        ``parent`` overrides the implicit per-thread nesting — pass the
        submitting span when the body runs on another thread (a worker
        shard), so the trace stitches across threads.  Passing a no-op
        span (from an untraced caller) is the same as passing ``None``.
        """
        if parent is None:
            parent_id = None  # resolved from the thread stack on enter
        else:
            parent_id = parent.span_id  # None for _NULL_SPAN: a root span
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(self, name, span_id, parent_id, dict(attributes))
        if parent is not None:
            span.attributes["explicit_parent"] = True
        return span

    def current_span(self) -> Span | None:
        """The innermost open span of the *calling* thread, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def event(
        self,
        name: str,
        severity: str = "info",
        span: "Span | _NullSpan | None" = None,
        **attributes: Any,
    ) -> None:
        """Append one structured record to the bounded event log.

        The record carries the id of ``span`` (default: the calling
        thread's current span), the wall-clock timestamp, a severity
        string (``"info"``/``"warning"``/``"error"`` by convention), and
        the attributes — everything JSON-serialisable, one dict per line
        in :meth:`write_events`.
        """
        if span is None:
            span = self.current_span()
        record = {
            "ts": self._to_epoch(time.perf_counter()),
            "name": name,
            "severity": severity,
            "span_id": getattr(span, "span_id", None),
            "attributes": attributes,
        }
        with self._lock:
            self._events.append(record)
            if len(self._events) > self._max_events:
                del self._events[0]
                self.dropped_events += 1

    # Internal hooks used by Span.__enter__/__exit__.
    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        if span.parent_id is None and "explicit_parent" not in span.attributes:
            if stack:
                span.parent_id = stack[-1].span_id
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - defensive
            stack.remove(span)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self._max_spans:
                del self._spans[0]
                self.dropped_spans += 1

    # ------------------------------------------------------------------
    # Reading & export
    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        """Completed spans, in completion order (a copy)."""
        with self._lock:
            return list(self._spans)

    def events(self) -> list[dict[str, Any]]:
        """Structured event records, oldest first (a copy)."""
        with self._lock:
            return [dict(record) for record in self._events]

    def _to_epoch(self, perf_timestamp: float) -> float:
        return self._origin_epoch + (perf_timestamp - self._origin_perf)

    def chrome_trace(self) -> dict[str, Any]:
        """The trace in Chrome ``trace_event`` JSON format.

        One complete (``"ph": "X"``) event per span — ``ts``/``dur`` in
        microseconds, ``tid`` the recording thread — plus ``args``
        carrying the span/parent ids and attributes, so Perfetto shows
        the cross-thread stitching that thread-lane nesting alone cannot.
        """
        pid = os.getpid()
        events: list[dict[str, Any]] = []
        for span in self.spans():
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": self._to_epoch(span.start) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": {
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        **{
                            key: value
                            for key, value in span.attributes.items()
                            if key != "explicit_parent"
                        },
                    },
                }
            )
        for record in self.events():
            events.append(
                {
                    "name": record["name"],
                    "cat": "repro.event",
                    "ph": "i",
                    "s": "t",
                    "ts": record["ts"] * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": {
                        "severity": record["severity"],
                        "span_id": record["span_id"],
                        **record["attributes"],
                    },
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "dropped_spans": self.dropped_spans,
                "dropped_events": self.dropped_events,
            },
        }

    def write_chrome_trace(self, path: str | os.PathLike) -> None:
        """Write :meth:`chrome_trace` as JSON (open in Perfetto)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")

    def write_events(self, path: str | os.PathLike) -> None:
        """Write the structured event log as JSONL, one record per line."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.events():
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Tracer(spans={len(self._spans)}, events={len(self._events)}, "
                f"dropped_spans={self.dropped_spans})"
            )


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
def summarize_trace(
    source: "Tracer | Iterable[Span]",
) -> list[dict[str, Any]]:
    """Aggregate spans into per-name totals, ranked hottest-first.

    Returns one row per span name with ``calls``, ``total_seconds`` (sum
    of durations), ``self_seconds`` (duration minus the durations of
    direct children, floored at zero — children running concurrently on
    worker threads can overlap their parent), ``min_seconds`` and
    ``max_seconds``.  Rows are sorted by ``self_seconds`` descending:
    the hot-path ranking.  In a serial trace the ``self_seconds`` column
    telescopes — its grand total equals the summed duration of the root
    spans.
    """
    spans = source.spans() if isinstance(source, Tracer) else list(source)
    children_time: dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None:
            children_time[span.parent_id] = (
                children_time.get(span.parent_id, 0.0) + span.duration
            )
    rows: dict[str, dict[str, Any]] = {}
    for span in spans:
        row = rows.get(span.name)
        if row is None:
            row = rows[span.name] = {
                "name": span.name,
                "calls": 0,
                "total_seconds": 0.0,
                "self_seconds": 0.0,
                "min_seconds": float("inf"),
                "max_seconds": 0.0,
            }
        row["calls"] += 1
        row["total_seconds"] += span.duration
        row["self_seconds"] += max(
            0.0, span.duration - children_time.get(span.span_id, 0.0)
        )
        row["min_seconds"] = min(row["min_seconds"], span.duration)
        row["max_seconds"] = max(row["max_seconds"], span.duration)
    return sorted(
        rows.values(), key=lambda row: (-row["self_seconds"], row["name"])
    )


def render_trace_summary(
    source: "Tracer | Iterable[Span] | list[dict[str, Any]]",
) -> str:
    """The :func:`summarize_trace` rows as an aligned text table."""
    if isinstance(source, list) and source and isinstance(source[0], dict):
        rows = source
    else:
        rows = summarize_trace(source)  # type: ignore[arg-type]
    headers = ["span", "calls", "total s", "self s", "min s", "max s"]
    cells = [
        [
            str(row["name"]),
            str(row["calls"]),
            f"{row['total_seconds']:.4f}",
            f"{row['self_seconds']:.4f}",
            f"{row['min_seconds']:.4f}",
            f"{row['max_seconds']:.4f}",
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def _line(parts: list[str]) -> str:
        padded = [parts[0].ljust(widths[0])] + [
            parts[i].rjust(widths[i]) for i in range(1, len(parts))
        ]
        return "  ".join(padded)

    out = [_line(headers), _line(["-" * width for width in widths])]
    out.extend(_line(line) for line in cells)
    if not cells:
        out.append("(no spans recorded)")
    return "\n".join(out)
