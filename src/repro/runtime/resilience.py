"""Resilience primitives: retries, checkpoints, and fault injection.

A billion-scale factor build or a multi-hour sweep *will* be interrupted —
OOM kills, preemption, bad input.  This module turns those interruptions
from total losses into bounded ones:

* :class:`RetryPolicy` — exponential backoff with deterministic seeded
  jitter and a transient-vs-fatal classification built on the
  :class:`repro.runtime.errors.BudgetExceeded` hierarchy, so an I/O hiccup
  is retried while an exhausted budget or a cancellation is not;
* :class:`CheckpointManager` — numbered, checksummed snapshots written via
  :func:`atomic_write` (sibling temp file + ``os.replace``), with
  latest-*valid*-snapshot discovery that skips corrupt files instead of
  resuming from garbage;
* :class:`FaultInjector` — a seeded hook that rides the
  :meth:`repro.runtime.context.ExecutionContext.checkpoint` polls already
  threaded through every compute loop, so tests can kill a run at exactly
  checkpoint *n* (or with a seeded probability) and assert recovery.

All three are deliberately dependency-free above :mod:`repro.runtime`:
the core solver, the experiment harness, and the serialization layer all
build on them.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence, TypeVar

import numpy as np

from repro.runtime.errors import (
    BudgetExceeded,
    Cancelled,
    CorruptArtifactError,
    DeadlineExceeded,
    InjectedFault,
    MemoryBudgetExceeded,
    TransientError,
)

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "FaultInjector",
    "RetryPolicy",
    "atomic_write",
    "content_checksum",
]

_T = TypeVar("_T")


# ----------------------------------------------------------------------
# Atomic writes and content checksums (shared by every artifact writer)
# ----------------------------------------------------------------------
@contextmanager
def atomic_write(path: str | Path) -> Iterator[Path]:
    """Yield a sibling temp path; publish it over ``path`` on success.

    The caller writes the complete artifact to the yielded path.  On a
    clean exit the temp file is fsynced and renamed over ``path`` with
    :func:`os.replace` — atomic on POSIX — so a crash mid-write can never
    clobber an existing good artifact: readers observe either the old
    complete file or the new complete file.  On failure the temp file is
    removed and ``path`` is untouched.

    Examples
    --------
    >>> import tempfile, pathlib
    >>> target = pathlib.Path(tempfile.mkdtemp()) / "artifact.txt"
    >>> with atomic_write(target) as tmp:
    ...     _ = tmp.write_text("complete")
    >>> target.read_text()
    'complete'
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        yield tmp
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def content_checksum(items: Mapping[str, Any]) -> str:
    """A stable SHA-256 digest of named arrays / scalars / strings.

    Arrays contribute dtype, shape, and raw bytes; everything else
    contributes its JSON encoding.  Names are folded in sorted order so
    the digest is independent of dict insertion order.
    """
    digest = hashlib.sha256()
    for name in sorted(items):
        value = items[name]
        digest.update(name.encode("utf-8"))
        if isinstance(value, np.ndarray) or np.isscalar(value):
            array = np.asarray(value)
            digest.update(str(array.dtype).encode("ascii"))
            digest.update(str(array.shape).encode("ascii"))
            digest.update(array.tobytes())
        else:
            digest.update(json.dumps(value, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic seeded jitter.

    Classification rides the structured error hierarchy: subclasses of
    :class:`repro.runtime.errors.TransientError` (including injected
    faults) and plain ``OSError`` are *transient* — worth retrying —
    while cancellation, exhausted budgets (deterministic under the same
    limits), corrupt artifacts, and programming errors are *fatal* and
    surface immediately.  Set ``retry_budget_failures=True`` to also
    retry deadline / memory breaches (useful on shared machines where a
    breach may be load-induced rather than intrinsic).

    Jitter is decorrelated but *deterministic*: attempt ``i`` under seed
    ``s`` always backs off the same amount, so resilience tests replay
    exactly.

    Examples
    --------
    >>> policy = RetryPolicy(max_attempts=3, base_delay=0.5, seed=7)
    >>> [round(policy.delay(i), 3) == round(policy.delay(i), 3) for i in (1, 2)]
    [True, True]
    >>> policy.is_transient(OSError("disk hiccup"))
    True
    >>> policy.is_transient(ValueError("bad input"))
    False
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.5
    seed: int = 0
    retry_budget_failures: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), jitter included."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = random.Random(f"{self.seed}:{attempt}")
        return base * (1.0 - self.jitter * rng.random())

    def is_transient(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth retrying under this policy."""
        if isinstance(exc, Cancelled):
            return False
        if isinstance(exc, (DeadlineExceeded, MemoryBudgetExceeded)):
            return self.retry_budget_failures
        if isinstance(exc, BudgetExceeded):
            return False
        if isinstance(exc, CorruptArtifactError):
            return False
        return isinstance(exc, (TransientError, OSError))

    def call(
        self,
        fn: Callable[..., _T],
        *args: Any,
        what: str = "operation",
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[int, BaseException], None] | None = None,
        **kwargs: Any,
    ) -> _T:
        """Run ``fn`` with retries; fatal or exhausted failures re-raise.

        ``on_retry(attempt, exc)`` fires before each backoff — callers
        use it to log or to reset per-attempt state (e.g. point a solver
        at its latest checkpoint).
        """
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except BaseException as exc:
                if not self.is_transient(exc) or attempt >= self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                pause = self.delay(attempt)
                if pause > 0.0:
                    sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Checkpoint:
    """One verified snapshot: a step number, named arrays, and metadata."""

    step: int
    arrays: dict[str, np.ndarray]
    meta: dict[str, Any] = field(default_factory=dict)


class CheckpointManager:
    """Numbered, checksummed ``.npz`` snapshots in one directory.

    Every :meth:`save` goes through :func:`atomic_write`, embeds a
    SHA-256 :func:`content_checksum` of its payload, and prunes old
    snapshots down to ``keep``.  Every load re-verifies the checksum and
    raises :class:`repro.runtime.errors.CorruptArtifactError` on any
    mismatch or unreadable file; :meth:`load_latest_valid` walks
    snapshots newest-first and returns the first that verifies, so one
    corrupt file costs one snapshot interval, never the whole run.

    Examples
    --------
    >>> import tempfile
    >>> manager = CheckpointManager(tempfile.mkdtemp())
    >>> _ = manager.save(3, {"u": np.ones(2)}, meta={"kind": "demo"})
    >>> manager.load_latest_valid().step
    3
    """

    _META_KEY = "__meta_json__"
    _CHECKSUM_KEY = "__checksum__"

    def __init__(
        self, directory: str | Path, prefix: str = "checkpoint", keep: int = 3
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self.keep = keep

    def path_for(self, step: int) -> Path:
        """Where snapshot ``step`` lives."""
        return self.directory / f"{self.prefix}-{step:08d}.npz"

    def steps(self) -> list[int]:
        """Snapshot step numbers present on disk, ascending."""
        found = []
        for entry in self.directory.glob(f"{self.prefix}-*.npz"):
            token = entry.stem.rsplit("-", 1)[-1]
            if token.isdigit():
                found.append(int(token))
        return sorted(found)

    def save(
        self,
        step: int,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, Any] | None = None,
    ) -> Path:
        """Write snapshot ``step`` atomically; prune beyond ``keep``."""
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        reserved = [name for name in arrays if name.startswith("__")]
        if reserved:
            raise ValueError(f"array names {reserved} are reserved")
        meta_blob = json.dumps({"step": step, **(meta or {})}, sort_keys=True)
        content = {name: np.asarray(value) for name, value in arrays.items()}
        digest = content_checksum({**content, self._META_KEY: meta_blob})
        path = self.path_for(step)
        with atomic_write(path) as tmp:
            with open(tmp, "wb") as handle:
                np.savez(
                    handle,
                    **content,
                    **{
                        self._META_KEY: np.str_(meta_blob),
                        self._CHECKSUM_KEY: np.str_(digest),
                    },
                )
        self._prune()
        return path

    def load(self, step: int) -> Checkpoint:
        """Load and verify snapshot ``step``."""
        return self._read(self.path_for(step))

    def load_latest_valid(self) -> Checkpoint | None:
        """The newest snapshot that passes verification, or ``None``.

        Corrupt snapshots encountered on the way are skipped with a
        warning rather than aborting recovery.
        """
        for step in reversed(self.steps()):
            try:
                return self.load(step)
            except CorruptArtifactError as exc:
                warnings.warn(
                    f"skipping corrupt checkpoint {self.path_for(step)}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return None

    def clear(self) -> None:
        """Delete every snapshot (e.g. after a run completes)."""
        for step in self.steps():
            self.path_for(step).unlink(missing_ok=True)

    def prune(self, keep_last: int) -> int:
        """Delete all but the newest ``keep_last`` snapshots.

        Unlike the automatic per-:meth:`save` pruning (bounded by the
        constructor's ``keep``), this is an explicit maintenance call for
        long-lived owners — the background rebuild loop invokes it after
        every successful generation swap so a session that rebuilds for
        days never grows an unbounded checkpoint directory.  Returns the
        number of snapshots removed.

        Examples
        --------
        >>> import tempfile
        >>> manager = CheckpointManager(tempfile.mkdtemp(), keep=10)
        >>> for step in range(4):
        ...     _ = manager.save(step, {"x": np.ones(1)})
        >>> manager.prune(keep_last=1)
        3
        >>> manager.steps()
        [3]
        """
        if keep_last < 0:
            raise ValueError(f"keep_last must be non-negative, got {keep_last}")
        steps = self.steps()
        doomed = steps[: max(0, len(steps) - keep_last)]
        for step in doomed:
            self.path_for(step).unlink(missing_ok=True)
        return len(doomed)

    # ------------------------------------------------------------------
    def _read(self, path: Path) -> Checkpoint:
        if not path.exists():
            raise CorruptArtifactError(
                f"checkpoint {path} does not exist", path=str(path)
            )
        try:
            with np.load(path, allow_pickle=False) as archive:
                names = set(archive.files)
                if self._CHECKSUM_KEY not in names or self._META_KEY not in names:
                    raise CorruptArtifactError(
                        f"{path} is not a checkpoint (missing integrity fields)",
                        path=str(path),
                    )
                stored = str(archive[self._CHECKSUM_KEY])
                meta_blob = str(archive[self._META_KEY])
                arrays = {
                    name: archive[name].copy()
                    for name in names
                    if not name.startswith("__")
                }
        except CorruptArtifactError:
            raise
        except Exception as exc:  # truncated zip, bad CRC, bad header...
            raise CorruptArtifactError(
                f"cannot read checkpoint {path} ({exc}); the snapshot is "
                "corrupt — resume will fall back to an earlier one, or "
                "rebuild from scratch",
                path=str(path),
            ) from exc
        payload: dict[str, Any] = dict(arrays)
        payload[self._META_KEY] = meta_blob
        if content_checksum(payload) != stored:
            raise CorruptArtifactError(
                f"checksum mismatch in checkpoint {path}; the snapshot is "
                "corrupt — resume will fall back to an earlier one, or "
                "rebuild from scratch",
                path=str(path),
            )
        meta = json.loads(meta_blob)
        step = int(meta.pop("step"))
        return Checkpoint(step=step, arrays=arrays, meta=meta)

    def _prune(self) -> None:
        steps = self.steps()
        for step in steps[: max(0, len(steps) - self.keep)]:
            self.path_for(step).unlink(missing_ok=True)

    def __repr__(self) -> str:
        return (
            f"CheckpointManager({str(self.directory)!r}, "
            f"prefix={self.prefix!r}, keep={self.keep}, "
            f"snapshots={len(self.steps())})"
        )


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class FaultInjector:
    """Deterministic faults at :class:`ExecutionContext` checkpoints.

    Attach one to an :class:`repro.runtime.ExecutionContext` and every
    ``context.checkpoint(what)`` poll — already threaded through each
    compute loop — also asks the injector whether to die here.  Two
    firing modes compose:

    * ``fail_at`` — fire at exactly these 1-based checkpoint ordinals
      (an int or a collection), the workhorse for crash/resume tests;
    * ``probability`` + ``seed`` — fire with a seeded Bernoulli draw per
      checkpoint, for soak-style chaos runs that still replay exactly.

    ``match`` restricts counting to checkpoints whose label contains the
    substring (e.g. ``"GSim+ iteration"``), so injection points are
    stable even when unrelated checkpoints are added elsewhere.

    Examples
    --------
    >>> injector = FaultInjector(fail_at=2)
    >>> injector.on_checkpoint("step")     # checkpoint 1: survives
    >>> try:
    ...     injector.on_checkpoint("step")  # checkpoint 2: fires
    ... except InjectedFault as exc:
    ...     exc.checkpoint_number
    2
    """

    def __init__(
        self,
        fail_at: int | Sequence[int] | None = None,
        probability: float = 0.0,
        seed: int = 0,
        match: str | None = None,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if fail_at is None:
            self.fail_at: frozenset[int] = frozenset()
        elif isinstance(fail_at, int):
            self.fail_at = frozenset({fail_at})
        else:
            self.fail_at = frozenset(int(value) for value in fail_at)
        if any(value < 1 for value in self.fail_at):
            raise ValueError("fail_at ordinals are 1-based and must be >= 1")
        self.probability = float(probability)
        self.match = match
        self._rng = random.Random(seed)
        self.checkpoints_seen = 0
        self.faults_fired: list[tuple[int, str]] = []

    def on_checkpoint(self, what: str = "computation") -> None:
        """Count a checkpoint; raise :class:`InjectedFault` when due."""
        if self.match is not None and self.match not in what:
            return
        self.checkpoints_seen += 1
        ordinal = self.checkpoints_seen
        fire = ordinal in self.fail_at
        if not fire and self.probability > 0.0:
            fire = self._rng.random() < self.probability
        if fire:
            self.faults_fired.append((ordinal, what))
            raise InjectedFault(
                f"injected fault at checkpoint #{ordinal} ({what})",
                checkpoint_number=ordinal,
            )

    def __repr__(self) -> str:
        return (
            f"FaultInjector(fail_at={sorted(self.fail_at)}, "
            f"probability={self.probability}, seen={self.checkpoints_seen}, "
            f"fired={len(self.faults_fired)})"
        )
