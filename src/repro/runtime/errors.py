"""Structured budget failures.

Every cooperative abort in the runtime layer raises a subclass of
:class:`BudgetExceeded` so callers can (a) distinguish *why* a run was
stopped via :attr:`BudgetExceeded.reason` and (b) recover the metrics
collected up to the abort via :attr:`BudgetExceeded.metrics` — a run that
hits its budget still tells you how far it got.

The hierarchy deliberately keeps the historical class names
(:class:`DeadlineExceeded`, :class:`MemoryBudgetExceeded`) that the
baselines and the experiment harness have always raised/caught; they are
now structured instead of bare ``RuntimeError`` subclasses.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "BudgetExceeded",
    "Cancelled",
    "DeadlineExceeded",
    "MemoryBudgetExceeded",
]


class BudgetExceeded(RuntimeError):
    """A computation was stopped by a resource budget or cancellation.

    Attributes
    ----------
    reason:
        One of ``"budget"``, ``"deadline"``, ``"memory"``, ``"cancelled"``.
    metrics:
        Snapshot (see :meth:`repro.runtime.metrics.Metrics.snapshot`) of the
        metrics collected before the abort, or ``None`` when the failure was
        raised outside an :class:`repro.runtime.context.ExecutionContext`.
    """

    reason: str = "budget"

    def __init__(self, message: str, *, metrics: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.metrics = metrics


class DeadlineExceeded(BudgetExceeded):
    """A computation ran (or is predicted to run) past its time budget."""

    reason = "deadline"


class MemoryBudgetExceeded(BudgetExceeded):
    """A working set (live or predicted) exceeds the memory budget."""

    reason = "memory"


class Cancelled(BudgetExceeded):
    """A computation observed its cancellation token at a checkpoint."""

    reason = "cancelled"
