"""Structured budget failures.

Every cooperative abort in the runtime layer raises a subclass of
:class:`BudgetExceeded` so callers can (a) distinguish *why* a run was
stopped via :attr:`BudgetExceeded.reason` and (b) recover the metrics
collected up to the abort via :attr:`BudgetExceeded.metrics` — a run that
hits its budget still tells you how far it got.

The hierarchy deliberately keeps the historical class names
(:class:`DeadlineExceeded`, :class:`MemoryBudgetExceeded`) that the
baselines and the experiment harness have always raised/caught; they are
now structured instead of bare ``RuntimeError`` subclasses.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "BudgetExceeded",
    "Cancelled",
    "CorruptArtifactError",
    "DeadlineExceeded",
    "IndexUnavailableError",
    "InjectedFault",
    "MemoryBudgetExceeded",
    "TransientError",
]


class BudgetExceeded(RuntimeError):
    """A computation was stopped by a resource budget or cancellation.

    Attributes
    ----------
    reason:
        One of ``"budget"``, ``"deadline"``, ``"memory"``, ``"cancelled"``.
    metrics:
        Snapshot (see :meth:`repro.runtime.metrics.Metrics.snapshot`) of the
        metrics collected before the abort, or ``None`` when the failure was
        raised outside an :class:`repro.runtime.context.ExecutionContext`.
    """

    reason: str = "budget"

    def __init__(self, message: str, *, metrics: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.metrics = metrics


class DeadlineExceeded(BudgetExceeded):
    """A computation ran (or is predicted to run) past its time budget."""

    reason = "deadline"


class MemoryBudgetExceeded(BudgetExceeded):
    """A working set (live or predicted) exceeds the memory budget."""

    reason = "memory"


class Cancelled(BudgetExceeded):
    """A computation observed its cancellation token at a checkpoint."""

    reason = "cancelled"


class TransientError(RuntimeError):
    """A failure expected to succeed on retry (I/O hiccup, preemption).

    :class:`repro.runtime.resilience.RetryPolicy` classifies subclasses of
    this (and plain ``OSError``) as retryable; everything else — bad input,
    exhausted budgets, cancellation — is fatal and surfaces immediately.
    """


class InjectedFault(TransientError):
    """A deterministic fault raised by a test-time fault injector.

    Attributes
    ----------
    checkpoint_number:
        Ordinal (1-based) of the :class:`ExecutionContext` checkpoint at
        which the fault fired, so tests can assert *where* a run died.
    """

    def __init__(self, message: str, *, checkpoint_number: int = 0) -> None:
        super().__init__(message)
        self.checkpoint_number = checkpoint_number


class IndexUnavailableError(RuntimeError):
    """A query was shed because no acceptable index generation exists.

    Raised by the live-index lifecycle layer when the serving policy
    cannot be satisfied: a ``shed``-policy query found only generations
    beyond the staleness budget, a ``block``-policy wait timed out, or
    the rebuild circuit breaker is open and no last-good generation is
    available to pin.  Structured so admission-control layers can map it
    to a retryable 503 instead of an opaque failure.

    Attributes
    ----------
    reason:
        One of ``"shed"`` (budget exceeded under a no-wait policy),
        ``"timeout"`` (a blocking wait expired), ``"degraded"`` (the
        circuit breaker is open), ``"rebuild_failed"`` (the rebuild a
        blocking wait depended on failed), or ``"no_generation"``
        (nothing has been built yet).
    staleness:
        JSON-friendly staleness measurement at decision time (see
        :meth:`repro.dynamic.lifecycle.policy.Staleness.to_dict`), or
        ``None`` when no generation exists.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "shed",
        staleness: "dict[str, Any] | None" = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.staleness = staleness


class CorruptArtifactError(RuntimeError):
    """A persisted artifact failed its integrity check on load.

    Raised instead of returning silently-garbled factors when a saved
    ``.npz`` (factors, index, checkpoint) is truncated, bit-flipped, or
    otherwise fails checksum verification.  The documented fallback is to
    rebuild the artifact from its source graphs (``gsim_plus`` /
    ``GSimIndex.build``) — the message names it so operators see the
    remedy next to the failure.

    Attributes
    ----------
    path:
        The offending file, when known.
    """

    def __init__(self, message: str, *, path: "str | None" = None) -> None:
        super().__init__(message)
        self.path = path
