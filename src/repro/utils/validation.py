"""Argument validation helpers shared across the library.

They raise early with actionable messages instead of letting NumPy or SciPy
fail deep inside a kernel.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_integer",
    "check_nonnegative_integer",
    "check_positive_integer",
    "check_probability",
]


def check_integer(value: object, name: str) -> int:
    """Validate ``value`` is an integer (Python or NumPy) and return it as int."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    return int(value)


def check_nonnegative_integer(value: object, name: str) -> int:
    """Validate ``value`` is an integer >= 0 and return it."""
    result = check_integer(value, name)
    if result < 0:
        raise ValueError(f"{name} must be >= 0, got {result}")
    return result


def check_positive_integer(value: object, name: str) -> int:
    """Validate ``value`` is an integer >= 1 and return it."""
    result = check_integer(value, name)
    if result < 1:
        raise ValueError(f"{name} must be >= 1, got {result}")
    return result


def check_probability(value: object, name: str) -> float:
    """Validate ``value`` lies in [0, 1] and return it as float."""
    if not isinstance(value, (int, float, np.floating, np.integer)) or isinstance(
        value, bool
    ):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    result = float(value)
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {result}")
    return result
