"""Argument validation helpers shared across the library.

They raise early with actionable messages instead of letting NumPy or SciPy
fail deep inside a kernel.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_integer",
    "check_nonnegative_integer",
    "check_positive_integer",
    "check_probability",
    "resolve_node_index",
]


def check_integer(value: object, name: str) -> int:
    """Validate ``value`` is an integer (Python or NumPy) and return it as int."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    return int(value)


def check_nonnegative_integer(value: object, name: str) -> int:
    """Validate ``value`` is an integer >= 0 and return it."""
    result = check_integer(value, name)
    if result < 0:
        raise ValueError(f"{name} must be >= 0, got {result}")
    return result


def check_positive_integer(value: object, name: str) -> int:
    """Validate ``value`` is an integer >= 1 and return it."""
    result = check_integer(value, name)
    if result < 1:
        raise ValueError(f"{name} must be >= 1, got {result}")
    return result


def resolve_node_index(
    index: object,
    size: int,
    name: str,
    *,
    full_if_none: bool = False,
    allow_empty: bool = False,
    allow_duplicates: bool = False,
    bounds_error: type[Exception] = IndexError,
) -> np.ndarray:
    """Validate a node-index selection and return it as an int64 array.

    The one bounds/duplicate check shared by the query resolvers
    (``GSimPlus``, top-k retrieval), ``Graph.subgraph``, and the factored
    ``query_block`` path.

    Parameters
    ----------
    index:
        The candidate selection (sequence of ints, ndarray, or ``None``).
    size:
        Number of nodes the ids must index into (valid range ``0..size-1``).
    name:
        Parameter name used in error messages.
    full_if_none:
        When true, ``None`` resolves to ``arange(size)`` ("all nodes").
    allow_empty:
        Whether an empty selection is acceptable.
    allow_duplicates:
        Whether repeated ids are acceptable (e.g. repeated query rows).
    bounds_error:
        Exception type for out-of-range ids — ``IndexError`` by default;
        ``Graph.subgraph`` historically raises ``ValueError``.

    Examples
    --------
    >>> resolve_node_index([2, 0], 3, "queries")
    array([2, 0])
    >>> resolve_node_index(None, 3, "queries", full_if_none=True)
    array([0, 1, 2])
    """
    if index is None:
        if full_if_none:
            return np.arange(size, dtype=np.int64)
        raise ValueError(f"{name} must not be None")
    resolved = np.asarray(index, dtype=np.int64)
    if resolved.ndim != 1:
        raise ValueError(f"{name} must be a non-empty 1-D index array")
    if resolved.size == 0:
        if not allow_empty:
            raise ValueError(f"{name} must be a non-empty 1-D index array")
        return resolved
    if resolved.min() < 0 or resolved.max() >= size:
        raise bounds_error(f"{name} out of range (valid node ids: 0..{size - 1})")
    if not allow_duplicates and np.unique(resolved).size != resolved.size:
        raise ValueError(f"{name} contains duplicates")
    return resolved


def check_probability(value: object, name: str) -> float:
    """Validate ``value`` lies in [0, 1] and return it as float."""
    if not isinstance(value, (int, float, np.floating, np.integer)) or isinstance(
        value, bool
    ):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    result = float(value)
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {result}")
    return result
