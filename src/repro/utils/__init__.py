"""Shared utilities: RNG handling, timing, memory accounting, validation.

These are deliberately small, dependency-light helpers used by every other
subpackage.  Nothing here knows about graphs or similarity models.
"""

from repro.utils.memory import MemoryTracker, dense_matrix_bytes, format_bytes
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, time_call
from repro.utils.validation import (
    check_integer,
    check_nonnegative_integer,
    check_positive_integer,
    check_probability,
    resolve_node_index,
)

__all__ = [
    "MemoryTracker",
    "Stopwatch",
    "check_integer",
    "check_nonnegative_integer",
    "check_positive_integer",
    "check_probability",
    "dense_matrix_bytes",
    "ensure_rng",
    "format_bytes",
    "resolve_node_index",
    "spawn_rngs",
    "time_call",
]
