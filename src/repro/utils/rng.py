"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (graph generators, samplers,
workload builders) accepts a ``seed`` argument that may be ``None``, an
integer, or an already-constructed :class:`numpy.random.Generator`.  This
module centralises the conversion so behaviour is uniform everywhere and
experiments stay reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]

# Union accepted everywhere a seed is expected.
SeedLike = int | np.random.Generator | None


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an existing
        ``Generator`` (returned unchanged so callers can share state).

    Raises
    ------
    TypeError
        If ``seed`` is of an unsupported type (e.g. a float or a legacy
        ``RandomState``), to fail fast rather than silently degrade
        reproducibility.
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children do not
    overlap even when the parent seed is small.  Useful when one experiment
    needs independent randomness for, say, graph generation and query
    sampling.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
