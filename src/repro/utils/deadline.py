"""Cooperative wall-clock deadlines.

Python cannot preempt a running computation, so long-running baselines
(RoleSim's pair loops, NED's tree matching, the dense GSim iteration)
accept an optional :class:`WallClockDeadline` and call :meth:`check` at
natural checkpoints — between iterations, pairs, or rows.  Exceeding the
deadline raises :class:`DeadlineExceeded`, which the experiment runner
records as the paper's "did not finish within one day" outcome.
"""

from __future__ import annotations

import time

__all__ = ["DeadlineExceeded", "WallClockDeadline"]


class DeadlineExceeded(RuntimeError):
    """A computation ran (or is predicted to run) past its time budget."""


class WallClockDeadline:
    """A deadline anchored at construction time.

    Examples
    --------
    >>> deadline = WallClockDeadline(60.0)
    >>> deadline.check("warm-up")  # no-op while within budget
    >>> deadline.expired
    False
    """

    __slots__ = ("limit_seconds", "_start")

    def __init__(self, limit_seconds: float) -> None:
        if limit_seconds <= 0:
            raise ValueError(f"limit_seconds must be positive, got {limit_seconds}")
        self.limit_seconds = float(limit_seconds)
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return time.perf_counter() - self._start

    @property
    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.limit_seconds - self.elapsed

    @property
    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self.remaining < 0.0

    def check(self, what: str = "computation") -> None:
        """Raise :class:`DeadlineExceeded` once the budget is exhausted."""
        if self.expired:
            raise DeadlineExceeded(
                f"{what} exceeded its {self.limit_seconds:.1f}s wall-clock budget"
            )
