"""Compatibility shim — the deadline machinery now lives in
:mod:`repro.runtime.budget` / :mod:`repro.runtime.errors`.

Historic import sites (`from repro.utils.deadline import WallClockDeadline,
DeadlineExceeded`) keep working; new code should import from
:mod:`repro.runtime`, which also provides the richer
:class:`repro.runtime.context.ExecutionContext` wrapper.

Examples
--------
>>> deadline = WallClockDeadline(limit_seconds=60.0)
>>> deadline.expired
False
>>> import repro.runtime
>>> WallClockDeadline is repro.runtime.WallClockDeadline
True
"""

from __future__ import annotations

from repro.runtime.budget import WallClockDeadline
from repro.runtime.errors import DeadlineExceeded

__all__ = ["DeadlineExceeded", "WallClockDeadline"]
