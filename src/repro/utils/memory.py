"""Memory accounting utilities.

Three complementary mechanisms are provided:

* :class:`MemoryTracker` — measures *actual* peak Python allocations using
  :mod:`tracemalloc`, used when reporting the memory figures (Figs 6-8).
* :func:`dense_matrix_bytes` — an *analytic* model of what a dense
  ``n_A x n_B`` similarity matrix would cost; the experiment guards use it
  to predict the out-of-memory crashes the paper reports for GSim/GSVD on
  large graphs without actually exhausting this machine's RAM.
* :func:`resident_nbytes` — what an array actually costs in RAM *right
  now*.  A heap array costs its ``nbytes``; a memory-mapped array costs
  only its resident pages (probed with ``mincore`` where available,
  bounded by :data:`RESIDENT_WINDOW_BYTES` otherwise).  The memory
  ledger charges this instead of ``arr.nbytes`` so an out-of-core run
  over a 100 GiB mapped graph is not billed 100 GiB of phantom RAM.
"""

from __future__ import annotations

import ctypes
import mmap as _mmap_module
import tracemalloc
from typing import Any

import numpy as np

__all__ = [
    "MemoryTracker",
    "RESIDENT_WINDOW_BYTES",
    "dense_matrix_bytes",
    "format_bytes",
    "resident_estimate",
    "resident_nbytes",
]

_FLOAT64_BYTES = 8

# Fallback working-set assumption for a memory-mapped array whose resident
# pages cannot be probed: the kernel keeps roughly one streaming window of
# hot pages per mapping, not the whole file.  64 MiB is deliberately
# generous — real streaming scans (blocked SpMM, top-k row blocks) touch
# far less at a time.
RESIDENT_WINDOW_BYTES = 64 * 1024 * 1024


def _is_file_backed(array: Any) -> bool:
    """Whether ``array``'s buffer ultimately lives in a file mapping.

    ``np.memmap`` arrays advertise themselves, but most views lose the
    subclass (``np.asarray`` of a memmap is a plain ``ndarray``), so the
    ``base`` chain is walked down to the owning object as well.
    """
    seen = array
    while seen is not None:
        if isinstance(seen, (np.memmap, _mmap_module.mmap)):
            return True
        seen = getattr(seen, "base", None)
    return False


def _mincore_resident(array: np.ndarray) -> int | None:
    """Resident bytes of a mapped array via ``mincore(2)``; None if unknown.

    The probe is best-effort: any platform where ``mincore`` is missing or
    rejects the (page-aligned) range simply reports ``None`` and the
    caller falls back to the bounded window estimate.
    """
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        mincore = libc.mincore
    except (OSError, AttributeError):  # pragma: no cover - non-glibc hosts
        return None
    nbytes = int(array.nbytes)
    if nbytes == 0:
        return 0
    page = _mmap_module.PAGESIZE
    address = array.ctypes.data
    start = address - (address % page)
    length = nbytes + (address - start)
    pages = (length + page - 1) // page
    vec = (ctypes.c_ubyte * pages)()
    mincore.argtypes = (
        ctypes.c_void_p,
        ctypes.c_size_t,
        ctypes.POINTER(ctypes.c_ubyte),
    )
    mincore.restype = ctypes.c_int
    if mincore(ctypes.c_void_p(start), ctypes.c_size_t(length), vec) != 0:
        return None
    resident_pages = sum(1 for flag in vec if flag & 1)
    return min(resident_pages * page, nbytes)


def resident_nbytes(array: np.ndarray) -> int:
    """Bytes of RAM ``array`` actually occupies.

    * heap-backed arrays: ``array.nbytes`` — unchanged from the historical
      ledger charge;
    * file-backed (memory-mapped) arrays: the resident page count from
      ``mincore``, falling back to
      ``min(nbytes, RESIDENT_WINDOW_BYTES)`` when the probe is
      unavailable.  Either way the charge can never exceed ``nbytes``.
    """
    array = np.asarray(array)
    if not _is_file_backed(array):
        return int(array.nbytes)
    probed = _mincore_resident(array)
    if probed is not None:
        return probed
    return resident_estimate(int(array.nbytes))  # pragma: no cover


def resident_estimate(num_bytes: int) -> int:
    """Planning estimate for an out-of-core array of ``num_bytes``.

    Used to charge the ledger *before* a mapped working set exists (the
    ledger contract is charge-before-allocate): the cost is capped at one
    streaming window, matching what a blocked scan keeps hot.
    """
    if num_bytes < 0:
        raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
    return min(int(num_bytes), RESIDENT_WINDOW_BYTES)


def dense_matrix_bytes(rows: int, cols: int, itemsize: int = _FLOAT64_BYTES) -> int:
    """Bytes needed to materialise a dense ``rows x cols`` matrix.

    This is the analytic cost model behind the paper's observation that
    GSim and GSVD "crash" on graphs where ``n_A * n_B`` exceeds memory.
    """
    if rows < 0 or cols < 0:
        raise ValueError(f"matrix dimensions must be non-negative, got {rows}x{cols}")
    return rows * cols * itemsize


def format_bytes(num_bytes: float) -> str:
    """Render a byte count using binary units, e.g. ``format_bytes(2048)``
    -> ``'2.0 KiB'``."""
    if num_bytes < 0:
        return "-" + format_bytes(-num_bytes)
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


class MemoryTracker:
    """Context manager measuring peak traced allocations within its block.

    Nested use is supported: the tracker snapshots the current traced size
    on entry and reports the peak *delta* observed while the block runs.

    Examples
    --------
    >>> import numpy as np
    >>> with MemoryTracker() as tracker:
    ...     block = np.ones((128, 128))
    >>> tracker.peak_bytes > 0
    True
    """

    def __init__(self) -> None:
        self.peak_bytes: int = 0
        self._baseline: int = 0
        self._started_tracemalloc = False

    def __enter__(self) -> "MemoryTracker":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._baseline, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        _, peak = tracemalloc.get_traced_memory()
        self.peak_bytes = max(0, peak - self._baseline)
        if self._started_tracemalloc:
            tracemalloc.stop()

    @property
    def peak_mib(self) -> float:
        """Peak delta in mebibytes."""
        return self.peak_bytes / (1024.0 * 1024.0)
