"""Memory accounting utilities.

Two complementary mechanisms are provided:

* :class:`MemoryTracker` — measures *actual* peak Python allocations using
  :mod:`tracemalloc`, used when reporting the memory figures (Figs 6-8).
* :func:`dense_matrix_bytes` — an *analytic* model of what a dense
  ``n_A x n_B`` similarity matrix would cost; the experiment guards use it
  to predict the out-of-memory crashes the paper reports for GSim/GSVD on
  large graphs without actually exhausting this machine's RAM.
"""

from __future__ import annotations

import tracemalloc
from typing import Any

__all__ = ["MemoryTracker", "dense_matrix_bytes", "format_bytes"]

_FLOAT64_BYTES = 8


def dense_matrix_bytes(rows: int, cols: int, itemsize: int = _FLOAT64_BYTES) -> int:
    """Bytes needed to materialise a dense ``rows x cols`` matrix.

    This is the analytic cost model behind the paper's observation that
    GSim and GSVD "crash" on graphs where ``n_A * n_B`` exceeds memory.
    """
    if rows < 0 or cols < 0:
        raise ValueError(f"matrix dimensions must be non-negative, got {rows}x{cols}")
    return rows * cols * itemsize


def format_bytes(num_bytes: float) -> str:
    """Render a byte count using binary units, e.g. ``format_bytes(2048)``
    -> ``'2.0 KiB'``."""
    if num_bytes < 0:
        return "-" + format_bytes(-num_bytes)
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


class MemoryTracker:
    """Context manager measuring peak traced allocations within its block.

    Nested use is supported: the tracker snapshots the current traced size
    on entry and reports the peak *delta* observed while the block runs.

    Examples
    --------
    >>> import numpy as np
    >>> with MemoryTracker() as tracker:
    ...     block = np.ones((128, 128))
    >>> tracker.peak_bytes > 0
    True
    """

    def __init__(self) -> None:
        self.peak_bytes: int = 0
        self._baseline: int = 0
        self._started_tracemalloc = False

    def __enter__(self) -> "MemoryTracker":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._baseline, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        _, peak = tracemalloc.get_traced_memory()
        self.peak_bytes = max(0, peak - self._baseline)
        if self._started_tracemalloc:
            tracemalloc.stop()

    @property
    def peak_mib(self) -> float:
        """Peak delta in mebibytes."""
        return self.peak_bytes / (1024.0 * 1024.0)
