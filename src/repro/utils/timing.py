"""Wall-clock measurement helpers used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Stopwatch", "time_call"]


@dataclass
class Stopwatch:
    """A restartable wall-clock stopwatch with lap recording.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> _ = sw.start()           # returns self for chaining
    >>> _ = sum(range(1000))
    >>> sw.stop() >= 0.0
    True
    """

    _start: float | None = None
    _elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)

    def start(self) -> "Stopwatch":
        """Begin (or resume) timing.  Returns self for chaining."""
        if self._start is not None:
            raise RuntimeError("Stopwatch is already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return total elapsed seconds so far."""
        if self._start is None:
            raise RuntimeError("Stopwatch is not running")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    def lap(self) -> float:
        """Record the current elapsed time as a lap and return it."""
        current = self.elapsed
        self.laps.append(current)
        return current

    def reset(self) -> None:
        """Zero the stopwatch and clear laps."""
        self._start = None
        self._elapsed = 0.0
        self.laps.clear()

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently running."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds, including the in-flight interval if running."""
        if self._start is None:
            return self._elapsed
        return self._elapsed + (time.perf_counter() - self._start)

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def time_call(func: Callable[..., Any], *args: Any, **kwargs: Any) -> tuple[Any, float]:
    """Call ``func(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
