"""Persistence for precomputed low-embeddings.

Iterating GSim+ on a big graph costs minutes; answering query blocks from
the resulting factors costs milliseconds.  Persisting the factors turns
GSim+ into an *index*: compute ``U_K / V_K`` once, then serve arbitrary
``(Q_A, Q_B)`` retrievals from disk-backed state.

Format: a single ``.npz`` holding ``u``, ``v``, ``log_scale``, a
format-version tag (rejected on mismatch so stale indexes fail loudly),
and — since format version 2 — a SHA-256 content checksum.  Writes are
atomic (sibling temp file + ``os.replace``), so a crash mid-save never
clobbers a good artifact; loads verify the checksum and raise
:class:`repro.runtime.errors.CorruptArtifactError` on truncated,
bit-flipped, or otherwise garbled files instead of returning silently
wrong factors.  The recovery path for a corrupt artifact is always the
same: rebuild it from the source graphs with
:func:`repro.core.gsim_plus.gsim_plus` / ``GSimIndex.build``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.embeddings import LowRankFactors
from repro.runtime.errors import CorruptArtifactError
from repro.runtime.resilience import atomic_write, content_checksum

__all__ = ["load_factors", "save_factors"]

# v2 added the content checksum; v1 files still load (unverified).
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def save_factors(factors: LowRankFactors, path: str | Path) -> None:
    """Atomically write ``factors`` to ``path`` as a compressed ``.npz``."""
    path = Path(path)
    content = {
        "u": factors.u,
        "v": factors.v,
        "log_scale": np.float64(factors.log_scale),
        "format_version": np.int64(_FORMAT_VERSION),
    }
    digest = content_checksum(content)
    with atomic_write(path) as tmp:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **content, checksum=np.str_(digest))


def load_factors(path: str | Path) -> LowRankFactors:
    """Read and verify factors previously written by :func:`save_factors`.

    Raises
    ------
    ValueError
        If the file lacks the expected arrays or carries an unsupported
        format version.
    CorruptArtifactError
        If the file is unreadable (truncated, not a zip) or its content
        checksum does not match — rebuild the factors from the source
        graphs in that case.
    """
    path = Path(path)
    wanted = {"u", "v", "log_scale", "format_version", "checksum"}
    try:
        with np.load(path, allow_pickle=False) as archive:
            raw = {
                name: archive[name].copy()
                for name in archive.files
                if name in wanted
            }
    except FileNotFoundError:
        raise
    except Exception as exc:  # truncated zip, bad CRC, bad header...
        raise CorruptArtifactError(
            f"cannot read factors file {path} ({exc}); the artifact is "
            "corrupt — rebuild it from the source graphs with gsim_plus",
            path=str(path),
        ) from exc
    missing = {"u", "v", "log_scale", "format_version"} - set(raw)
    if missing:
        raise ValueError(f"{path} is not a factors file (missing {sorted(missing)})")
    version = int(raw["format_version"])
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"{path} has format version {version}, expected one of "
            f"{_SUPPORTED_VERSIONS}"
        )
    stored = str(raw["checksum"]) if "checksum" in raw else None
    content = {name: raw[name] for name in raw if name != "checksum"}
    if stored is not None and content_checksum(content) != stored:
        raise CorruptArtifactError(
            f"checksum mismatch in factors file {path}; the artifact is "
            "corrupt — rebuild it from the source graphs with gsim_plus",
            path=str(path),
        )
    return LowRankFactors(raw["u"], raw["v"], float(raw["log_scale"]))
