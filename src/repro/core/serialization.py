"""Persistence for precomputed low-embeddings.

Iterating GSim+ on a big graph costs minutes; answering query blocks from
the resulting factors costs milliseconds.  Persisting the factors turns
GSim+ into an *index*: compute ``U_K / V_K`` once, then serve arbitrary
``(Q_A, Q_B)`` retrievals from disk-backed state.

Format: a single ``.npz`` holding ``u``, ``v``, ``log_scale``, and a
format-version tag (rejected on mismatch so stale indexes fail loudly).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.embeddings import LowRankFactors

__all__ = ["load_factors", "save_factors"]

_FORMAT_VERSION = 1


def save_factors(factors: LowRankFactors, path: str | Path) -> None:
    """Write ``factors`` to ``path`` as a compressed ``.npz``."""
    path = Path(path)
    np.savez_compressed(
        path,
        u=factors.u,
        v=factors.v,
        log_scale=np.float64(factors.log_scale),
        format_version=np.int64(_FORMAT_VERSION),
    )


def load_factors(path: str | Path) -> LowRankFactors:
    """Read factors previously written by :func:`save_factors`.

    Raises
    ------
    ValueError
        If the file lacks the expected arrays or carries a different
        format version.
    """
    path = Path(path)
    with np.load(path) as archive:
        missing = {"u", "v", "log_scale", "format_version"} - set(archive.files)
        if missing:
            raise ValueError(f"{path} is not a factors file (missing {sorted(missing)})")
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path} has format version {version}, expected {_FORMAT_VERSION}"
            )
        return LowRankFactors(
            archive["u"].copy(),
            archive["v"].copy(),
            float(archive["log_scale"]),
        )
