"""Persistence for precomputed low-embeddings.

Iterating GSim+ on a big graph costs minutes; answering query blocks from
the resulting factors costs milliseconds.  Persisting the factors turns
GSim+ into an *index*: compute ``U_K / V_K`` once, then serve arbitrary
``(Q_A, Q_B)`` retrievals from disk-backed state.

Format: a single ``.npz`` holding ``u``, ``v``, ``log_scale``, a
format-version tag (rejected on mismatch so stale indexes fail loudly),
since format version 2 a SHA-256 content checksum, and since version 3
an explicit ``dtype`` tag plus optional truncation metadata (retained
rank, discarded energy, tolerance) from rank-bounded recompression.
Version 3 round-trips the factor dtype bit-exactly — a float32 index no
longer silently doubles in size on save/load — and ``load_factors``
verifies the stored arrays actually carry the declared dtype.  Writes are
atomic (sibling temp file + ``os.replace``), so a crash mid-save never
clobbers a good artifact; loads verify the checksum and raise
:class:`repro.runtime.errors.CorruptArtifactError` on truncated,
bit-flipped, or otherwise garbled files instead of returning silently
wrong factors.  The recovery path for a corrupt artifact is always the
same: rebuild it from the source graphs with
:func:`repro.core.gsim_plus.gsim_plus` / ``GSimIndex.build``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.embeddings import LowRankFactors, TruncationInfo
from repro.runtime.errors import CorruptArtifactError
from repro.runtime.resilience import atomic_write, content_checksum

__all__ = ["load_factors", "save_factors"]

# v2 added the content checksum; v3 added the dtype tag and truncation
# metadata.  v1/v2 files still load (assumed float64, no truncation).
_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)


def save_factors(factors: LowRankFactors, path: str | Path) -> None:
    """Atomically write ``factors`` to ``path`` as a compressed ``.npz``.

    The artifact preserves the factor dtype (precision policy) and any
    truncation metadata left by :meth:`LowRankFactors.recompressed`.
    """
    path = Path(path)
    content = {
        "u": factors.u,
        "v": factors.v,
        "log_scale": np.float64(factors.log_scale),
        "format_version": np.int64(_FORMAT_VERSION),
        "dtype": np.str_(factors.dtype.name),
    }
    if factors.truncation is not None:
        info = factors.truncation
        content["truncation"] = np.array(
            [
                float(info.retained_rank),
                float(info.discarded_rank),
                float(info.discarded_energy),
                float(info.tolerance),
            ],
            dtype=np.float64,
        )
    digest = content_checksum(content)
    with atomic_write(path) as tmp:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **content, checksum=np.str_(digest))


def load_factors(path: str | Path) -> LowRankFactors:
    """Read and verify factors previously written by :func:`save_factors`.

    Raises
    ------
    ValueError
        If the file lacks the expected arrays or carries an unsupported
        format version.
    CorruptArtifactError
        If the file is unreadable (truncated, not a zip) or its content
        checksum does not match — rebuild the factors from the source
        graphs in that case.
    """
    path = Path(path)
    wanted = {
        "u",
        "v",
        "log_scale",
        "format_version",
        "checksum",
        "dtype",
        "truncation",
    }
    try:
        with np.load(path, allow_pickle=False) as archive:
            raw = {
                name: archive[name].copy()
                for name in archive.files
                if name in wanted
            }
    except FileNotFoundError:
        raise
    except Exception as exc:  # truncated zip, bad CRC, bad header...
        raise CorruptArtifactError(
            f"cannot read factors file {path} ({exc}); the artifact is "
            "corrupt — rebuild it from the source graphs with gsim_plus",
            path=str(path),
        ) from exc
    missing = {"u", "v", "log_scale", "format_version"} - set(raw)
    if missing:
        raise ValueError(f"{path} is not a factors file (missing {sorted(missing)})")
    version = int(raw["format_version"])
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"{path} has format version {version}, expected one of "
            f"{_SUPPORTED_VERSIONS}"
        )
    stored = str(raw["checksum"]) if "checksum" in raw else None
    content = {name: raw[name] for name in raw if name != "checksum"}
    if stored is not None and content_checksum(content) != stored:
        raise CorruptArtifactError(
            f"checksum mismatch in factors file {path}; the artifact is "
            "corrupt — rebuild it from the source graphs with gsim_plus",
            path=str(path),
        )
    if "dtype" in raw:
        declared = np.dtype(str(raw["dtype"]))
        for name in ("u", "v"):
            if raw[name].dtype != declared:
                raise ValueError(
                    f"{path} declares dtype {declared.name} but array "
                    f"'{name}' is {raw[name].dtype.name}; the artifact is "
                    "inconsistent — rebuild it from the source graphs"
                )
        dtype = declared
    else:
        # v1/v2 artifacts predate the precision policy: float64 only.
        dtype = np.dtype(np.float64)
    truncation = None
    if "truncation" in raw:
        rank, dropped, energy, tol = (float(x) for x in raw["truncation"])
        truncation = TruncationInfo(
            retained_rank=int(rank),
            discarded_rank=int(dropped),
            discarded_energy=energy,
            tolerance=tol,
        )
    return LowRankFactors(
        raw["u"],
        raw["v"],
        float(raw["log_scale"]),
        dtype=dtype,
        truncation=truncation,
    )
