"""GSim+ — Algorithm 1 of the paper.

The iteration maintains the exact low-embeddings of the unnormalised
similarity ``Z_k`` (Theorem 3.1)::

    U_k = [A U_{k-1} | A^T U_{k-1}]     U_0 = 1_{n_A}
    V_k = [B V_{k-1} | B^T V_{k-1}]     V_0 = 1_{n_B}
    S_k = U_k V_k^T / ||U_k V_k^T||_F

so the factor width doubles each iteration (1, 2, 4, ..., 2^K) and the cost
per iteration is two sparse-times-slender products per graph.

Rank-cap hybrid
---------------
Once the doubled width would exceed ``min(n_A, n_B)`` the low-dimensional
representation stops paying for itself; the paper (§5.2.1, point 6) states
GSim+ then "reduces to the traditional GSim without dimensionality
reduction" so its cost never exceeds GSim's.  Three behaviours are offered:

* ``"dense"`` (paper's description, the default): materialise ``Z`` and
  continue with normalised dense updates.
* ``"qr-compress"``: losslessly shrink the factors to width
  ``min(n_A, n_B)`` with one thin QR and keep iterating in factored form —
  same asymptotic cost, lower constant memory; used by the ablation bench.
* ``"none"``: let the width keep doubling (exact but wasteful; exists so
  tests can check the other two match it).

Recompression and precision
---------------------------
Most of the doubled width carries negligible spectral energy, so with
``recompress_tol`` set the solver recompresses the factors *between*
doubling steps — QR on ``U_k``/``V_k``, SVD of the small core
``R_U R_V^T``, truncation at the relative tolerance (see
:meth:`repro.core.embeddings.LowRankFactors.recompressed`) — bounding the
width by numerical rank instead of the ``2^k`` schedule.  Per-iteration
truncation at tolerance ``tol`` perturbs the final normalised similarity
by at most ~``K * tol`` (first order), which the default
:data:`DEFAULT_RECOMPRESS_TOL` keeps far below the Theorem 4.2 spectral
bound.  With recompression active the dense rank-cap trigger is keyed on
the *numerical rank* (the recompressed width), so the fallback only
engages when the similarity genuinely has no slender representation.

``precision`` selects the factor dtype: ``"float64"`` (exact default —
bit-identical to the historical behaviour) or ``"float32"`` (opt-in
iterate/scan fast path: half the memory traffic through the SpMM and
top-k hot loops, at ~1e-6 relative error).  The policy is an explicit
attribute of the factors and is preserved by checkpoints and artifacts.

Normalisation
-------------
Algorithm 1 (lines 6-7) normalises the *extracted query block* by the
block's own Frobenius norm — that is what ``normalization="block"``
returns and is the default, matching the paper's Example 3.2 (whose
``||Z||_F = 1474`` is the norm of the 4x3 block).  With
``normalization="global"`` the block is instead divided by the full
``||U_K V_K^T||_F``, computed in factored form via the Gram trick, which
makes partial queries consistent with entries of the full matrix.  The two
coincide when the query sets cover all nodes.

Resilience
----------
A K-iteration build on a billion-scale pair runs for long enough to be
interrupted — so the iteration checkpoints.  Pass ``checkpoints=`` (a
:class:`repro.runtime.CheckpointManager` or a directory) and every
``checkpoint_every``-th iterate is snapshotted atomically with a content
checksum; pass ``resume_from=`` and the solver restores the latest *valid*
snapshot and continues from iteration ``k`` with bit-identical results —
the iteration is a deterministic function of its state, and the state
round-trips exactly through ``.npz``.  A numeric-health guard (on by
default) additionally repairs non-finite factor updates — NaNs zeroed,
overflows clamped to the largest finite magnitude present — recording the
repair in ``gsim_plus.nonfinite_repairs`` instead of propagating NaN into
every downstream score.
"""

from __future__ import annotations

import math
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

import numpy as np
import scipy.sparse as sp

from repro.core.embeddings import LowRankFactors, TruncationInfo
from repro.graphs.graph import Graph
from repro.runtime import ExecutionContext
from repro.runtime import procpool
from repro.runtime.parallel import WorkerPool, shard_rows_by_nnz
from repro.runtime.resilience import Checkpoint, CheckpointManager
from repro.runtime.trace import NULL_TRACER
from repro.utils.memory import dense_matrix_bytes, resident_estimate
from repro.utils.validation import check_nonnegative_integer, resolve_node_index

__all__ = ["DEFAULT_RECOMPRESS_TOL", "GSimPlus", "GSimPlusResult", "gsim_plus"]

_RANK_CAP_MODES = ("dense", "qr-compress", "none")
_NORMALIZATIONS = ("block", "global")
_PRECISIONS = ("float64", "float32")

# Default relative truncation tolerance for --recompress / recompress_tol.
# Over K <= ~100 iterations the accumulated perturbation K * tol stays
# below 1e-6 — orders of magnitude under the Theorem 4.2 bound on every
# bench profile, and well under float32 resolution on that path.
DEFAULT_RECOMPRESS_TOL = 1e-8


def _as_manager(
    checkpoints: CheckpointManager | str | Path | None,
) -> CheckpointManager | None:
    """Accept a manager or a bare directory path everywhere."""
    if checkpoints is None or isinstance(checkpoints, CheckpointManager):
        return checkpoints
    return CheckpointManager(checkpoints)


@dataclass
class GSimPlusResult:
    """Output of a GSim+ run.

    Attributes
    ----------
    similarity:
        The ``|Q_A| x |Q_B|`` normalised similarity block ``S_K``.
    iterations:
        Number of iterations actually performed.
    final_width:
        Factor width at the end (``min(2^K, n_A, n_B)`` unless capped off).
    z_frobenius_log:
        ``log ||Z_K||_F`` of the *full* unnormalised matrix — reported in
        log-space because ``Z_K`` grows geometrically.
    used_dense_fallback:
        True when the dense rank-cap hybrid engaged.
    precision:
        The factor dtype policy the run used (``"float64"``/``"float32"``).
    truncation:
        :class:`repro.core.embeddings.TruncationInfo` of the final
        factors when recompression was active, else ``None``.
    """

    similarity: np.ndarray
    iterations: int
    final_width: int
    z_frobenius_log: float
    used_dense_fallback: bool
    precision: str = "float64"
    truncation: "TruncationInfo | None" = None


@dataclass
class _IterationState:
    """Internal per-iteration snapshot yielded by :meth:`GSimPlus.iterate`.

    ``dense_log_norm`` accumulates ``log ||Z_k||_F`` of the *unnormalised*
    iterate across the dense rank-cap regime (each dense step renormalises
    to unit Frobenius, so the true norm only survives in log-space here).
    """

    k: int
    factors: LowRankFactors | None
    dense_z: np.ndarray | None
    dense_log_norm: float = 0.0

    def similarity_matrix(self) -> np.ndarray:
        """The full normalised ``S_k`` (materialises; small graphs only)."""
        if self.dense_z is not None:
            norm = float(np.linalg.norm(self.dense_z))
            if norm == 0.0:
                raise ZeroDivisionError("similarity iterate collapsed to zero")
            return self.dense_z / norm
        assert self.factors is not None
        dense = self.factors.materialize(include_scale=False)
        norm = float(np.linalg.norm(dense))
        if norm == 0.0:
            raise ZeroDivisionError("similarity iterate collapsed to zero")
        return dense / norm


class GSimPlus:
    """Reusable GSim+ solver bound to a graph pair ``(G_A, G_B)``.

    Parameters
    ----------
    graph_a, graph_b:
        The two graphs.  Only their (sparse) adjacency matrices are used.
    rank_cap:
        One of ``"dense"`` (paper default), ``"qr-compress"``, ``"none"``.
    normalization:
        ``"block"`` (Algorithm 1, default) or ``"global"``.
    numeric_guard:
        When True (default), non-finite entries appearing in an iteration
        update are repaired — NaNs zeroed, infinities clamped to the
        largest finite magnitude in the same factor — and the event is
        counted in ``gsim_plus.nonfinite_repairs`` instead of the NaN
        poisoning every subsequent iterate.
    recompress_tol:
        When set, recompress the factors after every doubling step at
        this relative tolerance (see module docstring), bounding the
        width by numerical rank.  ``None`` (default) keeps the exact
        ``2^k`` schedule — bit-identical to the historical behaviour.
        Use :data:`DEFAULT_RECOMPRESS_TOL` for a safe accuracy/speed
        trade-off.
    precision:
        ``"float64"`` (exact default) or ``"float32"`` (the opt-in
        bandwidth-saving iterate path; the sparse operands and every
        preallocated step buffer follow the policy).
    max_workers:
        Worker count (or a :class:`repro.runtime.WorkerPool`) for the
        row-sharded SpMM steps.  The default ``None`` means serial; with
        ``w > 1`` workers each iteration splits the output rows into
        nnz-balanced contiguous shards computed concurrently and written
        into one preallocated output.  Row sharding never reorders any
        per-row accumulation, so results are **bit-identical** to the
        serial path for every worker count.
    backend:
        ``"thread"`` (default) or ``"process"``.  The process backend
        runs the same row shards in pool *processes*, shipping operands
        as (path, row-range) descriptors (:mod:`repro.runtime.procpool`)
        instead of pickled arrays: mmap-backed graphs
        (:class:`repro.graphs.mmap_csr.MmapCSRGraph`) hand their on-disk
        CSR arrays straight to the workers, in-memory operands are
        spilled once per solver into a scratch directory, and per-step
        factor outputs live in shared scratch memmaps the ledger charges
        at their *resident* (not virtual) size.  Same kernels, same
        shard splits, same per-row accumulation order — results stay
        bit-identical to the thread and serial paths.  Ignored when
        ``max_workers`` is already a :class:`WorkerPool` (its own
        backend wins).

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> a = Graph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
    >>> b = Graph.from_edges(2, [(0, 1)])
    >>> solver = GSimPlus(a, b)
    >>> result = solver.run(iterations=4, queries_a=[0, 1], queries_b=[0, 1])
    >>> result.similarity.shape
    (2, 2)
    """

    def __init__(
        self,
        graph_a: Graph,
        graph_b: Graph,
        rank_cap: str = "dense",
        normalization: str = "block",
        initial_factors: tuple[np.ndarray, np.ndarray] | None = None,
        numeric_guard: bool = True,
        recompress_tol: float | None = None,
        precision: str = "float64",
        max_workers: "WorkerPool | int | None" = None,
        backend: str = "thread",
    ) -> None:
        if rank_cap not in _RANK_CAP_MODES:
            raise ValueError(
                f"rank_cap must be one of {_RANK_CAP_MODES}, got {rank_cap!r}"
            )
        if normalization not in _NORMALIZATIONS:
            raise ValueError(
                f"normalization must be one of {_NORMALIZATIONS}, got {normalization!r}"
            )
        if precision not in _PRECISIONS:
            raise ValueError(
                f"precision must be one of {_PRECISIONS}, got {precision!r}"
            )
        if recompress_tol is not None and not (0.0 < recompress_tol < 1.0):
            raise ValueError(
                f"recompress_tol must be in (0, 1) or None, got {recompress_tol}"
            )
        if graph_a.num_nodes == 0 or graph_b.num_nodes == 0:
            raise ValueError("both graphs must have at least one node")
        # The four CSR operands of every step are converted exactly once
        # here (``Graph`` caches the transpose, so repeated solvers over
        # the same graph share it); ``gsim_plus.transpose_cache_hits``
        # counts each step's reuse of the pre-converted A^T/B^T.  Under
        # the float32 policy the operands are cast once so every SpMM
        # moves half the bytes.
        self.precision = precision
        self._dtype = np.dtype(precision)
        self._a: sp.csr_matrix = graph_a.adjacency
        self._a_t: sp.csr_matrix = graph_a.adjacency_t
        self._b: sp.csr_matrix = graph_b.adjacency
        self._b_t: sp.csr_matrix = graph_b.adjacency_t
        if self._dtype != np.float64:
            self._a = self._a.astype(self._dtype)
            self._a_t = self._a_t.astype(self._dtype)
            self._b = self._b.astype(self._dtype)
            self._b_t = self._b_t.astype(self._dtype)
        self.n_a = graph_a.num_nodes
        self.n_b = graph_b.num_nodes
        self.rank_cap = rank_cap
        self.normalization = normalization
        self.numeric_guard = numeric_guard
        self.recompress_tol = (
            None if recompress_tol is None else float(recompress_tol)
        )
        self._pool = WorkerPool.resolve(max_workers, backend=backend)
        # name -> list[(start, stop, csr row slice)], built on first
        # parallel step and reused every iteration thereafter.
        self._shard_cache: dict[str, list[tuple[int, int, sp.csr_matrix]]] = {}
        self._dense_shards: (
            list[tuple[int, int, sp.csr_matrix, sp.csr_matrix]] | None
        ) = None
        # Process-backend state: the source graphs (for direct mmap-CSR
        # descriptors), the lazy scratch directory, the per-operand
        # descriptor cache, the row-range caches (process shards ship
        # ranges, not slices), and the previous step's factor mappings
        # (so step k+1 reads step k's output file instead of respilling).
        self._graph_a = graph_a
        self._graph_b = graph_b
        self._scratch: tempfile.TemporaryDirectory | None = None
        self._operand_refs: dict[str, procpool.CsrRef] = {}
        self._range_cache: dict[str, list[tuple[int, int]]] = {}
        self._dense_ranges: list[tuple[int, int]] | None = None
        self._proc_prev: list[tuple[np.ndarray, procpool.ArrayRef]] = []
        self._proc_unlink: list[str] = []
        self._step_counter = 0
        self._initial = self._resolve_initial(initial_factors)

    def _resolve_initial(
        self, initial_factors: tuple[np.ndarray, np.ndarray] | None
    ) -> LowRankFactors:
        """Validate the content prior (Z_0 = F_A F_B^T) or default to 1s.

        Blondel et al. note GSim "can be easily adapted to content-based
        similarity measures": instead of starting from the all-ones Z_0,
        start from an outer product of per-node feature matrices
        ``F_A (n_A x r)`` and ``F_B (n_B x r)``, e.g. rows of normalised
        content embeddings.  Theorem 3.1's induction never uses the
        specific Z_0, so the factored iteration stays exact; the width now
        grows as ``r * 2^k``.
        """
        if initial_factors is None:
            return LowRankFactors.ones(self.n_a, self.n_b, dtype=self._dtype)
        features_a, features_b = initial_factors
        features_a = np.atleast_2d(np.asarray(features_a, dtype=self._dtype))
        features_b = np.atleast_2d(np.asarray(features_b, dtype=self._dtype))
        if features_a.shape[0] != self.n_a:
            raise ValueError(
                f"initial F_A has {features_a.shape[0]} rows for a graph "
                f"with {self.n_a} nodes"
            )
        if features_b.shape[0] != self.n_b:
            raise ValueError(
                f"initial F_B has {features_b.shape[0]} rows for a graph "
                f"with {self.n_b} nodes"
            )
        if features_a.shape[1] != features_b.shape[1]:
            raise ValueError(
                f"feature widths differ: {features_a.shape[1]} vs "
                f"{features_b.shape[1]}"
            )
        if not (np.isfinite(features_a).all() and np.isfinite(features_b).all()):
            raise ValueError("initial factors contain non-finite values")
        return LowRankFactors(features_a.copy(), features_b.copy())

    # ------------------------------------------------------------------
    # Iteration core
    # ------------------------------------------------------------------
    def _healed(
        self, array: np.ndarray, context: ExecutionContext | None
    ) -> np.ndarray:
        """Repair non-finite entries in an iteration update (in place).

        NaNs become 0; ±inf is clamped to the largest finite magnitude
        present (preserving the update's scale, unlike ``nan_to_num``'s
        float-max default, which would flush everything else to zero at
        the next rescale).  Each repair is counted in
        ``gsim_plus.nonfinite_repairs``.
        """
        finite = np.isfinite(array)
        if finite.all():
            return array
        repaired = int(array.size - np.count_nonzero(finite))
        finite_abs = np.abs(array[finite])
        cap = float(finite_abs.max()) if finite_abs.size else 1.0
        if cap == 0.0:
            cap = 1.0
        np.nan_to_num(array, copy=False, nan=0.0, posinf=cap, neginf=-cap)
        if context is not None:
            context.metrics.increment("gsim_plus.nonfinite_repairs", repaired)
            context.tracer.event(
                "gsim_plus.nonfinite_repair", severity="warning", repaired=repaired
            )
        return array

    def _shards(self, name: str) -> list[tuple[int, int, sp.csr_matrix]]:
        """Cached nnz-balanced row shards of one CSR operand.

        Slicing a CSR by rows copies the slice, so the cuts are made once
        per solver (not once per iteration) and reused by every step.
        """
        cached = self._shard_cache.get(name)
        if cached is not None:
            return cached
        matrix = {"a": self._a, "a_t": self._a_t, "b": self._b, "b_t": self._b_t}[name]
        shards = [
            (start, stop, matrix[start:stop])
            for start, stop in shard_rows_by_nnz(
                matrix.indptr, self._pool.max_workers
            )
        ]
        self._shard_cache[name] = shards
        return shards

    def _count_shard_cache(self, context: ExecutionContext | None, names: int) -> None:
        if context is not None:
            context.metrics.increment("gsim_plus.shard_cache_hits", names)

    # ------------------------------------------------------------------
    # Process-backend plumbing (descriptors instead of shared memory)
    # ------------------------------------------------------------------
    def _scratch_dir(self) -> Path:
        """Lazy per-solver scratch directory for spilled operands and
        step outputs; removed with the solver (TemporaryDirectory GC)."""
        if self._scratch is None:
            self._scratch = tempfile.TemporaryDirectory(prefix="gsimplus-proc-")
        return Path(self._scratch.name)

    def _operand_ref(self, name: str) -> procpool.CsrRef:
        """Shard descriptor of one CSR operand, built once per solver.

        An mmap-CSR graph at the solver's dtype hands out its on-disk
        arrays directly (nothing is copied or written); any other
        operand is spilled to scratch ``.npy`` files exactly once.
        """
        ref = self._operand_refs.get(name)
        if ref is not None:
            return ref
        graph = self._graph_a if name in ("a", "a_t") else self._graph_b
        direct = getattr(graph, "csr_ref", None)
        if direct is not None and self._dtype == np.float64:
            ref = direct("adj_t" if name.endswith("_t") else "adj")
        else:
            matrix = {
                "a": self._a, "a_t": self._a_t, "b": self._b, "b_t": self._b_t
            }[name]
            ref = procpool.spill_csr(matrix, self._scratch_dir(), f"op_{name}")
        self._operand_refs[name] = ref
        return ref

    def _ranges(self, name: str) -> list[tuple[int, int]]:
        """Cached nnz-balanced row ranges of one operand (the process
        twin of :meth:`_shards` — descriptors ship ranges, not slices)."""
        cached = self._range_cache.get(name)
        if cached is not None:
            return cached
        matrix = {"a": self._a, "a_t": self._a_t, "b": self._b, "b_t": self._b_t}[name]
        ranges = shard_rows_by_nnz(matrix.indptr, self._pool.max_workers)
        self._range_cache[name] = ranges
        return ranges

    def _dense_pair_ranges(self) -> list[tuple[int, int]]:
        cached = self._dense_ranges
        if cached is None:
            combined = np.asarray(self._a.indptr, dtype=np.int64) + np.asarray(
                self._a_t.indptr, dtype=np.int64
            )
            cached = shard_rows_by_nnz(combined, self._pool.max_workers)
            self._dense_ranges = cached
        return cached

    def _dense_input_ref(self, array: np.ndarray, stem: str) -> procpool.ArrayRef:
        """Descriptor for a dense step input: the previous step's output
        mapping is referenced in place; anything else is spilled."""
        for prev_array, prev_ref in self._proc_prev:
            if array is prev_array or array.base is prev_array:
                return prev_ref
        path = self._scratch_dir() / f"{stem}_{self._step_counter}.npy"
        self._proc_unlink.append(str(path))
        return procpool.spill_array(array, path)

    def _drain_unlink(self, keep: list[str]) -> None:
        """Remove scratch files from finished generations.

        Linux keeps an unlinked file's pages alive for every open
        mapping, so arrays still referencing a removed file stay valid;
        the disk footprint is bounded at two factor generations.
        """
        for path in self._proc_unlink:
            if path not in keep:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        self._proc_unlink = [p for p in self._proc_unlink if p in keep]

    def _step_factors_process(
        self, factors: LowRankFactors, context: ExecutionContext | None
    ) -> LowRankFactors:
        """The Eq.(8)/(9) doubling step on the process pool.

        Inputs and outputs are scratch memmaps; each worker computes
        ``out[start:stop, off:off+w] = M[start:stop] @ dense`` from
        descriptors (:func:`repro.runtime.procpool.spmm_shard_task`) —
        the same kernel, shard splits, and per-row accumulation order as
        the thread path, so the result is bit-identical.  Healing and
        rescaling happen *in place* on the shared mapping (the in-place
        divide performs the identical float ops as ``rescaled()``'s
        out-of-place divide), keeping the new factors file-backed and
        spillable.
        """
        self._step_counter += 1
        k = self._step_counter
        width = factors.width
        scratch = self._scratch_dir()
        u_in = self._dense_input_ref(factors.u, "fac_in_u")
        v_in = self._dense_input_ref(factors.v, "fac_in_v")
        new_u, u_ref = procpool.create_output(
            scratch / f"fac_u_{k}.npy", (self.n_a, 2 * width), factors.dtype
        )
        new_v, v_ref = procpool.create_output(
            scratch / f"fac_v_{k}.npy", (self.n_b, 2 * width), factors.dtype
        )
        tasks = []
        for name, dense_ref, out_ref in (
            ("a", u_in, u_ref),
            ("a_t", u_in, u_ref),
            ("b", v_in, v_ref),
            ("b_t", v_in, v_ref),
        ):
            offset = width if name.endswith("_t") else 0
            operand = self._operand_ref(name)
            for start, stop in self._ranges(name):
                tasks.append(
                    (operand, start, stop, dense_ref, out_ref, offset, width)
                )
        self._count_shard_cache(context, 2)
        self._pool.map(
            procpool.spmm_shard_task, tasks, context=context,
            what="GSim+ SpMM shards",
        )
        if context is not None:
            context.metrics.increment("gsim_plus.transpose_cache_hits", 2)
        if self.numeric_guard:
            self._healed(new_u, context)
            self._healed(new_v, context)
        max_u = float(np.abs(new_u).max(initial=0.0))
        max_v = float(np.abs(new_v).max(initial=0.0))
        if max_u == 0.0 or max_v == 0.0:
            # Degenerate iterate; delegate to the (copying) generic path.
            return LowRankFactors(new_u, new_v, factors.log_scale).rescaled()
        new_u /= max_u
        new_v /= max_v
        new_u.flush()
        new_v.flush()
        result = LowRankFactors(
            new_u,
            new_v,
            factors.log_scale + math.log(max_u) + math.log(max_v),
        )
        self._proc_prev = [(result.u, u_ref), (result.v, v_ref)]
        self._proc_unlink.extend([u_ref.path, v_ref.path])
        self._drain_unlink(keep=[u_ref.path, v_ref.path])
        return result

    def _step_dense_process(
        self, z: np.ndarray, context: ExecutionContext | None
    ) -> np.ndarray:
        """``A Z B^T + A^T Z B`` on the process pool — the descriptor twin
        of :meth:`_step_dense_sharded`, with the three dense temporaries
        (``P``, ``Q``, the update) living in scratch memmaps the workers
        write through shared mappings."""
        self._step_counter += 1
        k = self._step_counter
        scratch = self._scratch_dir()
        z_t = np.ascontiguousarray(z.T)
        zt_path = scratch / f"dense_zt_{k}.npy"
        zt_ref = procpool.spill_array(z_t, zt_path)
        p, p_ref = procpool.create_output(
            scratch / f"dense_p_{k}.npy", (self.n_a, self.n_b), z.dtype
        )
        q, q_ref = procpool.create_output(
            scratch / f"dense_q_{k}.npy", (self.n_a, self.n_b), z.dtype
        )
        stage1 = [
            (self._operand_ref("b"), start, stop, zt_ref, p_ref)
            for start, stop in self._ranges("b")
        ] + [
            (self._operand_ref("b_t"), start, stop, zt_ref, q_ref)
            for start, stop in self._ranges("b_t")
        ]
        self._count_shard_cache(context, 2)
        self._pool.map(
            procpool.spmm_transposed_shard_task, stage1, context=context,
            what="GSim+ dense stage 1",
        )
        updated, out_ref = procpool.create_output(
            scratch / f"dense_out_{k}.npy", (self.n_a, self.n_b), z.dtype
        )
        a_ref, a_t_ref = self._operand_ref("a"), self._operand_ref("a_t")
        stage2 = [
            (a_ref, a_t_ref, start, stop, p_ref, q_ref, out_ref)
            for start, stop in self._dense_pair_ranges()
        ]
        self._count_shard_cache(context, 1)
        self._pool.map(
            procpool.spmm_pair_sum_task, stage2, context=context,
            what="GSim+ dense stage 2",
        )
        # The caller renormalises out-of-place (`updated / norm` -> heap
        # array), so every scratch file of this step can go immediately;
        # the open mappings keep the pages alive until then.
        for path in (zt_path, p_ref.path, q_ref.path, out_ref.path):
            try:
                os.unlink(path)
            except OSError:
                pass
        return updated

    def _dense_fallback_charge(self) -> int:
        """Ledger charge for the dense rank-cap working set: the iterate
        plus one update temporary.  On the process backend the temporary
        is a spillable scratch memmap, charged at its bounded resident
        estimate rather than its virtual size."""
        each = dense_matrix_bytes(self.n_a, self.n_b, self._dtype.itemsize)
        if self._pool.process_parallel:
            return each + resident_estimate(each)
        return 2 * each

    def _spmm_pair_into(
        self,
        name: str,
        name_t: str,
        matrix: sp.csr_matrix,
        matrix_t: sp.csr_matrix,
        dense: np.ndarray,
        out: np.ndarray,
        context: ExecutionContext | None,
    ) -> None:
        """``out = [M @ dense | M^T @ dense]`` written into a preallocated
        output — serial in one thread, or row-sharded across the pool.

        Each output row is a fixed-order accumulation over one CSR row
        regardless of sharding, so the parallel result is bit-identical
        to the serial one.
        """
        width = dense.shape[1]
        if self._pool.serial:
            out[:, :width] = matrix @ dense
            out[:, width:] = matrix_t @ dense
            return
        tasks: list[tuple[int, int, sp.csr_matrix, int]] = []
        for start, stop, shard in self._shards(name):
            tasks.append((start, stop, shard, 0))
        for start, stop, shard in self._shards(name_t):
            tasks.append((start, stop, shard, width))
        self._count_shard_cache(context, 2)

        def _run(task: tuple[int, int, sp.csr_matrix, int]) -> None:
            start, stop, shard, offset = task
            out[start:stop, offset : offset + width] = shard @ dense

        self._pool.map(_run, tasks, context=context, what="GSim+ SpMM shards")

    def _step_factors(
        self, factors: LowRankFactors, context: ExecutionContext | None = None
    ) -> LowRankFactors:
        """One Eq.(8)/(9) doubling step in factored form (lines 3-5).

        The doubled factors are written straight into one preallocated
        ``(n, 2w)`` output (no ``np.hstack`` re-copy), row-sharded across
        the worker pool when one is configured.
        """
        if self._pool.process_parallel:
            return self._step_factors_process(factors, context)
        width = factors.width
        new_u = np.empty((self.n_a, 2 * width), dtype=factors.dtype)
        new_v = np.empty((self.n_b, 2 * width), dtype=factors.dtype)
        self._spmm_pair_into(
            "a", "a_t", self._a, self._a_t, factors.u, new_u, context
        )
        self._spmm_pair_into(
            "b", "b_t", self._b, self._b_t, factors.v, new_v, context
        )
        if context is not None:
            context.metrics.increment("gsim_plus.transpose_cache_hits", 2)
        if self.numeric_guard:
            new_u = self._healed(new_u, context)
            new_v = self._healed(new_v, context)
        return LowRankFactors(new_u, new_v, factors.log_scale).rescaled()

    def _recompress(
        self,
        factors: LowRankFactors,
        k: int,
        context: ExecutionContext | None,
    ) -> LowRankFactors:
        """Rank-bound the stepped factors at :attr:`recompress_tol`.

        The QR workspace (two orthonormal factors the same size as the
        input plus three ``w x w`` core matrices) is charged against the
        memory ledger for the duration of the decomposition, so budget
        breaches surface before the allocation instead of as a MemoryError
        inside LAPACK.  Truncation metadata lands in ``gsim_plus.*``
        metrics and a ``gsim_plus.recompress`` trace event.
        """
        assert self.recompress_tol is not None
        width = factors.width
        workspace = factors.nbytes + 3 * width * width * factors.dtype.itemsize
        if context is not None:
            context.charge(workspace, f"GSim+ recompression (k={k})")
        try:
            compact = factors.recompressed(self.recompress_tol)
        finally:
            if context is not None:
                context.release(workspace)
        info = compact.truncation
        assert info is not None
        if context is not None:
            context.metrics.increment("gsim_plus.recompressions")
            context.metrics.observe(
                "gsim_plus.recompress_rank", info.retained_rank
            )
            context.metrics.set_gauge(
                "gsim_plus.recompress_discarded_energy", info.discarded_energy
            )
            context.tracer.event(
                "gsim_plus.recompress",
                severity="info",
                k=k,
                width_before=width,
                retained_rank=info.retained_rank,
                discarded_energy=info.discarded_energy,
            )
        return compact

    def _step_dense(
        self, z: np.ndarray, context: ExecutionContext | None = None
    ) -> tuple[np.ndarray, float]:
        """One Eq.(6a) step on a dense Z, renormalised to unit Frobenius.

        Per-iteration scalar renormalisation is equivalent to normalising
        once at the end (Eq.(2) vs Eq.(6) in the paper) and prevents
        overflow in the dense regime.  Returns ``(normalised_z, log(norm))``
        so callers can accumulate the exact log-norm of the unnormalised
        iterate across the dense regime.
        """
        # A Z B^T + A^T Z B, staying in sparse-times-dense kernels:
        # Z B^T = (B Z^T)^T and Z B = (B^T Z^T)^T.
        if self._pool.serial:
            updated = self._a @ (self._b @ z.T).T + self._a_t @ (self._b_t @ z.T).T
        elif self._pool.process_parallel:
            updated = self._step_dense_process(z, context)
        else:
            updated = self._step_dense_sharded(z, context)
        if context is not None:
            context.metrics.increment("gsim_plus.transpose_cache_hits", 2)
        if self.numeric_guard:
            updated = self._healed(updated, context)
        with np.errstate(over="ignore"):
            norm = float(np.linalg.norm(updated))
        log_shift = 0.0
        if self.numeric_guard and not np.isfinite(norm):
            # Entries are finite but their sum of squares overflows; shift
            # the scale down before taking the norm (exact up to rounding,
            # like the factored path's per-step rescale).
            amax = float(np.abs(updated).max())
            updated = updated / amax
            log_shift = float(np.log(amax))
            norm = float(np.linalg.norm(updated))
            if context is not None:
                context.metrics.increment("gsim_plus.norm_rescales")
        if norm == 0.0:
            raise ZeroDivisionError(
                "similarity iterate collapsed to zero (disconnected inputs?)"
            )
        return updated / norm, float(np.log(norm)) + log_shift

    def _step_dense_sharded(
        self, z: np.ndarray, context: ExecutionContext | None
    ) -> np.ndarray:
        """``A Z B^T + A^T Z B`` with both SpMM stages row-sharded.

        Stage 1 computes ``P = Z B^T`` and ``Q = Z B`` by sharding the
        rows of ``B``/``B^T`` and writing each transposed shard product
        into a column slice, producing C-contiguous operands for stage 2
        (the serial path pays a hidden full-copy conversion inside scipy
        for each F-ordered transpose instead).  Stage 2 shards the output
        rows over ``A``/``A^T`` jointly.  Every output row is the same
        fixed-order accumulation as the serial expression, so the result
        is bit-identical for any worker count.
        """
        z_t = np.ascontiguousarray(z.T)
        p = np.empty((self.n_a, self.n_b), dtype=z.dtype)
        q = np.empty((self.n_a, self.n_b), dtype=z.dtype)
        stage1: list[tuple[np.ndarray, int, int, sp.csr_matrix]] = []
        for start, stop, shard in self._shards("b"):
            stage1.append((p, start, stop, shard))
        for start, stop, shard in self._shards("b_t"):
            stage1.append((q, start, stop, shard))
        self._count_shard_cache(context, 2)

        def _run_stage1(task: tuple[np.ndarray, int, int, sp.csr_matrix]) -> None:
            out, start, stop, shard = task
            out[:, start:stop] = (shard @ z_t).T

        self._pool.map(
            _run_stage1, stage1, context=context, what="GSim+ dense stage 1"
        )

        updated = np.empty((self.n_a, self.n_b), dtype=z.dtype)
        pairs = self._dense_pair_shards()
        self._count_shard_cache(context, 1)

        def _run_stage2(
            task: tuple[int, int, sp.csr_matrix, sp.csr_matrix],
        ) -> None:
            start, stop, a_shard, a_t_shard = task
            updated[start:stop] = a_shard @ p + a_t_shard @ q

        self._pool.map(
            _run_stage2, pairs, context=context, what="GSim+ dense stage 2"
        )
        return updated

    def _dense_pair_shards(
        self,
    ) -> list[tuple[int, int, sp.csr_matrix, sp.csr_matrix]]:
        """Row ranges shared by ``A`` and ``A^T`` for the dense stage-2 sum,
        balanced by the pair's combined nnz and cached across iterations."""
        cached = self._dense_shards
        if cached is not None:
            return cached
        combined_indptr = np.asarray(self._a.indptr, dtype=np.int64) + np.asarray(
            self._a_t.indptr, dtype=np.int64
        )
        shards = [
            (start, stop, self._a[start:stop], self._a_t[start:stop])
            for start, stop in shard_rows_by_nnz(
                combined_indptr, self._pool.max_workers
            )
        ]
        self._dense_shards = shards
        return shards

    def iterate(
        self,
        iterations: int,
        context: ExecutionContext | None = None,
        checkpoints: CheckpointManager | str | Path | None = None,
        checkpoint_every: int = 1,
        resume_from: CheckpointManager | str | Path | None = None,
    ) -> Iterator[_IterationState]:
        """Yield state after every iteration ``k = 0 .. iterations``.

        The k=0 state is the all-ones initialisation.  Downstream consumers
        (accuracy table, convergence driver) read
        :meth:`_IterationState.similarity_matrix` per step.

        With an :class:`repro.runtime.ExecutionContext`, every iteration is
        a checkpoint: the deadline and cancellation token are polled, the
        working set (factor arrays, or the dense iterate plus its update
        temporary once the rank-cap fallback engages) is charged against
        the live memory budget *before* it is allocated, and the per-step
        width / spmm counts land in ``context.metrics`` under
        ``gsim_plus.*``.  Without a context, behaviour is unchanged.

        With a :class:`repro.runtime.Tracer` on the context, every
        iteration additionally records a ``gsim_plus.iterate`` span
        (attributes: ``k``, ``width``, and the dense-regime log-norm)
        under which the worker pool's ``parallel.shard`` spans stitch;
        rank-cap fallbacks, non-finite repairs, and checkpoint resumes
        land in the structured event log.

        With ``checkpoints`` (a :class:`repro.runtime.CheckpointManager`
        or a directory path), every ``checkpoint_every``-th iterate — and
        always the final one — is snapshotted atomically.  With
        ``resume_from``, the latest valid snapshot whose fingerprint
        matches this solver is restored and iteration continues from its
        ``k``; because one iteration is a deterministic function of the
        exactly round-tripped state, the resumed run is bit-identical to
        an uninterrupted one.  When no valid snapshot exists the run
        simply starts from scratch.
        """
        iterations = check_nonnegative_integer(iterations, "iterations")
        checkpoint_every = check_nonnegative_integer(
            checkpoint_every, "checkpoint_every"
        )
        if checkpoints is not None and checkpoint_every == 0:
            raise ValueError("checkpoint_every must be >= 1 when checkpointing")
        manager = _as_manager(checkpoints)
        width_cap = min(self.n_a, self.n_b)
        factors: LowRankFactors | None = LowRankFactors(
            self._initial.u.copy(), self._initial.v.copy(), self._initial.log_scale
        )
        dense_z: np.ndarray | None = None
        dense_log = 0.0
        start_k = 0
        snapshot = None
        if resume_from is not None:
            snapshot = _as_manager(resume_from).load_latest_valid()
        if snapshot is not None:
            self._check_fingerprint(snapshot)
            start_k = snapshot.step
            if start_k > iterations:
                raise ValueError(
                    f"checkpoint is at iteration {start_k}, beyond the "
                    f"requested {iterations}"
                )
            if snapshot.meta["kind"] == "dense":
                factors = None
                dense_z = snapshot.arrays["dense_z"]
                dense_log = float(snapshot.meta["dense_log"])
            else:
                snapshot_u = snapshot.arrays["u"]
                if snapshot_u.dtype != self._dtype:
                    raise ValueError(
                        f"checkpoint factors are {snapshot_u.dtype.name} but "
                        f"this solver's precision policy is {self.precision}; "
                        "resume with a matching precision= or rebuild from "
                        "scratch"
                    )
                truncation = None
                if snapshot.meta.get("truncation"):
                    truncation = TruncationInfo.from_dict(
                        snapshot.meta["truncation"]
                    )
                factors = LowRankFactors(
                    snapshot_u,
                    snapshot.arrays["v"],
                    float(snapshot.meta["log_scale"]),
                    truncation=truncation,
                )
            if context is not None:
                context.metrics.increment("gsim_plus.resumed")
                context.metrics.set_gauge("gsim_plus.resume_iteration", start_k)
                context.tracer.event(
                    "gsim_plus.resumed", severity="info", iteration=start_k
                )
        charged = 0
        tracer = context.tracer if context is not None else NULL_TRACER

        def _account(num_bytes: int, what: str) -> None:
            # Swap the charged working set: release the previous charge,
            # then charge the new one (so a breach leaves nothing held).
            nonlocal charged
            assert context is not None
            context.release(charged)
            charged = 0
            context.charge(num_bytes, what)
            charged = num_bytes

        def _snapshot_state(k: int) -> None:
            assert manager is not None
            meta = {**self._fingerprint(), "kind": "dense" if dense_z is not None else "factors"}
            if dense_z is not None:
                meta["dense_log"] = dense_log
                manager.save(k, {"dense_z": dense_z}, meta=meta)
            else:
                assert factors is not None
                meta["log_scale"] = factors.log_scale
                if factors.truncation is not None:
                    meta["truncation"] = factors.truncation.to_dict()
                manager.save(k, {"u": factors.u, "v": factors.v}, meta=meta)
            if context is not None:
                context.metrics.increment("gsim_plus.checkpoints_written")

        try:
            if context is not None:
                if factors is not None:
                    _account(factors.resident_nbytes, "GSim+ initial factors")
                    context.metrics.observe("gsim_plus.width", factors.width)
                else:
                    _account(
                        self._dense_fallback_charge(),
                        "GSim+ dense rank-cap fallback (resumed)",
                    )
                context.metrics.observe("gsim_plus.bytes_held", charged)
            yield _IterationState(start_k, factors, dense_z, dense_log)
            for k in range(start_k + 1, iterations + 1):
                if context is not None:
                    context.checkpoint(f"GSim+ iteration {k}")
                with tracer.span("gsim_plus.iterate") as span:
                    span.set_attribute("k", k)
                    if dense_z is not None:
                        dense_z, log_norm = self._step_dense(dense_z, context)
                        dense_log += log_norm
                    else:
                        assert factors is not None
                        if self.rank_cap == "dense" and 2 * factors.width > width_cap:
                            # Paper §5.2.1 point 6: revert to traditional GSim
                            # once the doubled width exceeds min(n_A, n_B).
                            # Working set from here on: the dense iterate plus
                            # one same-sized update temporary per step.
                            if context is not None:
                                _account(
                                    self._dense_fallback_charge(),
                                    "GSim+ dense rank-cap fallback",
                                )
                            tracer.event(
                                "gsim_plus.dense_fallback",
                                severity="warning",
                                k=k,
                                width=factors.width,
                                width_cap=width_cap,
                            )
                            dense_z = factors.materialize(include_scale=False)
                            norm = float(np.linalg.norm(dense_z))
                            if norm == 0.0:
                                raise ZeroDivisionError(
                                    "similarity iterate collapsed to zero"
                                )
                            dense_z /= norm
                            # log ||Z||_F of the exact iterate at hand-over.
                            dense_log = float(np.log(norm)) + factors.log_scale
                            factors = None
                            dense_z, log_norm = self._step_dense(dense_z, context)
                            dense_log += log_norm
                        else:
                            factors = self._step_factors(factors, context)
                            if self.recompress_tol is not None:
                                factors = self._recompress(factors, k, context)
                                span.set_attribute(
                                    "retained_rank", factors.width
                                )
                            if (
                                self.rank_cap == "qr-compress"
                                and factors.width > width_cap
                            ):
                                factors = factors.compressed()
                            if context is not None:
                                _account(
                                    factors.resident_nbytes,
                                    f"GSim+ factors (k={k})",
                                )
                    span.set_attribute(
                        "width",
                        factors.width if factors is not None else width_cap,
                    )
                    if dense_z is not None:
                        span.set_attribute("z_log_norm", dense_log)
                if context is not None:
                    context.metrics.increment("gsim_plus.iterations")
                    context.metrics.increment("gsim_plus.spmm", 4)
                    context.metrics.observe(
                        "gsim_plus.width",
                        factors.width if factors is not None else width_cap,
                    )
                    context.metrics.observe("gsim_plus.bytes_held", charged)
                    if dense_z is not None:
                        context.metrics.increment("gsim_plus.dense_steps")
                        context.metrics.set_gauge("gsim_plus.z_log_norm", dense_log)
                if manager is not None and (
                    k % checkpoint_every == 0 or k == iterations
                ):
                    with tracer.span("gsim_plus.checkpoint") as ck_span:
                        ck_span.set_attribute("k", k)
                        _snapshot_state(k)
                yield _IterationState(k, factors, dense_z, dense_log)
        finally:
            if context is not None and charged:
                context.release(charged)
                charged = 0

    # Fingerprint keys introduced after the v1 checkpoint format; an old
    # snapshot that predates them implicitly ran with these values.
    _FINGERPRINT_DEFAULTS: dict[str, object] = {
        "precision": "float64",
        "recompress_tol": None,
    }

    def _fingerprint(self) -> dict[str, object]:
        """What a checkpoint must agree on to be resumable by this solver."""
        return {
            "algorithm": "gsim_plus",
            "n_a": self.n_a,
            "n_b": self.n_b,
            "rank_cap": self.rank_cap,
            "initial_width": self._initial.width,
            "precision": self.precision,
            "recompress_tol": self.recompress_tol,
        }

    def _check_fingerprint(self, snapshot: Checkpoint) -> None:
        expected = self._fingerprint()
        mismatched = {
            key: (snapshot.meta.get(key, self._FINGERPRINT_DEFAULTS.get(key)), value)
            for key, value in expected.items()
            if snapshot.meta.get(key, self._FINGERPRINT_DEFAULTS.get(key)) != value
        }
        if mismatched:
            details = ", ".join(
                f"{key}: checkpoint has {found!r}, solver needs {needed!r}"
                for key, (found, needed) in sorted(mismatched.items())
            )
            raise ValueError(
                f"checkpoint does not match this solver ({details}); "
                "point resume_from at the right directory or rebuild"
            )

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run(
        self,
        iterations: int,
        queries_a: np.ndarray | list[int] | None = None,
        queries_b: np.ndarray | list[int] | None = None,
        progress: "Callable[[int, int], None] | None" = None,
        context: ExecutionContext | None = None,
        checkpoints: CheckpointManager | str | Path | None = None,
        checkpoint_every: int = 1,
        resume_from: CheckpointManager | str | Path | None = None,
    ) -> GSimPlusResult:
        """Execute Algorithm 1 and return the query-block similarity.

        Parameters
        ----------
        iterations:
            ``K``, the total number of iterations (paper default 10; even
            iterates are the convergent subsequence).
        queries_a, queries_b:
            Node index sets ``Q_A`` and ``Q_B``; ``None`` selects all nodes.
        progress:
            Optional callback invoked after every iteration with
            ``(k, current_factor_width)`` — width is ``min(n_A, n_B)``
            once the dense fallback engages.  For richer per-iteration
            access (the factors themselves), drive :meth:`iterate`.
        context:
            Optional :class:`repro.runtime.ExecutionContext`.  The run then
            polls the deadline/cancellation token between iterations and
            charges its working set against the live memory budget; a
            breach raises a structured
            :class:`repro.runtime.BudgetExceeded` carrying the metrics
            collected so far.
        checkpoints, checkpoint_every, resume_from:
            Periodic atomic factor checkpointing and crash recovery; see
            :meth:`iterate`.
        """
        queries_a = self._resolve_queries(queries_a, self.n_a, "queries_a")
        queries_b = self._resolve_queries(queries_b, self.n_b, "queries_b")
        final: _IterationState | None = None
        for final in self.iterate(
            iterations,
            context=context,
            checkpoints=checkpoints,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
        ):
            if progress is not None and final.k > 0:
                width = (
                    final.factors.width
                    if final.factors is not None
                    else min(self.n_a, self.n_b)
                )
                progress(final.k, width)
        assert final is not None
        return self._finalize(final, iterations, queries_a, queries_b)

    def similarity_matrix(
        self, iterations: int, context: ExecutionContext | None = None
    ) -> np.ndarray:
        """The full ``n_A x n_B`` normalised ``S_K`` (materialises)."""
        result = self.run(iterations, context=context)
        return result.similarity

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_queries(
        queries: np.ndarray | list[int] | None, size: int, name: str
    ) -> np.ndarray:
        return resolve_node_index(queries, size, name, full_if_none=True)

    def _finalize(
        self,
        state: _IterationState,
        iterations: int,
        queries_a: np.ndarray,
        queries_b: np.ndarray,
    ) -> GSimPlusResult:
        truncation: TruncationInfo | None = None
        if state.dense_z is not None:
            block = state.dense_z[np.ix_(queries_a, queries_b)]
            full_norm = float(np.linalg.norm(state.dense_z))
            final_width = min(self.n_a, self.n_b)
            # Dense steps renormalise to unit Frobenius each iteration, so
            # the raw ``log ||Z_K||_F`` is the accumulated per-step log-norms
            # plus the (near-zero) log-norm of the current normalised iterate.
            z_log = state.dense_log_norm + float(
                np.log(max(full_norm, np.finfo(float).tiny))
            )
            used_dense = True
        else:
            assert state.factors is not None
            block = state.factors.query_block(
                queries_a, queries_b, include_scale=False
            )
            full_norm = state.factors.frobenius_norm(include_scale=False)
            final_width = state.factors.width
            norm_unscaled = max(full_norm, np.finfo(float).tiny)
            z_log = float(np.log(norm_unscaled) + state.factors.log_scale)
            used_dense = False
            truncation = state.factors.truncation
        if self.normalization == "block":
            denominator = float(np.linalg.norm(block))
        else:
            denominator = full_norm
        if denominator == 0.0:
            raise ZeroDivisionError(
                "query block has zero norm; queries touch no similar structure"
            )
        return GSimPlusResult(
            similarity=block / denominator,
            iterations=iterations,
            final_width=final_width,
            z_frobenius_log=z_log,
            used_dense_fallback=used_dense,
            precision=self.precision,
            truncation=truncation,
        )


def gsim_plus(
    graph_a: Graph,
    graph_b: Graph,
    iterations: int = 10,
    queries_a: np.ndarray | list[int] | None = None,
    queries_b: np.ndarray | list[int] | None = None,
    rank_cap: str = "dense",
    normalization: str = "block",
    initial_factors: tuple[np.ndarray, np.ndarray] | None = None,
    context: ExecutionContext | None = None,
    checkpoints: CheckpointManager | str | Path | None = None,
    checkpoint_every: int = 1,
    resume_from: CheckpointManager | str | Path | None = None,
    max_workers: "WorkerPool | int | None" = None,
    recompress_tol: float | None = None,
    precision: str = "float64",
    backend: str = "thread",
) -> GSimPlusResult:
    """Functional wrapper over :class:`GSimPlus` (Algorithm 1).

    Computes the GSim similarity block ``[S_K]_{Q_A, Q_B}`` between the two
    graphs after ``iterations`` power-iteration steps.  Passing
    ``initial_factors = (F_A, F_B)`` replaces the all-ones start with the
    content prior ``Z_0 = F_A F_B^T`` (the "content-based similarity"
    adaptation of the paper's introduction) while preserving exactness.
    ``recompress_tol`` enables rank-bounded recompression between doubling
    steps (see :meth:`LowRankFactors.recompressed`); ``precision`` selects
    the iterate dtype (``"float64"`` exact default or ``"float32"``).

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> a = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> b = Graph.from_edges(3, [(0, 1), (1, 2)])
    >>> out = gsim_plus(a, b, iterations=2)
    >>> out.similarity.shape
    (4, 3)
    """
    solver = GSimPlus(
        graph_a,
        graph_b,
        rank_cap=rank_cap,
        normalization=normalization,
        initial_factors=initial_factors,
        max_workers=max_workers,
        recompress_tol=recompress_tol,
        precision=precision,
        backend=backend,
    )
    return solver.run(
        iterations,
        queries_a=queries_a,
        queries_b=queries_b,
        context=context,
        checkpoints=checkpoints,
        checkpoint_every=checkpoint_every,
        resume_from=resume_from,
    )
