"""Theorem 4.2 — spectral error bound for the GSim+/GSim iteration.

For an even iteration count ``k``::

    ||S_k - S||_F  <=  (|lambda_2| / |lambda_1|)^k * C,
    C = sqrt(sum_{i>=2} c_i^2) / |c_1|,   c = W^T 1_n

where ``lambda_i`` / ``W`` are the eigenvalues / orthonormal eigenvectors of
the symmetric matrix ``M = B (x) A + (B (x) A)^T`` of order
``n = n_A * n_B``, and ``S`` is the exact fixed point (the dominant
eigenvector of ``M`` reshaped to ``n_A x n_B``, up to sign).

Because ``M`` has ``n_A n_B`` rows these routines are meant for the small
profiles used by the accuracy experiment (§5.2.3); they exist to *validate*
the bound, not to run at billion scale.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import Graph
from repro.utils.validation import check_positive_integer

__all__ = [
    "error_bound",
    "exact_similarity_spectral",
    "kronecker_similarity_matrix",
    "spectral_gap",
]

# Above this order we refuse to densify M for the full eigendecomposition.
_DENSE_EIG_LIMIT = 4_000


def kronecker_similarity_matrix(graph_a: Graph, graph_b: Graph) -> sp.csr_matrix:
    """The symmetric iteration matrix ``M = B (x) A + (B (x) A)^T``.

    ``vec(A X B^T + A^T X B) = M vec(X)`` with column-major (Fortran) vec,
    which is the convention used throughout this module.
    """
    kron = sp.kron(graph_b.adjacency, graph_a.adjacency, format="csr")
    return (kron + kron.T).tocsr()


def spectral_gap(graph_a: Graph, graph_b: Graph) -> tuple[float, float]:
    """Return ``(|lambda_1|, |lambda_2|)`` of ``M`` (largest magnitudes).

    Uses sparse Lanczos (``eigsh``) when ``M`` is large, dense ``eigh``
    otherwise.  Falls back to dense when Lanczos fails to converge.
    """
    matrix = kronecker_similarity_matrix(graph_a, graph_b)
    order = matrix.shape[0]
    if order <= 2:
        eigenvalues = np.linalg.eigvalsh(matrix.toarray())
        magnitudes = np.sort(np.abs(eigenvalues))[::-1]
        second = float(magnitudes[1]) if order == 2 else 0.0
        return float(magnitudes[0]), second
    if order <= _DENSE_EIG_LIMIT:
        eigenvalues = np.linalg.eigvalsh(matrix.toarray())
    else:
        try:
            eigenvalues = spla.eigsh(
                matrix, k=2, which="LM", return_eigenvectors=False
            )
        except spla.ArpackNoConvergence as exc:  # pragma: no cover - rare
            eigenvalues = exc.eigenvalues
            if eigenvalues is None or len(eigenvalues) < 2:
                raise
    magnitudes = np.sort(np.abs(eigenvalues))[::-1]
    return float(magnitudes[0]), float(magnitudes[1])


def _full_spectrum(graph_a: Graph, graph_b: Graph) -> tuple[np.ndarray, np.ndarray]:
    """Full (eigenvalues, eigenvectors) of M, dense path with a size guard."""
    matrix = kronecker_similarity_matrix(graph_a, graph_b)
    order = matrix.shape[0]
    if order > _DENSE_EIG_LIMIT:
        raise ValueError(
            f"full spectrum of M requires order <= {_DENSE_EIG_LIMIT}, got {order}; "
            "use spectral_gap() for large instances"
        )
    eigenvalues, eigenvectors = np.linalg.eigh(matrix.toarray())
    # Sort by decreasing magnitude to match the paper's |λ1| >= |λ2| >= ...
    order_idx = np.argsort(-np.abs(eigenvalues))
    return eigenvalues[order_idx], eigenvectors[:, order_idx]


def error_bound(graph_a: Graph, graph_b: Graph, iterations: int) -> float:
    """Evaluate the Theorem 4.2 bound ``(|λ2|/|λ1|)^k * C`` for even ``k``.

    Raises
    ------
    ValueError
        If ``iterations`` is odd (the theorem covers even iterates, the
        convergent subsequence of the GSim power iteration), or if the
        dominant coefficient ``c_1`` vanishes (the bound is undefined: the
        all-ones start vector has no component along the dominant
        eigenvector).
    """
    iterations = check_positive_integer(iterations, "iterations")
    if iterations % 2 != 0:
        raise ValueError(
            f"Theorem 4.2 applies to even iteration counts, got {iterations}"
        )
    eigenvalues, eigenvectors = _full_spectrum(graph_a, graph_b)
    n = eigenvalues.size
    coefficients = eigenvectors.T @ np.ones(n)
    c1 = float(coefficients[0])
    if abs(c1) < 1e-12:
        raise ValueError(
            "dominant coefficient c_1 is (numerically) zero; "
            "the Theorem 4.2 bound is undefined for this graph pair"
        )
    tail = float(np.sqrt(np.sum(coefficients[1:] ** 2)))
    constant = tail / abs(c1)
    lambda1 = abs(float(eigenvalues[0]))
    lambda2 = abs(float(eigenvalues[1])) if n > 1 else 0.0
    if lambda1 == 0.0:
        return 0.0
    return (lambda2 / lambda1) ** iterations * constant


def exact_similarity_spectral(graph_a: Graph, graph_b: Graph) -> np.ndarray:
    """The exact GSim fixed point ``S`` from the dominant eigenvector of M.

    The limit of the even iterates is ``(c_1 / |c_1|) w_1`` reshaped to
    ``n_A x n_B`` column-major and scaled to unit Frobenius norm.  Only
    valid on small instances (order <= 4000); the accuracy experiments use
    the paper's alternative definition (GSim run for 100 iterations) on
    anything larger.
    """
    eigenvalues, eigenvectors = _full_spectrum(graph_a, graph_b)
    del eigenvalues
    n_a, n_b = graph_a.num_nodes, graph_b.num_nodes
    dominant = eigenvectors[:, 0]
    c1 = float(dominant @ np.ones(dominant.size))
    if abs(c1) < 1e-12:
        raise ValueError(
            "the all-ones start vector is orthogonal to the dominant "
            "eigenvector; the power iteration limit is degenerate"
        )
    oriented = np.sign(c1) * dominant
    matrix = oriented.reshape((n_a, n_b), order="F")
    return matrix / np.linalg.norm(matrix)
