"""Convergence-controlled GSim+ execution.

The paper runs a fixed number of iterations ``K`` (default 10) and notes
that even iterates converge.  For library users who prefer a tolerance to a
fixed budget, :func:`iterate_to_convergence` runs GSim+ and stops when
consecutive *even* iterates agree to ``tolerance`` in Frobenius norm.  The
comparison is done entirely in factored form via
:meth:`repro.core.embeddings.LowRankFactors.normalized_distance`, so the
full similarity matrix is never materialised while iterating.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.embeddings import LowRankFactors
from repro.core.gsim_plus import GSimPlus
from repro.graphs.graph import Graph
from repro.runtime import ExecutionContext
from repro.utils.validation import check_positive_integer

__all__ = ["ConvergenceReport", "iterate_to_convergence"]


@dataclass
class ConvergenceReport:
    """Trace of a tolerance-driven GSim+ run.

    Attributes
    ----------
    converged:
        Whether the even-iterate difference dropped below the tolerance
        before ``max_iterations``.
    iterations:
        Number of iterations performed (always even on convergence).
    residuals:
        ``||S_k - S_{k-2}||_F`` measured at each even ``k >= 2``.
    similarity:
        The final normalised query-block similarity.
    """

    converged: bool
    iterations: int
    residuals: list[float] = field(default_factory=list)
    similarity: np.ndarray | None = None


def iterate_to_convergence(
    graph_a: Graph,
    graph_b: Graph,
    tolerance: float = 1e-4,
    max_iterations: int = 50,
    queries_a: np.ndarray | list[int] | None = None,
    queries_b: np.ndarray | list[int] | None = None,
    rank_cap: str = "dense",
    context: ExecutionContext | None = None,
) -> ConvergenceReport:
    """Run GSim+ until even iterates stabilise.

    Parameters
    ----------
    tolerance:
        Stop once ``||S_k - S_{k-2}||_F < tolerance`` for an even ``k``.
    max_iterations:
        Hard budget; the report flags ``converged=False`` when hit.

    Notes
    -----
    The residual sequence decays geometrically with ratio
    ``(|λ2|/|λ1|)^2`` (Theorem 4.2), so halving ``tolerance`` costs only
    O(1) extra iterations on well-separated spectra.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    max_iterations = check_positive_integer(max_iterations, "max_iterations")

    solver = GSimPlus(graph_a, graph_b, rank_cap=rank_cap)
    residuals: list[float] = []
    previous_even: LowRankFactors | None = None
    previous_even_dense: np.ndarray | None = None
    stopped_at: int | None = None

    for state in solver.iterate(max_iterations, context=context):
        if state.k == 0 or state.k % 2 != 0:
            continue
        if state.dense_z is not None:
            # Dense fallback regime: compare normalised dense iterates.
            current_dense = state.dense_z / np.linalg.norm(state.dense_z)
            if previous_even_dense is not None:
                residuals.append(
                    float(np.linalg.norm(current_dense - previous_even_dense))
                )
            previous_even_dense = current_dense
            previous_even = None
        else:
            assert state.factors is not None
            if previous_even is not None:
                residuals.append(state.factors.normalized_distance(previous_even))
            elif previous_even_dense is not None:
                dense = state.factors.materialize(include_scale=False)
                dense /= np.linalg.norm(dense)
                residuals.append(
                    float(np.linalg.norm(dense - previous_even_dense))
                )
            previous_even = LowRankFactors(
                state.factors.u.copy(),
                state.factors.v.copy(),
                state.factors.log_scale,
            )
            previous_even_dense = None
        if residuals and residuals[-1] < tolerance:
            stopped_at = state.k
            break

    iterations = stopped_at if stopped_at is not None else max_iterations
    result = solver.run(
        iterations, queries_a=queries_a, queries_b=queries_b, context=context
    )
    return ConvergenceReport(
        converged=stopped_at is not None,
        iterations=iterations,
        residuals=residuals,
        similarity=result.similarity,
    )
